#!/usr/bin/env python3
"""ACP daemon smoke test: the CI gate for the real process boundary.

Starts ``hars-repro serve`` as a *subprocess* on a Unix socket plus an
ephemeral HTTP port, then drives it the way an operator would:

1. attach a two-app MP-HARS run over the Unix socket,
2. start it and hot-swap HARS-E → HARS-I mid-run,
3. scrape live Prometheus text from ``GET /metrics`` while it runs,
4. wait for the result, check both apps completed,
5. detach cleanly and shut the daemon down.

Exits non-zero (with a diagnostic) on any failed step.
"""

import os
import subprocess
import sys
import tempfile
import time
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.acp.client import AcpClient  # noqa: E402
from repro.experiments.runner import RunConfig, RunShape  # noqa: E402


def fail(message, server=None):
    print(f"FAIL: {message}", file=sys.stderr)
    if server is not None:
        server.terminate()
        out, _ = server.communicate(timeout=10)
        print(f"--- daemon output ---\n{out}", file=sys.stderr)
    sys.exit(1)


def main():
    tmp = tempfile.mkdtemp(prefix="acp-smoke-")
    socket_path = os.path.join(tmp, "acp.sock")
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            socket_path,
            "--http",
            "0",
            "--state-dir",
            os.path.join(tmp, "state"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )

    # The daemon announces its endpoints on stdout; the HTTP port is
    # ephemeral, so parse it from the announcement.
    http_base = None
    deadline = time.time() + 30
    announced = []
    while time.time() < deadline:
        line = server.stdout.readline()
        if not line:
            fail("daemon exited before announcing endpoints", server)
        announced.append(line.strip())
        if line.startswith("acp: listening on http://"):
            http_base = line.split("acp: listening on ", 1)[1].strip()
        if http_base and any("unix://" in l for l in announced):
            break
    if http_base is None:
        fail(f"no http endpoint announced (got: {announced})", server)
    print(f"daemon up: unix://{socket_path} and {http_base}")

    try:
        client = AcpClient(f"unix://{socket_path}")
        hello = client.hello()
        if hello["server"] != "hars-repro-acp":
            fail(f"unexpected hello: {hello}", server)

        shapes = [
            RunShape(benchmark="swaptions", n_units=400),
            RunShape(benchmark="bodytrack", n_units=400),
        ]
        handle = client.attach(
            "mp-hars-e",
            shapes,
            RunConfig(telemetry=True, checkpoint=2.0),
        )
        print(f"attached {handle.session_id} (mp-hars-e, 2 apps)")

        status = handle.run()
        if status["state"] != "running":
            fail(f"run did not start: {status}", server)
        time.sleep(0.5)  # let it get properly mid-run

        swap = handle.swap_policy("hars-i")
        if swap["policy"] != "HARS-I" or not swap["controllers"]:
            fail(f"swap failed: {swap}", server)
        print(
            f"swapped HARS-E -> HARS-I at t={swap['time_s']:.2f}s "
            f"(controllers: {', '.join(swap['controllers'])})"
        )

        metrics = (
            urllib.request.urlopen(http_base + "/metrics", timeout=30)
            .read()
            .decode()
        )
        for needle in (
            "acp_sessions_attached_total",
            f'session="{handle.session_id}"',
            "heartbeats_total",
        ):
            if needle not in metrics:
                fail(f"/metrics is missing {needle!r}", server)
        print(f"scraped /metrics live ({len(metrics.splitlines())} lines)")

        outcome = handle.result(timeout_s=300)
        apps = sorted(a.app_name for a in outcome.metrics.apps)
        if apps != ["bodytrack-1", "swaptions-0"]:
            fail(f"unexpected result apps: {apps}", server)
        if any(a.heartbeats <= 0 for a in outcome.metrics.apps):
            fail("an app finished with no heartbeats", server)
        swapped_events = [
            e for e in handle.events() if e.type == "policy-swapped"
        ]
        if len(swapped_events) != 1:
            fail(f"expected 1 policy-swapped event: {swapped_events}", server)
        print(
            "result: "
            + "  ".join(
                f"{a.app_name}={a.heartbeats}hb@{a.overall_rate:.1f}hb/s"
                for a in outcome.metrics.apps
            )
        )

        detached = handle.detach()
        if detached["state"] != "finished":
            fail(f"detach left state {detached['state']}", server)
        print("detached cleanly")
    finally:
        server.terminate()
        try:
            server.communicate(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()

    print("ACP smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
