#!/usr/bin/env python3
"""ACP crash drill: SIGKILL a real daemon mid-run and prove nothing lies.

Four arms, each a hard gate (the script exits non-zero on any failure),
with the measured numbers written to ``BENCH_acp_chaos.json``:

1. **zero-fault identity** — a loopback client wrapped in a *disabled*
   ``AcpFaultConfig`` is bit-identical (summaries + trace rows) to a
   plain loopback client: the chaos shim is byte-transparent when off.
2. **full-chaos identity** — the same journey under seeded
   drop+dup+reorder+corrupt+disconnect injection: every RPC terminates
   typed, commands apply exactly once, and the outcome is *still*
   bit-identical — chaos at the wire never perturbs the physics.
3. **controlled-cut drill** — a real ``hars-repro serve`` subprocess is
   SIGKILLed at a deterministic point (after ``advance(3.0)`` +
   ``checkpoint``, all inline in simulated time), restarted against the
   same ``--state-dir``, and the same client reconnects and resumes via
   ``attach(resume=...)``.  The resulting ``RunOutcome`` must equal,
   bit for bit, the identical interrupted journey performed in-process
   (two loopback ``AcpServer``s sharing a state dir) — the daemon
   boundary, the SIGKILL, and ``CheckpointStore.recover`` add nothing
   and lose nothing.
4. **hot-kill liveness** — SIGKILL while the daemon's background driver
   is mid-run at an arbitrary wall-clock instant, restart, reconnect,
   resume, and finish.  The cut point is nondeterministic, so this arm
   asserts liveness (typed completion, heartbeats flowing), not bits.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.acp.chaos import AcpFaultConfig  # noqa: E402
from repro.acp.client import AcpClient, RetryPolicy  # noqa: E402
from repro.acp.server import AcpServer  # noqa: E402
from repro.experiments.runner import RunConfig, RunShape  # noqa: E402
from repro.experiments.serialize import run_metrics_to_dict  # noqa: E402

#: Retry policy generous enough to ride out a daemon restart window.
RECONNECT = RetryPolicy(max_attempts=12, backoff_s=0.1, max_backoff_s=1.0)

CHAOS = AcpFaultConfig(
    seed=11,
    drop_rate=0.12,
    dup_rate=0.15,
    reorder_rate=0.10,
    corrupt_rate=0.25,
    delay_rate=0.05,
    delay_s=0.001,
    disconnect_rate=0.08,
)


def fail(message, daemon=None):
    print(f"FAIL: {message}", file=sys.stderr)
    if daemon is not None and daemon.poll() is None:
        daemon.terminate()
        try:
            out, _ = daemon.communicate(timeout=10)
            print(f"--- daemon output ---\n{out}", file=sys.stderr)
        except subprocess.TimeoutExpired:
            daemon.kill()
    sys.exit(1)


def outcome_fingerprint(outcome):
    """Everything ``assert_identical`` compares, as one JSON-able blob."""
    return {
        "metrics": run_metrics_to_dict(outcome.metrics),
        "trace": {
            name: [
                [
                    p.time_s,
                    p.hb_index,
                    p.rate,
                    p.big_cores,
                    p.little_cores,
                    p.big_freq_mhz,
                    p.little_freq_mhz,
                ]
                for p in outcome.trace.points(name)
            ]
            for name in outcome.trace.app_names
        },
        "max_rate": outcome.max_rate,
        "target": [
            outcome.target.min_rate,
            outcome.target.avg_rate,
            outcome.target.max_rate,
        ],
    }


def start_daemon(socket_path, state_dir):
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            socket_path,
            "--state-dir",
            state_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        line = daemon.stdout.readline()
        if not line:
            fail("daemon exited before announcing its endpoint", daemon)
        if line.startswith("acp: listening on unix://"):
            return daemon
    fail("daemon never announced its unix endpoint", daemon)


def sigkill(daemon):
    daemon.send_signal(signal.SIGKILL)
    daemon.wait(timeout=15)
    daemon.stdout.close()


# -- arms ---------------------------------------------------------------------


def journey(client, session_id, units):
    """The fixed control journey every identity arm replays."""
    handle = client.attach(
        "hars-ei",
        RunShape(benchmark="swaptions", n_units=units),
        RunConfig(telemetry=True, checkpoint=2.0),
        session_id=session_id,
    )
    for _ in range(6):
        handle.advance(2.0)
    handle.swap_policy("hars-i")
    for _ in range(4):
        handle.advance(2.0)
    outcome = handle.result()
    handle.detach()
    return outcome


def arm_zero_fault(units):
    start = time.time()
    plain = journey(AcpClient(server=AcpServer(threaded=False)), "ref", units)
    shimmed = journey(
        AcpClient(server=AcpServer(threaded=False), faults=AcpFaultConfig()),
        "ref",
        units,
    )
    if outcome_fingerprint(plain) != outcome_fingerprint(shimmed):
        fail("zero-fault shim perturbed the run (bit-identity broken)")
    print("arm 1 zero-fault identity: OK (bit-identical to plain loopback)")
    return plain, {"bit_identical": True, "wall_s": round(time.time() - start, 3)}


def arm_full_chaos(reference, units):
    start = time.time()
    server = AcpServer(threaded=False)
    client = AcpClient(
        server=server,
        faults=CHAOS,
        retry=RetryPolicy(max_attempts=10, backoff_s=0.001, max_backoff_s=0.01),
    )
    chaotic = journey(client, "ref", units)
    if outcome_fingerprint(reference) != outcome_fingerprint(chaotic):
        fail("full-chaos run diverged from the clean run")
    injected = dict(client._transport.injected)
    if sum(injected.values()) == 0:
        fail("full-chaos arm injected nothing; the drill proved nothing")
    print(
        "arm 2 full-chaos identity: OK "
        f"(injected {injected}, client retries {client.stats['retries']}, "
        f"server dedup hits {server.dedup_hits})"
    )
    return {
        "bit_identical": True,
        "injected": injected,
        "client_retries": client.stats["retries"],
        "server_dedup_hits": server.dedup_hits,
        "server_retries_seen": server.retries_seen,
        "server_frames_corrupt": server.frames_corrupt,
        "wall_s": round(time.time() - start, 3),
    }


def interrupted_journey_inline(state_dir, units):
    """The controlled-cut journey, in-process: two loopback servers
    sharing a state dir stand in for daemon-before and daemon-after."""
    before = AcpServer(state_dir=state_dir, threaded=False)
    handle = AcpClient(server=before).attach(
        "hars-ei",
        RunShape(benchmark="swaptions", n_units=units),
        RunConfig(telemetry=True, checkpoint=2.0),
        session_id="drill",
    )
    handle.advance(3.0)
    handle.checkpoint()
    # The "crash": `before` is simply never used again.
    after = AcpServer(state_dir=state_dir, threaded=False)
    client = AcpClient(server=after)
    if "drill" not in client.sessions()["recovered"]:
        fail("inline reference: state dir lost the drill checkpoint")
    resumed = client.attach(
        "hars-ei",
        RunShape(benchmark="swaptions", n_units=units),
        RunConfig(telemetry=True, checkpoint=2.0),
        session_id="drill",
        resume=True,
    )
    if not resumed.last_status.get("resumed_from"):
        fail("inline reference: resume did not warm-restore")
    outcome = resumed.result()
    resumed.detach()
    return outcome


def arm_controlled_cut(units):
    start = time.time()
    tmp = tempfile.mkdtemp(prefix="acp-drill-")
    socket_path = os.path.join(tmp, "acp.sock")
    state_dir = os.path.join(tmp, "state")

    daemon = start_daemon(socket_path, state_dir)
    client = AcpClient(f"unix://{socket_path}", retry=RECONNECT)
    handle = client.attach(
        "hars-ei",
        RunShape(benchmark="swaptions", n_units=units),
        RunConfig(telemetry=True, checkpoint=2.0),
        session_id="drill",
    )
    handle.advance(3.0)  # inline: deterministic simulated-time cut point
    handle.checkpoint()
    sigkill(daemon)
    print(f"arm 3: daemon SIGKILLed at sim t=3.0s (pid gone, state in {state_dir})")

    daemon = start_daemon(socket_path, state_dir)
    try:
        listing = client.sessions()  # same client object reconnects
        if "drill" not in listing["recovered"]:
            fail("restarted daemon did not recover the drill store", daemon)
        resumed = client.attach(
            "hars-ei",
            RunShape(benchmark="swaptions", n_units=units),
            RunConfig(telemetry=True, checkpoint=2.0),
            session_id="drill",
            resume=True,
        )
        if not resumed.last_status.get("resumed_from"):
            fail("resume after restart did not warm-restore", daemon)
        outcome = resumed.result(timeout_s=300)
        resumed.detach()
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.communicate(timeout=15)

    reference = interrupted_journey_inline(
        os.path.join(tmp, "ref-state"), units
    )
    if outcome_fingerprint(outcome) != outcome_fingerprint(reference):
        fail("controlled-cut drill diverged from the in-process journey")
    print(
        "arm 3 controlled-cut drill: OK (SIGKILL + restart + resume "
        "bit-identical to the in-process interrupted run)"
    )
    return {
        "bit_identical_to_inline": True,
        "resumed_controllers": resumed.last_status["resumed_from"],
        "client_retries": client.stats["retries"],
        "wall_s": round(time.time() - start, 3),
    }


def arm_hot_kill(units):
    start = time.time()
    tmp = tempfile.mkdtemp(prefix="acp-drill-hot-")
    socket_path = os.path.join(tmp, "acp.sock")
    state_dir = os.path.join(tmp, "state")

    daemon = start_daemon(socket_path, state_dir)
    client = AcpClient(f"unix://{socket_path}", retry=RECONNECT)
    shapes = [
        RunShape(benchmark="swaptions", n_units=units),
        RunShape(benchmark="bodytrack", n_units=units),
    ]
    handle = client.attach(
        "mp-hars-ei",
        shapes,
        RunConfig(telemetry=True, checkpoint=2.0),
        session_id="hot",
    )
    handle.run()  # background driver
    time.sleep(1.0)  # an arbitrary wall-clock instant, mid-run
    sigkill(daemon)
    print("arm 4: daemon SIGKILLed hot (background driver mid-run)")

    daemon = start_daemon(socket_path, state_dir)
    try:
        listing = client.sessions()
        if "hot" not in listing["recovered"]:
            fail("hot-kill: no recovered store after restart", daemon)
        resumed = client.attach(
            "mp-hars-ei",
            shapes,
            RunConfig(telemetry=True, checkpoint=2.0),
            session_id="hot",
            resume=True,
        )
        resumed.run()
        outcome = resumed.result(timeout_s=300)
        if any(a.heartbeats <= 0 for a in outcome.metrics.apps):
            fail("hot-kill: an app resumed with no heartbeats", daemon)
        resumed.detach()
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.communicate(timeout=15)
    print(
        "arm 4 hot-kill liveness: OK ("
        + "  ".join(
            f"{a.app_name}={a.heartbeats}hb" for a in outcome.metrics.apps
        )
        + ")"
    )
    return {
        "completed": True,
        "apps": {
            a.app_name: a.heartbeats for a in outcome.metrics.apps
        },
        "client_retries": client.stats["retries"],
        "wall_s": round(time.time() - start, 3),
    }


def main():
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--units", type=int, default=60, help="work units per identity arm"
    )
    parser.add_argument(
        "--hot-units",
        type=int,
        default=400,
        help="work units per app in the hot-kill arm",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), os.pardir, "BENCH_acp_chaos.json"
        ),
    )
    args = parser.parse_args()

    reference, zero = arm_zero_fault(args.units)
    chaos = arm_full_chaos(reference, args.units)
    cut = arm_controlled_cut(args.units)
    hot = arm_hot_kill(args.hot_units)

    report = {
        "benchmark": "acp_chaos_drill",
        "units": args.units,
        "chaos_config": {
            "seed": CHAOS.seed,
            "drop_rate": CHAOS.drop_rate,
            "dup_rate": CHAOS.dup_rate,
            "reorder_rate": CHAOS.reorder_rate,
            "corrupt_rate": CHAOS.corrupt_rate,
            "delay_rate": CHAOS.delay_rate,
            "disconnect_rate": CHAOS.disconnect_rate,
        },
        "arms": {
            "zero_fault_identity": zero,
            "full_chaos_identity": chaos,
            "controlled_cut_drill": cut,
            "hot_kill_liveness": hot,
        },
    }
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"ACP chaos drill: OK (report: {out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
