"""Fleet resilience under a crash wave: failover value + chaos gates.

Runs the :mod:`repro.fleet` cluster at native scale (100 nodes, 20k
requests — override with ``REPRO_FLEET_NODES`` / ``REPRO_FLEET_REQUESTS``
for the CI smoke profile) through three arms around a 10 % crash wave:

* **baseline**  — no chaos, no resilience layer (PR 7 behaviour);
* **failover**  — crash wave + failover routing + per-attempt retry;
* **ablation**  — same crash wave with ``failover=False``: routers keep
  feeding dead nodes and stranded requests are lost outright.

Result gates (all hard asserts):

* **zero-chaos identity** — a fully disabled ``FleetFaultConfig`` is
  bit-identical to the baseline (``summary()`` equality, no tolerances);
* **chaos determinism** — the failover arm re-run at a different shard
  count is bit-identical;
* **failover value** — the failover arm serves the whole trace with a
  miss ratio within 2x the no-fault baseline (small floor for tiny CI
  traces), while the ablation arm loses stranded requests outright;
* **requeue latency** — crash-stranded requests land on a survivor
  within two cluster ticks.

Writes the arm comparison, per-cause unserved accounting, and the
post-wave SLO recovery time to ``BENCH_fleet_chaos.json`` at the repo
root for tracking.
"""

import dataclasses
import json
import os
import pathlib
import time

from repro.fleet import FleetConfig, FleetFaultConfig, ResilienceConfig
from repro.fleet.chaos import crash_wave
from repro.fleet.cluster import FleetCluster
from repro.fleet.slo import recovery_time_s

#: Native scale; CI smoke overrides via env.
NATIVE_NODES = 100
NATIVE_REQUESTS = 20_000

#: The chaos scenario: this fraction of the fleet crashes at WAVE_AT_S.
WAVE_FRACTION = 0.10
WAVE_AT_S = 5.0

#: Shard count of the under-chaos determinism re-run.
DETERMINISM_SHARDS = 7

#: Miss-ratio slack: failover must stay within 2x baseline, with a
#: small absolute floor so tiny CI traces (a handful of misses) pass.
MISS_FACTOR = 2.0
MISS_FLOOR = 0.02

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_fleet_chaos.json"
)


def _fleet_scale():
    nodes = int(os.environ.get("REPRO_FLEET_NODES") or NATIVE_NODES)
    requests = int(os.environ.get("REPRO_FLEET_REQUESTS") or NATIVE_REQUESTS)
    return nodes, requests


def _run(config, router="deadline-risk"):
    cluster = FleetCluster(config, router=router)
    start = time.perf_counter()
    result = cluster.run()
    wall_s = time.perf_counter() - start
    return result, cluster.completion_log, wall_s


def _row(result, wall_s):
    return {
        "completed": result.completed,
        "unserved": result.unserved,
        "unserved_causes": dict(sorted(result.unserved_causes.items())),
        "miss_ratio": round(result.miss_ratio, 6),
        "p99_ms": round(result.p99_s * 1e3, 3),
        "energy_j": round(result.energy_j, 3),
        "resilience": dict(sorted(result.resilience.items())),
        "wall_s": round(wall_s, 3),
    }


def test_fleet_chaos(benchmark):
    nodes, requests = _fleet_scale()
    base = FleetConfig(nodes=nodes, requests=requests)
    wave = FleetFaultConfig(
        schedule=crash_wave(nodes, WAVE_FRACTION, WAVE_AT_S)
    )
    failover_config = dataclasses.replace(
        base,
        chaos=wave,
        resilience=ResilienceConfig(attempt_timeout_s=1.0),
    )
    ablation_config = dataclasses.replace(
        base, chaos=wave, resilience=ResilienceConfig(failover=False)
    )

    def _arms():
        return {
            "baseline": _run(base),
            "failover": _run(failover_config),
            "ablation": _run(ablation_config),
        }

    arms = benchmark.pedantic(_arms, rounds=1, iterations=1)
    baseline, _, _ = arms["baseline"]
    failover, failover_log, _ = arms["failover"]
    ablation, _, _ = arms["ablation"]

    # Gate 1: a disabled chaos config must be invisible, bit for bit.
    chaosless, _, _ = _run(
        dataclasses.replace(base, chaos=FleetFaultConfig())
    )
    zero_chaos_identical = chaosless.summary() == baseline.summary()

    # Gate 2: chaos does not break shard determinism.
    sharded, _, sharded_wall_s = _run(
        dataclasses.replace(
            failover_config, shards=min(DETERMINISM_SHARDS, nodes)
        )
    )
    chaos_deterministic = sharded.summary() == failover.summary()

    recovery_s = recovery_time_s(
        failover_log, WAVE_AT_S, window=min(100, requests // 10)
    )
    miss_bound = max(MISS_FACTOR * baseline.miss_ratio, MISS_FLOOR)
    lost = ablation.unserved_causes["lost_to_crash_then_requeued"]

    print()
    for name in ("baseline", "failover", "ablation"):
        result, _, wall_s = arms[name]
        print(
            f"{name:>9}: completed={result.completed}/{requests} "
            f"miss={result.miss_ratio:6.3%} "
            f"p99={result.p99_s * 1e3:7.1f}ms "
            f"wall={wall_s:6.1f}s"
        )
    print(
        f"wave: {len(wave.schedule)} nodes at t={WAVE_AT_S}s | "
        f"requeued={failover.resilience['requeued']} "
        f"(<= {failover.resilience['max_requeue_ticks']} ticks) | "
        f"ablation lost={lost} | "
        f"recovery={'n/a' if recovery_s is None else f'{recovery_s:.2f}s'}"
    )
    print(
        f"zero-chaos identity: "
        f"{'bit-identical' if zero_chaos_identical else 'MISMATCH'} | "
        f"chaos shards 1 vs {min(DETERMINISM_SHARDS, nodes)}: "
        f"{'bit-identical' if chaos_deterministic else 'MISMATCH'}"
    )

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bench_fleet_chaos",
                "nodes": nodes,
                "requests": requests,
                "wave": {
                    "fraction": WAVE_FRACTION,
                    "at_s": WAVE_AT_S,
                    "nodes_crashed": len(wave.schedule),
                },
                "arms": {
                    name: _row(arms[name][0], arms[name][2])
                    for name in sorted(arms)
                },
                "gates": {
                    "zero_chaos_bit_identical": zero_chaos_identical,
                    "chaos_shards_compared": [
                        1, min(DETERMINISM_SHARDS, nodes)
                    ],
                    "chaos_bit_identical": chaos_deterministic,
                    "sharded_wall_s": round(sharded_wall_s, 3),
                    "miss_ratio_bound": round(miss_bound, 6),
                    "ablation_lost": lost,
                },
                "recovery_time_s": (
                    None if recovery_s is None else round(recovery_s, 3)
                ),
            },
            indent=2,
        )
        + "\n"
    )

    # Gate 1 + 2: determinism, with and without chaos.
    assert zero_chaos_identical
    assert chaos_deterministic
    # Gate 3: failover keeps the fleet whole; the ablation does not.
    assert failover.completed == requests
    assert failover.miss_ratio <= miss_bound
    assert lost > 0
    assert ablation.completed < requests
    # Gate 4: stranded work lands on survivors within two ticks.
    assert failover.resilience["requeued"] > 0
    assert failover.resilience["max_requeue_ticks"] <= 2
    # Baseline sanity: the no-fault arm drains the trace.
    assert baseline.completed == requests
