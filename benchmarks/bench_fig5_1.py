"""Figure 5.1 — perf/watt at the default target (50 % ± 5 %).

Six PARSEC benchmarks × five versions (Baseline, SO, HARS-I, HARS-E,
HARS-EI), normalized to the baseline, plus the geometric mean.

Paper shape to match: baseline worst everywhere; HARS-I well above the
baseline but below SO; HARS-E comparable to SO; SO clearly ahead of HARS
on blackscholes (the r0 misprediction); HARS-EI ≥ HARS-E with the gap on
ferret (pipeline imbalance).
"""

from conftest import bench_units, run_once

from repro.experiments.fig5_1 import run_fig5_1


def test_fig5_1(benchmark):
    comparison = run_once(benchmark, run_fig5_1, None, bench_units())
    print()
    print(comparison.render())
    gm = comparison.geomean

    # Ordering across the geometric mean.
    assert 1.0 == comparison.normalized["SW"]["baseline"]
    assert gm["baseline"] < gm["hars-i"] < gm["hars-e"]
    assert gm["hars-e"] >= 2.0  # "significantly outperforms the baseline"
    # HARS-E comparable to the static optimal (within ~15 % on GM).
    assert gm["hars-e"] / gm["so"] > 0.85
    # HARS-EI at least matches HARS-E.
    assert gm["hars-ei"] >= 0.98 * gm["hars-e"]
    # blackscholes: SO largely outperforms HARS (wrong r0).
    assert comparison.normalized["BL"]["so"] > 1.1 * (
        comparison.normalized["BL"]["hars-e"]
    )
