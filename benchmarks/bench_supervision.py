"""Supervision benchmarks: quarantine reclamation and restart recovery.

Two scenarios exercise the lifecycle layer end to end and print the
numbers the acceptance criteria are phrased in:

* **hang → quarantine → evict → reclaim** — a two-app MP-HARS co-run
  where one app hangs mid-run.  The table reports the quarantine
  state-machine timestamps from the ledger and how quickly the
  survivor's partition picks up the reclaimed cores (must be within two
  of its adaptation periods).
* **controller restart, warm vs cold** — the whole controller stack is
  killed and restarted mid-run, once restoring from the checkpoint
  store and once cold.  The table reports each app's reconvergence time
  (first return to its target window after the restart); the warm
  restart must reconverge within one adaptation period per app and
  never slower than the cold one.
"""

from conftest import bench_units, run_once

from repro.experiments.runner import RunConfig, RunShape, run
from repro.faults import FaultConfig, LifecycleEvent
from repro.supervision import SupervisorConfig

#: Work units per app at native size; event times scale with this.
NATIVE_UNITS = 400

#: Consecutive in-window trace samples that count as "reconverged".
RECONVERGE_STREAK = 3

#: Horizon (simulated seconds) after an event in which reconvergence /
#: reclamation is measured.
HORIZON_S = 60.0


def _adaptation_period_s(outcome, app_name, adapt_every=5):
    """One adaptation period ≈ ``adapt_every`` beats at the target rate."""
    app = next(a for a in outcome.metrics.apps if a.app_name == app_name)
    return adapt_every / app.target_avg


def _reconvergence_s(outcome, app_name, t0, horizon=HORIZON_S):
    """Seconds from ``t0`` until RECONVERGE_STREAK in-window samples."""
    app = next(a for a in outcome.metrics.apps if a.app_name == app_name)
    streak = 0
    for point in outcome.trace.points(app_name):
        if not t0 < point.time_s <= t0 + horizon:
            continue
        if app.target_min <= point.rate <= app.target_max:
            streak += 1
            if streak == RECONVERGE_STREAK:
                return point.time_s - t0
        else:
            streak = 0
    return horizon


def _first_allocation_s(outcome, app_name, t0, horizon=HORIZON_S):
    """Seconds from ``t0`` until the app's trace shows owned cores."""
    for point in outcome.trace.points(app_name):
        if not t0 <= point.time_s <= t0 + horizon:
            continue
        if point.big_cores + point.little_cores > 0:
            return point.time_s - t0
    return horizon


def _hang_reclaim(units):
    """One app hangs; measure eviction latency and core reclamation."""
    shapes = [
        RunShape(benchmark="swaptions", n_units=units,
                 target_fraction=0.75, seed=1),
        RunShape(benchmark="bodytrack", n_units=units,
                 target_fraction=0.75, seed=2),
    ]
    hang_at = 30.0 * units / NATIVE_UNITS
    faults = FaultConfig(seed=3, lifecycle_schedule=(
        LifecycleEvent("app_hang", at_s=hang_at, target="swaptions-0"),
    ))
    outcome = run(
        "mp-hars-e",
        shapes,
        RunConfig(
            faults=faults, supervision=SupervisorConfig(grace_factor=3.0)
        ),
    )
    record = outcome.supervisor.ledger.record("swaptions-0")
    survivor_period = _adaptation_period_s(outcome, "bodytrack-1")
    reclaim = _first_allocation_s(
        outcome, "bodytrack-1", record.evicted_at
    )
    survivor = next(
        a for a in outcome.metrics.apps if a.app_name == "bodytrack-1"
    )
    return {
        "hang_at": hang_at,
        "record": record,
        "rows": outcome.supervisor.ledger.rows(),
        "survivor_period": survivor_period,
        "reclaim": reclaim,
        "survivor_mnp": survivor.mean_normalized_perf,
        "survivor_status": outcome.supervisor.ledger.status_of("bodytrack-1"),
    }


def _restart_recovery(units):
    """Kill+restart the controller stack; warm restore vs cold start."""
    shapes = [
        RunShape(benchmark="swaptions", n_units=units,
                 target_fraction=0.55, seed=1),
        RunShape(benchmark="bodytrack", n_units=units,
                 target_fraction=0.35, seed=2),
    ]
    restart_at = 120.0 * units / NATIVE_UNITS
    faults = FaultConfig(seed=3, lifecycle_schedule=(
        LifecycleEvent("controller_restart", at_s=restart_at),
    ))
    warm = run(
        "mp-hars-e", shapes, RunConfig(faults=faults, checkpoint=2.0)
    )
    cold = run("mp-hars-e", shapes, RunConfig(faults=faults))
    rows = []
    for shape, app_name in zip(shapes, ("swaptions-0", "bodytrack-1")):
        rows.append(
            {
                "app": app_name,
                "period": _adaptation_period_s(warm, app_name),
                "warm": _reconvergence_s(warm, app_name, restart_at),
                "cold": _reconvergence_s(cold, app_name, restart_at),
            }
        )
    return {
        "restart_at": restart_at,
        "rows": rows,
        "warm_elapsed": warm.metrics.elapsed_s,
        "cold_elapsed": cold.metrics.elapsed_s,
        "checkpoints": warm.checkpoint_store.writes,
    }


def test_hang_quarantine_reclaim(benchmark):
    units = bench_units() or NATIVE_UNITS
    result = run_once(benchmark, _hang_reclaim, units)
    record = result["record"]
    print()
    print(f"{'app':>14} {'status':>12} {'failure':>9} "
          f"{'suspect':>9} {'quarantine':>11} {'evict':>8}")
    for row in result["rows"]:
        print(
            f"{row['app_name']:>14} {row['status']:>12} "
            f"{str(row['failure']):>9} "
            f"{_fmt(row['suspected_at']):>9} "
            f"{_fmt(row['quarantined_at']):>11} "
            f"{_fmt(row['evicted_at']):>8}"
        )
    print(
        f"hang at {result['hang_at']:.1f}s; survivor reclaimed cores "
        f"{result['reclaim']:.2f}s after eviction "
        f"(budget 2 × {result['survivor_period']:.2f}s); "
        f"survivor mnp {result['survivor_mnp']:.3f}"
    )
    # The hung app walks the whole state machine, in order.
    assert record.status.value == "evicted"
    assert record.failure.value == "hung"
    assert (
        result["hang_at"]
        < record.suspected_at
        < record.quarantined_at
        < record.evicted_at
    )
    # Acceptance: the survivor inherits the reclaimed cores within two
    # of its adaptation periods, and completes its run healthy.
    assert result["reclaim"] <= 2 * result["survivor_period"]
    assert result["survivor_status"].value == "done"
    assert result["survivor_mnp"] > 0.8


def test_restart_warm_vs_cold(benchmark):
    units = bench_units() or NATIVE_UNITS
    result = run_once(benchmark, _restart_recovery, units)
    print()
    print(f"{'app':>14} {'period_s':>9} {'warm_s':>7} {'cold_s':>7}")
    for row in result["rows"]:
        print(
            f"{row['app']:>14} {row['period']:>9.2f} "
            f"{row['warm']:>7.2f} {row['cold']:>7.2f}"
        )
    print(
        f"restart at {result['restart_at']:.1f}s; "
        f"{result['checkpoints']} checkpoints written; "
        f"elapsed warm {result['warm_elapsed']:.1f}s "
        f"cold {result['cold_elapsed']:.1f}s"
    )
    assert result["checkpoints"] > 0
    for row in result["rows"]:
        # Acceptance: a checkpoint-restored stack re-enters the target
        # window within one adaptation period, and never slower than a
        # cold restart.  The native-size scenario restarts after the
        # partitions settle; scaled-down runs may restart earlier, so
        # the one-period bound is only asserted at native size.
        if units >= NATIVE_UNITS:
            assert row["warm"] <= row["period"]
        assert row["warm"] <= row["cold"]


def _fmt(value):
    return f"{value:.2f}" if value is not None else "-"
