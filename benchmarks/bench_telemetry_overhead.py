"""Telemetry overhead: the observation layer must be near-free.

Runs the same Figure 5.1-style HARS-E run with telemetry off and on and
asserts the tentpole's two acceptance properties:

* **identity** — metrics *and* traces are bit-identical with the
  telemetry hub attached (observation only, zero result drift);
* **overhead** — the instrumented run costs at most 10 % extra
  wall-clock on the fast profile (best-of-``REPEATS`` timing, same
  harness as ``bench_kernel_overhead``).

Also prints a short summary of what the registry actually collected, via
the shared :func:`conftest.export_telemetry` helper.
"""

import dataclasses
import time

from conftest import bench_units, export_telemetry, run_once

from repro.core.calibration import calibrate
from repro.experiments.runner import (
    RunConfig,
    RunShape,
    measure_max_rate,
    run,
)
from repro.platform.spec import odroid_xu3
from repro.telemetry import flatten_snapshot

#: Timed repetitions per configuration (best-of, to shed scheduler noise).
REPEATS = 3

#: Acceptance ceiling: instrumented / plain wall-clock.
MAX_OVERHEAD = 1.10


def _snapshot(outcome):
    """Everything observable from a run, in comparable form."""
    return (
        dataclasses.asdict(outcome.metrics),
        tuple(
            (name, outcome.trace.points(name))
            for name in sorted(outcome.trace.app_names)
        ),
    )


def _timed_run(shape, config):
    best = float("inf")
    outcome = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        outcome = run("hars-e", shape, config)
        best = min(best, time.perf_counter() - start)
    return outcome, best


def _compare(units):
    spec = odroid_xu3()
    shape = RunShape(benchmark="swaptions", n_units=units)
    # Warm the shared memoizations (baseline max-rate, calibration) so
    # neither configuration pays them inside the timed region.
    measure_max_rate(spec, shape)
    calibrate(spec)
    off_config = RunConfig(spec=spec)
    on_config = off_config.with_(telemetry=True)
    run("hars-e", shape, off_config)  # warmup (imports, allocs)
    run("hars-e", shape, on_config)
    off_outcome, off_s = _timed_run(shape, off_config)
    on_outcome, on_s = _timed_run(shape, on_config)
    return off_outcome, off_s, on_outcome, on_s


def test_telemetry_overhead(benchmark):
    units = bench_units() or 400
    off_outcome, off_s, on_outcome, on_s = run_once(
        benchmark, _compare, units
    )
    overhead = on_s / off_s
    print()
    print(
        f"HARS-E swaptions x{units}: "
        f"off {off_s:.2f}s, on {on_s:.2f}s, overhead {overhead:.3f}x"
    )
    flat = flatten_snapshot(on_outcome.telemetry.registry.snapshot())
    print(f"registry: {len(flat)} samples collected")
    print(export_telemetry(on_outcome, "summary"))
    # Telemetry is observation-only: bit-identical metrics AND traces,
    # not approximately equal.
    assert off_outcome.telemetry is None
    assert _snapshot(on_outcome) == _snapshot(off_outcome)
    # And it must be collected — a free no-op registry would also pass
    # the identity check.
    assert flat[("heartbeats_total", (("app", "swaptions"),))] == units
    assert overhead <= MAX_OVERHEAD, (
        f"telemetry must cost <= {MAX_OVERHEAD:.0%} of the plain run, "
        f"got {overhead:.3f}x"
    )
