"""Guardrail benchmarks: cap enforcement, bit-identity, thrash damping.

Three scenarios exercise the guardrail layer end to end and print the
numbers the acceptance criteria are phrased in:

* **power-cap sweep** — the same run under progressively tighter run
  caps (fractions of the uncapped average power).  Each capped run must
  land its average power at or under the cap, and any post-actuation
  violation must be throttled away within one adaptation period (the
  layer's worst-case reaction latency).
* **empty-config bit-identity** — a run with ``GuardrailConfig()`` (all
  guards off) must produce metrics and traces bit-identical to a run
  built with no guardrail config at all: the layer is never attached,
  so the identity contract of the fault/supervision/telemetry layers
  holds here too.
* **oscillation damping** — a tight tolerance window drives HARS-E into
  a limit cycle (three neighbouring states, one flip per adaptation
  period).  With the damper on, the run must show at least 5× fewer
  state flips at equal-or-better mean normalized performance.
"""

import dataclasses

from conftest import bench_units, run_once

from repro.experiments.runner import RunConfig, RunShape, run
from repro.guardrails import GuardrailConfig

#: Work units at native size (the paper's swaptions native run length).
NATIVE_UNITS = 300

#: Fractions of the uncapped average power swept as run caps.
CAP_FRACTIONS = (0.9, 0.8, 0.7)

#: Acceptance floor on thrash reduction with the damper engaged.
FLIP_REDUCTION_FLOOR = 5.0


def _state_flips(outcome):
    """Consecutive trace points whose applied system state differs."""
    total = 0
    for name in outcome.trace.app_names:
        points = outcome.trace.points(name)
        keys = [
            (p.big_cores, p.little_cores, p.big_freq_mhz, p.little_freq_mhz)
            for p in points
        ]
        total += sum(1 for a, b in zip(keys, keys[1:]) if a != b)
    return total


def _snapshot(outcome):
    """Everything a run observably produced, as comparable values."""
    return (
        dataclasses.asdict(outcome.metrics),
        tuple(
            (name, outcome.trace.points(name))
            for name in sorted(outcome.trace.app_names)
        ),
    )


def _cap_sweep(units):
    shape = RunShape(benchmark="swaptions", n_units=units, seed=0)
    base = run("hars-e", shape)
    period_s = shape.adapt_every / base.metrics.apps[0].target_avg
    rows = []
    for fraction in CAP_FRACTIONS:
        cap_w = fraction * base.metrics.avg_power_w
        capped = run(
            "hars-e",
            shape,
            RunConfig(guardrails=GuardrailConfig(power_cap_w=cap_w)),
        )
        enforcer = capped.guardrails.enforcer
        rows.append(
            {
                "fraction": fraction,
                "cap_w": cap_w,
                "avg_w": capped.metrics.avg_power_w,
                "streak_s": enforcer.max_violation_streak_s,
                "trips": enforcer.trips,
                "forced": capped.guardrails.forced_cycles,
                "mnp": capped.metrics.apps[0].mean_normalized_perf,
            }
        )
    return {
        "base_avg_w": base.metrics.avg_power_w,
        "base_mnp": base.metrics.apps[0].mean_normalized_perf,
        "period_s": period_s,
        "rows": rows,
    }


def _bit_identity(units):
    shape = RunShape(benchmark="swaptions", n_units=units, seed=0)
    bare = run("hars-e", shape)
    empty = run("hars-e", shape, RunConfig(guardrails=GuardrailConfig()))
    unset = run("hars-e", shape, RunConfig(guardrails=None))
    return {
        "bare": _snapshot(bare),
        "empty": _snapshot(empty),
        "unset": _snapshot(unset),
        "layer_attached": empty.guardrails is not None,
        "avg_w": bare.metrics.avg_power_w,
    }


def _thrash(units):
    # tolerance=0.005 shrinks the target window until no reachable state
    # sits inside it: the search orbits a three-state limit cycle.
    shape = RunShape(
        benchmark="swaptions", n_units=units, seed=0, tolerance=0.005
    )
    plain = run("hars-e", shape)
    damped = run(
        "hars-e",
        shape,
        RunConfig(
            guardrails=GuardrailConfig(
                damper_window=4,
                damper_flips=3,
                damper_states=3,
                damper_hold_periods=16,
            )
        ),
    )
    damper = damped.guardrails.damper
    return {
        "plain_flips": _state_flips(plain),
        "damped_flips": _state_flips(damped),
        "plain_mnp": plain.metrics.apps[0].mean_normalized_perf,
        "damped_mnp": damped.metrics.apps[0].mean_normalized_perf,
        "plain_avg_w": plain.metrics.avg_power_w,
        "damped_avg_w": damped.metrics.avg_power_w,
        "trips": damper.trips,
        "held_cycles": damper.held_cycles,
    }


def test_power_cap_sweep(benchmark):
    units = bench_units() or NATIVE_UNITS
    result = run_once(benchmark, _cap_sweep, units)
    print()
    print(
        f"uncapped avg {result['base_avg_w']:.3f} W, "
        f"mnp {result['base_mnp']:.3f}, "
        f"adaptation period {result['period_s']:.2f} s"
    )
    print(f"{'cap':>6} {'cap_w':>7} {'avg_w':>7} {'streak_s':>9} "
          f"{'trips':>6} {'forced':>7} {'mnp':>6}")
    for row in result["rows"]:
        print(
            f"{row['fraction']:>6.2f} {row['cap_w']:>7.3f} "
            f"{row['avg_w']:>7.3f} {row['streak_s']:>9.2f} "
            f"{row['trips']:>6} {row['forced']:>7} {row['mnp']:>6.3f}"
        )
    for row in result["rows"]:
        # Acceptance: the cap holds on average, and any violation is
        # throttled away within one adaptation period.
        assert row["avg_w"] <= row["cap_w"]
        assert row["streak_s"] <= result["period_s"]


def test_empty_config_is_bit_identical(benchmark):
    units = bench_units() or NATIVE_UNITS
    result = run_once(benchmark, _bit_identity, units)
    print()
    print(
        f"avg power {result['avg_w']:.3f} W; "
        f"layer attached with empty config: {result['layer_attached']}"
    )
    # Acceptance: a disabled config attaches nothing and changes nothing.
    assert not result["layer_attached"]
    assert result["empty"] == result["bare"]
    assert result["unset"] == result["bare"]


def test_thrash_damping(benchmark):
    units = bench_units() or NATIVE_UNITS
    result = run_once(benchmark, _thrash, units)
    reduction = result["plain_flips"] / max(result["damped_flips"], 1)
    print()
    print(f"{'variant':>8} {'flips':>6} {'mnp':>7} {'avg_w':>7}")
    print(f"{'plain':>8} {result['plain_flips']:>6} "
          f"{result['plain_mnp']:>7.4f} {result['plain_avg_w']:>7.3f}")
    print(f"{'damped':>8} {result['damped_flips']:>6} "
          f"{result['damped_mnp']:>7.4f} {result['damped_avg_w']:>7.3f}")
    print(
        f"{reduction:.1f}x fewer flips; {result['trips']} damper trips, "
        f"{result['held_cycles']} held cycles"
    )
    assert result["trips"] > 0
    # Acceptance: >=5x fewer flips at equal-or-better target
    # satisfaction.  The limit cycle needs the native run length to
    # establish itself; scaled-down passes only check engagement.
    if units >= NATIVE_UNITS:
        assert reduction >= FLIP_REDUCTION_FLOOR
        assert result["damped_mnp"] >= result["plain_mnp"]
