"""Shared configuration for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports.  By default the runs use
the native-input heartbeat counts; set ``REPRO_BENCH_UNITS=<n>`` to scale
every benchmark down to ``n`` heartbeats for a quick pass (e.g. 60).
"""

from __future__ import annotations

import os
from typing import Optional

import pytest


def bench_units() -> Optional[int]:
    """Heartbeats per benchmark, or ``None`` for native-input sizes."""
    value = os.environ.get("REPRO_BENCH_UNITS")
    return int(value) if value else None


@pytest.fixture(scope="session")
def units() -> Optional[int]:
    return bench_units()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Figures are deterministic whole-grid simulations, not microbenchmarks
    — one round gives the regeneration wall time without re-running a
    multi-minute grid.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def export_telemetry(outcome, fmt: str = "summary") -> str:
    """Render an instrumented run's registry in one exporter format.

    The shared helper behind every benchmark that prints telemetry:
    ``fmt`` is one of ``summary`` / ``jsonl`` / ``prometheus`` / ``csv``
    (the :data:`repro.cli.TELEMETRY_FORMATS`).  The outcome must come
    from a run with ``RunConfig(telemetry=...)`` enabled.
    """
    from repro.telemetry import exporters

    renderers = {
        "summary": exporters.summary_table,
        "jsonl": exporters.snapshot_to_jsonl,
        "prometheus": exporters.snapshot_to_prometheus,
        "csv": exporters.snapshot_to_csv,
    }
    return renderers[fmt](outcome.telemetry.registry.snapshot())
