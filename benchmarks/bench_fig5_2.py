"""Figure 5.2 — perf/watt at the high target (75 % ± 5 %).

Same grid as Figure 5.1 at the demanding target.  Paper shape: every
adaptive version still clearly beats the baseline, but the gains are
*smaller* than at the default target because less energy slack remains.
"""

from conftest import bench_units, run_once

from repro.experiments.fig5_1 import run_fig5_1
from repro.experiments.fig5_2 import gain_compression, run_fig5_2


def test_fig5_2(benchmark):
    high = run_once(benchmark, run_fig5_2, None, bench_units())
    default = run_fig5_1(n_units=bench_units())
    print()
    print(high.render())
    compression = gain_compression(default, high)
    print("\nGM gain at 75% target / GM gain at 50% target:")
    for version, ratio in compression.items():
        print(f"  {version}: {ratio:.2f}")

    gm = high.geomean
    assert gm["hars-e"] > 1.3  # still significantly above baseline
    # The paper's compression finding: smaller gains at the high target.
    for version in ("so", "hars-e", "hars-ei"):
        assert compression[version] < 1.0
