"""Fault-tolerance sweep: graceful degradation under injected faults.

Sweeps the fault-injection layer's rates over a Figure 5.1-style HARS-E
run and reports, per rate point, target satisfaction (mean normalized
performance) and perf/watt — the degradation curve a heterogeneity-aware
runtime should show: soft decay with fault pressure, never a crash.

Two hard properties are asserted:

* **zero-rate identity** — a run with every fault rate at 0 is
  bit-identical (metrics *and* traces) to a run without the fault layer
  at all;
* **supervised identity** — the same holds for the full supervision
  stack (lifecycle Supervisor + controller Checkpointer): with zero
  fault rates it observes and snapshots but never perturbs the run;
* **graceful degradation** — the paper-default fault mix completes the
  whole run without an unhandled exception while actually injecting
  faults (the injector's counters are non-zero).
"""

import dataclasses

from conftest import bench_units, run_once

from repro.core.calibration import calibrate
from repro.experiments.runner import (
    RunConfig,
    RunShape,
    measure_max_rate,
    run,
)
from repro.faults import FaultConfig
from repro.platform.spec import odroid_xu3

#: Scale factors applied to the default fault mix (0.0 = fault-free).
RATES = (0.0, 0.4, 1.0, 2.0, 4.0)


def _snapshot(outcome):
    """Everything observable from a run, in comparable form."""
    return (
        dataclasses.asdict(outcome.metrics),
        tuple(
            (name, outcome.trace.points(name))
            for name in sorted(outcome.trace.app_names)
        ),
    )


def _sweep(units):
    spec = odroid_xu3()
    shape = RunShape(benchmark="swaptions", n_units=units)
    measure_max_rate(spec, shape)
    calibrate(spec)
    clean = run("hars-e", shape, RunConfig(spec=spec))
    supervised = run(
        "hars-e",
        shape,
        RunConfig(spec=spec, supervision=True, checkpoint=1.0),
    )
    rows = []
    for factor in RATES:
        faults = FaultConfig.defaults().scaled(factor)
        outcome = run("hars-e", shape, RunConfig(spec=spec, faults=faults))
        app = outcome.metrics.apps[0]
        injector = outcome.fault_injector
        rows.append(
            {
                "factor": factor,
                "snapshot": _snapshot(outcome),
                "mnp": app.mean_normalized_perf,
                "perf_per_watt": app.mean_normalized_perf
                / outcome.metrics.avg_power_w,
                "injected": injector.total_injected if injector else 0,
                "recovered": injector.total_recovered if injector else 0,
            }
        )
    supervised_row = {
        "snapshot": _snapshot(supervised),
        "evictions": supervised.supervisor.evictions,
        "checkpoints": supervised.checkpoint_store.writes,
    }
    return _snapshot(clean), supervised_row, rows


def test_fault_tolerance_sweep(benchmark):
    units = bench_units() or 400
    clean_snap, supervised_row, rows = run_once(benchmark, _sweep, units)
    print()
    print(
        f"{'scale':>6} {'mnp':>7} {'perf/W':>8} "
        f"{'injected':>9} {'recovered':>10}"
    )
    for row in rows:
        print(
            f"{row['factor']:>6.1f} {row['mnp']:>7.3f} "
            f"{row['perf_per_watt']:>8.4f} "
            f"{row['injected']:>9d} {row['recovered']:>10d}"
        )
    zero = rows[0]
    # Scale 0 disables every fault channel: the run must be bit-identical
    # to one that never constructed the fault layer.
    assert zero["factor"] == 0.0
    assert zero["injected"] == 0
    assert zero["snapshot"] == clean_snap
    # The supervised stack (Supervisor + Checkpointer, zero fault rates)
    # watches and snapshots without perturbing the run at all.
    print(
        f"supervised identity: {supervised_row['checkpoints']} checkpoints, "
        f"{supervised_row['evictions']} evictions"
    )
    assert supervised_row["snapshot"] == clean_snap
    assert supervised_row["evictions"] == 0
    assert supervised_row["checkpoints"] > 0
    # The default mix must actually exercise the fault paths, and every
    # faulted run above completed without an unhandled exception.
    defaults_row = next(row for row in rows if row["factor"] == 1.0)
    assert defaults_row["injected"] > 0
    for row in rows:
        assert 0.0 < row["mnp"] <= 1.0
