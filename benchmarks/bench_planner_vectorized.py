"""Vectorized planner speedup: batched Algorithm 2 vs the scalar sweep.

The tensorized backend (:mod:`repro.kernel.batchplan`) must be a pure
speedup: same selected states, same ``SearchResult`` counters, same
floats — just argmax over precomputed state-space tensors instead of a
Python loop of estimator calls per candidate.  This benchmark replays
the same multi-app planning workload through both backends —

* **scalar**: :func:`repro.core.search.get_next_sys_state` per request,
  through a warm cached estimation layer (the pre-refactor Plan stage);
* **vector**: :meth:`repro.kernel.batchplan.PlanService.plan_many` over
  the same requests, tensors warm;

— asserts every result pair is equal (dataclass equality over
``SearchResult``, i.e. bit-identical floats), requires the vector
backend to be at least **10x** faster, and writes the measured numbers
to ``BENCH_planner.json`` at the repo root for tracking.
"""

import json
import pathlib
import random
import time

from conftest import run_once

from repro.core.calibration import calibrate
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import SearchSpace
from repro.core.search import get_next_sys_state
from repro.core.state import from_indices
from repro.heartbeats.targets import PerformanceTarget
from repro.kernel.batchplan import PlanRequest, PlanService
from repro.kernel.estimation import EstimationLayer
from repro.platform.spec import odroid_xu3

#: Timed repetitions per backend (best-of, to shed scheduler noise).
REPEATS = 3
#: Concurrent applications per planning round (an MP-HARS-sized mix).
N_APPS = 8
#: Planning rounds replayed per timed pass.
N_ROUNDS = 25
#: The HARS-E adaptation box.
SPACE = SearchSpace(m=4, n=4, d=7)

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_planner.json"
)


def _workload(spec):
    """A deterministic multi-app planning trace: per round, one request
    per app with pseudo-random current state, observed rate, and target."""
    rng = random.Random(20150608)  # the paper's DAC year, fixed forever
    rounds = []
    for _ in range(N_ROUNDS):
        requests = []
        for _ in range(N_APPS):
            while True:
                c_big = rng.randint(0, spec.big.n_cores)
                c_little = rng.randint(0, spec.little.n_cores)
                if c_big or c_little:
                    break
            current = from_indices(
                spec,
                c_big,
                c_little,
                rng.randrange(len(spec.big.frequencies_mhz)),
                rng.randrange(len(spec.little.frequencies_mhz)),
            )
            avg = rng.uniform(0.5, 30.0)
            requests.append(
                dict(
                    current=current,
                    observed_rate=rng.uniform(0.1, 40.0),
                    n_threads=rng.choice([2, 4, 8]),
                    target=PerformanceTarget(0.9 * avg, avg, 1.1 * avg),
                    space=SPACE,
                )
            )
        rounds.append(requests)
    return rounds


def _scalar_pass(spec, layer, rounds):
    results = []
    for requests in rounds:
        for req in requests:
            results.append(
                get_next_sys_state(
                    spec=spec,
                    perf_estimator=layer.perf,
                    power_estimator=layer.power,
                    **req,
                )
            )
    return results


def _vector_pass(spec, layer, rounds):
    service = PlanService()
    results = []
    for requests in rounds:
        results.extend(
            service.plan_many(
                [
                    PlanRequest(spec=spec, estimation=layer, **req)
                    for req in requests
                ]
            )
        )
    return results


def _timed(fn, *args):
    best = float("inf")
    results = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        results = fn(*args)
        best = min(best, time.perf_counter() - start)
    return results, best


def _compare():
    spec = odroid_xu3()
    power = calibrate(spec)
    perf = PerformanceEstimator()
    rounds = _workload(spec)
    scalar_layer = EstimationLayer(perf, power, cached=True)
    vector_layer = EstimationLayer(perf, power, cached=True)
    # Warm both backends outside the timed region: the scalar layer's
    # per-state memo and the vector layer's tensors — steady-state Plan
    # phases run warm in both worlds.
    _scalar_pass(spec, scalar_layer, rounds[:1])
    _vector_pass(spec, vector_layer, rounds[:1])
    scalar_results, scalar_s = _timed(_scalar_pass, spec, scalar_layer, rounds)
    vector_results, vector_s = _timed(_vector_pass, spec, vector_layer, rounds)
    return scalar_results, scalar_s, vector_results, vector_s


def test_planner_vectorized(benchmark):
    scalar_results, scalar_s, vector_results, vector_s = run_once(
        benchmark, _compare
    )
    n_plans = N_APPS * N_ROUNDS
    speedup = scalar_s / vector_s
    parity = scalar_results == vector_results
    print()
    print(
        f"planner x{n_plans} ({N_APPS} apps x {N_ROUNDS} rounds): "
        f"scalar {scalar_s * 1e3:.1f}ms, vector {vector_s * 1e3:.1f}ms, "
        f"speedup {speedup:.1f}x, "
        f"parity {'bit-identical' if parity else 'MISMATCH'}"
    )
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bench_planner_vectorized",
                "n_apps": N_APPS,
                "n_rounds": N_ROUNDS,
                "n_plans": n_plans,
                "space": {"m": SPACE.m, "n": SPACE.n, "d": SPACE.d},
                "scalar_s": round(scalar_s, 6),
                "vector_s": round(vector_s, 6),
                "speedup": round(speedup, 2),
                "parity": "bit-identical" if parity else "mismatch",
            },
            indent=2,
        )
        + "\n"
    )
    # The backends must agree on every single plan — full dataclass
    # equality (states, floats, and counters), not approx.
    assert parity
    assert speedup >= 10.0, (
        f"vectorized planner must be >= 10x over the scalar sweep, "
        f"got {speedup:.1f}x"
    )
