"""Figure 5.3 — efficiency and overhead vs the explored-space size.

Sweeps the search distance d ∈ {1, 3, 5, 7, 9} (HARS-EI box) at both
targets.  Paper shape: (a) geomean perf/watt rises with d up to a knee
(the paper observes it near d = 5) and plateaus; (b) the manager's CPU
utilization grows with d but stays small (< 6 % at d = 9).
"""

from conftest import bench_units, run_once

from repro.experiments.fig5_3 import run_fig5_3


def test_fig5_3(benchmark):
    units = bench_units()
    sweep = run_once(benchmark, run_fig5_3, n_units=units)
    print()
    print(sweep.render())
    for target in sorted(sweep.efficiency):
        print(f"knee at target {target:.0%}: d = {sweep.knee(target)}")

    for target in (0.5, 0.75):
        eff = sweep.efficiency[target]
        cpu = sweep.cpu_percent[target]
        # (a) d = 1 is never the best; wide search helps.
        assert max(eff.values()) > eff[1]
        assert eff[9] > 0.9 * max(eff.values())  # plateau, no collapse
        # The knee lies past the incremental end of the sweep.
        assert sweep.knee(target) >= 3
        # (b) overhead grows with d and stays single-digit percent.
        assert cpu[9] > cpu[1]
        assert cpu[9] < 8.0
    if units is None:
        # At native scale the high-target knee sits mid-sweep (the paper
        # sees d = 5 for both; our default-target curve keeps creeping
        # through d = 9 — see EXPERIMENTS.md).
        assert sweep.knee(0.75) in (3, 5, 7)
        assert sweep.knee(0.5) >= 5
