"""Figure 5.4 — multi-application perf/watt.

Six benchmark pairs × four versions (Baseline, CONS-I, MP-HARS-I,
MP-HARS-E), one bar per case normalized to its baseline, plus the
geometric mean.

Paper shape: MP-HARS-E well above both the baseline (×3.17 there) and
CONS-I (×1.46 there) on the geomean; MP-HARS-I between CONS-I and
MP-HARS-E; case 6 (BO+BL) is the exception where CONS-I competes, driven
by blackscholes' heartbeat-free startup phase.
"""

from conftest import bench_units, run_once

from repro.experiments.fig5_4 import run_fig5_4


def test_fig5_4(benchmark):
    units = bench_units()
    comparison = run_once(benchmark, run_fig5_4, n_units=units)
    print()
    print(comparison.render())
    gm = comparison.geomean

    assert gm["baseline"] == 1.0
    # Ordering on the geomean.
    assert gm["cons-i"] > 1.0
    assert gm["mp-hars-e"] > gm["mp-hars-i"] > gm["cons-i"]
    if units is None:
        # Headline factors hold at native scale (shape, not absolute):
        # MP-HARS-E beats the baseline by at least 2x and CONS-I by at
        # least 30 %.
        assert gm["mp-hars-e"] > 2.0
        assert gm["mp-hars-e"] / gm["cons-i"] > 1.3
        # The blackscholes anomaly (the paper's case-6 discussion):
        # blackscholes' heartbeat-free startup lets CONS-I settle early,
        # while MP-HARS must hand blackscholes whatever cores are left —
        # so in the blackscholes pairings (cases 2 and 6) CONS-I becomes
        # unusually competitive, catching or beating the *incremental*
        # MP-HARS even though it trails it clearly on the geomean.
        bl_cases = [
            k
            for k in comparison.normalized
            if k.startswith("case2") or k.startswith("case6")
        ]
        assert gm["mp-hars-i"] / gm["cons-i"] > 1.05
        assert any(
            comparison.normalized[case]["mp-hars-i"]
            / comparison.normalized[case]["cons-i"]
            < 1.05
            for case in bl_cases
        )
