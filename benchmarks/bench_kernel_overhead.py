"""Kernel refactor overhead: fast profile + estimation cache vs seed.

The PR 1 refactor must be a pure speedup: the array-based engine
profile, the GTS partition cache, and the kernel's memoizing estimation
layer may not change a single float of any experiment metric.  This
benchmark runs the same Figure 5.1-style HARS-E run twice —

* **new**: the default configuration (``profile="fast"``, cached
  estimates);
* **old**: the pre-refactor behaviour (``profile="legacy"``, raw
  estimators) — the seed engine's dict-based tick loop and uncached
  Algorithm 2 sweeps;

— and asserts (a) byte-identical metrics and traces, and (b) at least a
2x wall-clock speedup.
"""

import dataclasses
import time

from conftest import bench_units, run_once

from repro.core.calibration import calibrate
from repro.experiments.runner import (
    RunConfig,
    RunShape,
    measure_max_rate,
    run,
)
from repro.platform.spec import odroid_xu3

#: Timed repetitions per configuration (best-of, to shed scheduler noise).
REPEATS = 3


def _snapshot(outcome):
    """Everything observable from a run, in comparable form."""
    return (
        dataclasses.asdict(outcome.metrics),
        tuple(
            (name, outcome.trace.points(name))
            for name in sorted(outcome.trace.app_names)
        ),
    )


def _timed_run(shape, config):
    best = float("inf")
    outcome = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        outcome = run("hars-e", shape, config)
        best = min(best, time.perf_counter() - start)
    return _snapshot(outcome), best


def _compare(units):
    spec = odroid_xu3()
    shape = RunShape(benchmark="swaptions", n_units=units)
    # Warm the shared memoizations (baseline max-rate, calibration) so
    # neither configuration pays them inside the timed region.
    measure_max_rate(spec, shape)
    calibrate(spec)
    new_config = RunConfig(spec=spec)
    old_config = new_config.with_(profile="legacy", cache_estimates=False)
    run("hars-e", shape, new_config)  # warmup (imports, allocs)
    run("hars-e", shape, old_config)
    new_snap, new_s = _timed_run(shape, new_config)
    old_snap, old_s = _timed_run(shape, old_config)
    return new_snap, new_s, old_snap, old_s


def test_kernel_overhead(benchmark):
    units = bench_units() or 400
    new_snap, new_s, old_snap, old_s = run_once(benchmark, _compare, units)
    speedup = old_s / new_s
    print()
    print(
        f"HARS-E swaptions x{units}: "
        f"new {new_s:.2f}s, old {old_s:.2f}s, speedup {speedup:.2f}x"
    )
    # The refactor must never change results — bit-identical metrics
    # AND traces, not approximately equal.
    assert new_snap == old_snap
    assert speedup >= 2.0, (
        f"kernel refactor must be >= 2x over the pre-refactor engine, "
        f"got {speedup:.2f}x"
    )
