"""Figures 5.5–5.7 — behaviour graphs of case 4 (bodytrack+fluidanimate).

Reruns case 4 under CONS-I, MP-HARS-I and MP-HARS-E with tracing and
prints the HPS / core-count / frequency series against the heartbeat
index (the paper's behaviour-graph axes).

Paper observations to match:

* CONS-I (5.5): fluidanimate spends much of the run *above* its target
  window — the conservative global model cannot decrease once bodytrack
  achieves;
* MP-HARS-I (5.6): both applications track their windows;
* MP-HARS-E (5.7): bodytrack settles with no big cores (little-cluster
  preference) while fluidanimate keeps big cores at reduced frequency.
"""

from conftest import bench_units, run_once

from repro.experiments.fig5_5_7 import run_fig5_5_7


def test_fig5_5_7(benchmark):
    units = bench_units()
    runs = run_once(benchmark, run_fig5_5_7, n_units=units)
    print()
    for version in ("cons-i", "mp-hars-i", "mp-hars-e"):
        print(runs[version].render())
        print()

    def fl_app(run):
        return next(n for n in run.app_names() if "fluid" in n)

    def bo_app(run):
        return next(n for n in run.app_names() if "body" in n)

    cons = runs["cons-i"]
    mp_i = runs["mp-hars-i"]
    mp_e = runs["mp-hars-e"]

    skip = 50 if units is None else max(10, units // 4)
    # Figure 5.5 vs 5.6/5.7: fluidanimate overshoots its window more
    # under the conservative global model than under either MP-HARS
    # version, which adapt it independently.
    cons_overshoot = cons.overshoot_fraction(fl_app(cons), skip=skip)
    assert cons_overshoot > mp_e.overshoot_fraction(fl_app(mp_e), skip=skip)
    if units is None:
        assert cons_overshoot > mp_i.overshoot_fraction(
            fl_app(mp_i), skip=skip
        )
        # Figure 5.7's resource split under MP-HARS-E: one application
        # settles with (almost) no big cores — the little-cluster
        # preference — while the other holds its big cores at a clearly
        # reduced frequency.  (Which app takes which role is an arbitrary
        # first-adapter symmetry in our substrate.)
        big_means = sorted(
            mp_e.steady_mean(name, "big_cores", skip=skip)
            for name in mp_e.app_names()
        )
        assert big_means[0] < 1.0
        assert mp_e.steady_mean(fl_app(mp_e), "big_freq_mhz", skip=skip) < 1500
        assert mp_e.steady_mean(bo_app(mp_e), "big_freq_mhz", skip=skip) < 1500
