"""Ablation: HARS vs the standard cpufreq governor family.

Beyond the paper's comparisons.  The paper's baseline is the
``performance`` governor; real systems default to ``ondemand``.  This
bench quantifies where HARS's gains come from: ondemand saves power over
performance by ramping down on idle, but it is target-blind — it keeps
the application at full speed whenever it is busy — whereas HARS
exploits the slack between the target and the maximum, which is where
most of the energy lives.

Expected ordering (perf/watt, 50 % ± 5 % target):
performance (baseline) < ondemand < HARS-E.
"""

from conftest import bench_units, run_once

from repro.experiments.runner import RunShape, run


def _governor_comparison(units):
    outcomes = {}
    for version in ("baseline", "ondemand", "hars-e"):
        metrics = run(
            version, RunShape("bodytrack", n_units=units)
        ).metrics
        outcomes[version] = {
            "pp": metrics.perf_per_watt,
            "perf": metrics.apps[0].mean_normalized_perf,
            "watts": metrics.avg_power_w,
        }
    return outcomes


def test_ablation_governors(benchmark):
    units = bench_units() or 150
    outcomes = run_once(benchmark, _governor_comparison, units)
    print()
    print("bodytrack, default target — governor family vs HARS:")
    for version, o in outcomes.items():
        print(
            f"  {version:12s} perf={o['perf']:.3f} watts={o['watts']:.2f} "
            f"perf/watt={o['pp']:.3f}"
        )
    # Ondemand is target-blind: on a CPU-bound application it tracks the
    # performance governor closely (it only trims idle-cluster waste)...
    assert outcomes["ondemand"]["watts"] <= outcomes["baseline"]["watts"] + 0.05
    assert (
        0.9 * outcomes["baseline"]["pp"]
        <= outcomes["ondemand"]["pp"]
        <= 2.0 * outcomes["baseline"]["pp"]
    )
    # ...while HARS, which knows the target, exploits the slack between
    # target and maximum — where most of the energy lives.
    assert outcomes["hars-e"]["pp"] > 1.3 * outcomes["ondemand"]["pp"]