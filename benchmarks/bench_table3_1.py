"""Table 3.1 — thread assignment to the big and little clusters.

Regenerates the assignment table for the evaluation platform
(C_B = C_L = 4, r = 1.5) and checks the published rows.
"""

from conftest import run_once

from repro.experiments.table3_1 import build_table, render_table


def test_table3_1(benchmark):
    rows = run_once(benchmark, build_table, 4, 4, 1.5, 16)
    print()
    print("Table 3.1 — thread assignment (C_B = C_L = 4, r = 1.5)")
    print(render_table(rows))
    # The paper's own configuration: 8 threads on the 4+4 XU3.
    eight = rows[7].assignment
    assert (eight.t_big, eight.t_little) == (6, 2)
    assert (eight.used_big, eight.used_little) == (4, 2)
