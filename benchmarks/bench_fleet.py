"""Fleet serving at scale: router frontier + shard-determinism gate.

Runs the :mod:`repro.fleet` cluster at native scale (200 nodes, 100k
requests — override with ``REPRO_FLEET_NODES`` / ``REPRO_FLEET_REQUESTS``
for the CI smoke profile) once per routing policy, then re-runs the
deadline-risk router under a different shard count and asserts the
summaries are **bit-identical** — the cluster's core determinism claim.

Two result gates:

* **determinism** — ``summary()`` equality across shard counts, ``==``
  on floats, no tolerances;
* **frontier**   — Hurry-up routing (``deadline-risk``) must beat
  round-robin on P99 at equal-or-better energy: the whole point of
  steering deadline-risk requests onto the big cores.

Writes throughput and the P99-vs-energy frontier for all three routers
to ``BENCH_fleet.json`` at the repo root for tracking.
"""

import dataclasses
import json
import os
import pathlib
import time

from repro.fleet import FleetConfig, ROUTERS, run_fleet

#: Native scale (the ISSUE's acceptance run); CI smoke overrides via env.
NATIVE_NODES = 200
NATIVE_REQUESTS = 100_000

#: Shard count of the determinism re-run (clamped to the fleet size).
DETERMINISM_SHARDS = 8

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_fleet.json"
)


def _fleet_scale():
    nodes = int(os.environ.get("REPRO_FLEET_NODES") or NATIVE_NODES)
    requests = int(os.environ.get("REPRO_FLEET_REQUESTS") or NATIVE_REQUESTS)
    return nodes, requests


def _run(router, config):
    start = time.perf_counter()
    result = run_fleet(router, config)
    wall_s = time.perf_counter() - start
    return result, wall_s


def test_fleet_routers(benchmark):
    nodes, requests = _fleet_scale()
    config = FleetConfig(nodes=nodes, requests=requests)

    def _sweep():
        return {name: _run(name, config) for name in sorted(ROUTERS)}

    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # Determinism gate: same seeded run, different shard interleave.
    sharded_config = dataclasses.replace(
        config, shards=min(DETERMINISM_SHARDS, nodes)
    )
    sharded, sharded_wall_s = _run("deadline-risk", sharded_config)
    baseline = runs["deadline-risk"][0]
    deterministic = sharded.summary() == baseline.summary()

    print()
    rows = {}
    for name in sorted(runs):
        result, wall_s = runs[name]
        rows[name] = {
            "p50_ms": round(result.p50_s * 1e3, 3),
            "p95_ms": round(result.p95_s * 1e3, 3),
            "p99_ms": round(result.p99_s * 1e3, 3),
            "miss_ratio": round(result.miss_ratio, 6),
            "energy_j": round(result.energy_j, 3),
            "avg_power_w": round(result.avg_power_w, 3),
            "completed": result.completed,
            "unserved": result.unserved,
            "hot_lane_completed": result.lane_completed.get("hot", 0),
            "wall_s": round(wall_s, 3),
            "requests_per_wall_s": round(result.completed / wall_s, 1),
        }
        print(
            f"{name:>13}: p99={result.p99_s * 1e3:7.1f}ms "
            f"miss={result.miss_ratio:6.3%} "
            f"energy={result.energy_j:10.1f}J "
            f"wall={wall_s:6.1f}s "
            f"({result.completed / wall_s:8.0f} req/s)"
        )
    print(
        f"determinism: shards=1 vs shards={sharded_config.shards} -> "
        f"{'bit-identical' if deterministic else 'MISMATCH'}"
    )

    rr = runs["round-robin"][0]
    dr = runs["deadline-risk"][0]
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bench_fleet",
                "nodes": nodes,
                "requests": requests,
                "trace": config.trace,
                "deadline_ms": round(config.deadline_s * 1e3, 1),
                "routers": rows,
                "determinism": {
                    "shards_compared": [1, sharded_config.shards],
                    "bit_identical": deterministic,
                    "sharded_wall_s": round(sharded_wall_s, 3),
                },
                "frontier": {
                    "p99_improvement": round(1.0 - dr.p99_s / rr.p99_s, 4),
                    "energy_ratio": round(dr.energy_j / rr.energy_j, 4),
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Gate 1: sharding is mechanical sympathy, never a result change.
    assert deterministic
    # Gate 2: the Hurry-up frontier — better tail at no extra energy.
    assert dr.p99_s < rr.p99_s
    assert dr.energy_j <= rr.energy_j
    # Every run must actually drain the trace.
    for name, (result, _) in runs.items():
        assert result.completed == requests, name
