"""Estimator validation (beyond the paper's figures).

Probes a sample of system states with measured runs and compares the
HARS estimators' predictions — the quantitative backing for the paper's
qualitative estimator discussion.  Key expectations:

* rate and power MAPE stay modest (the search only needs to *rank*
  states);
* blackscholes shows a single large *rate* under-prediction at its
  little-only state — the r0 = 1.5 misprediction the paper blames for
  its Figure 5.1 gap — while its power predictions stay tight.
"""

from conftest import bench_units, run_once

from repro.core.calibration import calibrate
from repro.core.perf_estimator import PerformanceEstimator
from repro.experiments.accuracy import evaluate_accuracy
from repro.platform.spec import odroid_xu3
from repro.workloads.parsec import make_benchmark

BENCHES = ("bodytrack", "blackscholes", "swaptions")


def _reports(units):
    spec = odroid_xu3()
    power = calibrate(spec)
    return {
        name: evaluate_accuracy(
            spec,
            lambda name=name: make_benchmark(name, n_units=units),
            name,
            PerformanceEstimator(),
            power,
            probe_units=units,
        )
        for name in BENCHES
    }


def test_estimator_accuracy(benchmark):
    units = bench_units() or 30
    reports = run_once(benchmark, _reports, units)
    print()
    for report in reports.values():
        print(report.render())
        print()

    for name, report in reports.items():
        assert report.rate_mape < 0.30, name
        assert report.power_mape < 0.30, name

    # The blackscholes r0 misprediction: its worst rate error is a large
    # under-prediction at a little-only state.
    bl = reports["blackscholes"]
    worst = min(bl.rows, key=lambda r: r.rate_error)
    assert worst.rate_error < -0.15
    assert worst.state.c_big == 0
