"""Ablations for the paper's discussion-section (§3.1.4) extensions.

Not figures from the paper — these quantify the design options the paper
proposes as future work, implemented in :mod:`repro.extensions`:

* **Online ratio learning** on blackscholes: the stock HARS-E (fixed
  r0 = 1.5) against the adaptive manager that learns the true ratio
  (1.0).  The paper attributes HARS's blackscholes gap to exactly this
  misprediction.
* **Stage-aware scheduling** on ferret at a fixed mixed state: chunk vs
  ID-interleaved vs stage-aware placement.
"""

from conftest import bench_units, run_once

from repro.core.calibration import calibrate
from repro.core.manager import HarsManager
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E, HARS_EI
from repro.core.state import SystemState
from repro.experiments.runner import RunShape, build_target
from repro.extensions.adaptive_manager import AdaptiveHarsManager
from repro.extensions.ratio_learning import OnlineRatioLearner
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.spec import odroid_xu3
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.parsec import make_benchmark


def _blackscholes_ablation(units):
    spec = odroid_xu3()
    shape = RunShape("blackscholes", n_units=units)
    target = build_target(spec, shape)
    outcomes = {}
    for label, learner in (("fixed-r0", None), ("learned-r", OnlineRatioLearner())):
        sim = Simulation(spec)
        model = make_benchmark("blackscholes", n_units=units)
        app = sim.add_app(SimApp("blackscholes", model, target))
        sim.add_controller(
            AdaptiveHarsManager(
                "blackscholes",
                HARS_E,
                PerformanceEstimator(),
                calibrate(spec),
                ratio_learner=learner,
            )
        )
        sim.run(until_s=model.total_heartbeats() / target.min_rate * 4 + 120)
        outcomes[label] = {
            "perf": app.monitor.mean_normalized_performance(),
            "watts": sim.sensor.average_power_w(),
            "ratio": learner.ratio if learner else 1.5,
        }
    return outcomes


def _ferret_scheduler_ablation(units):
    spec = odroid_xu3()
    state = SystemState(2, 4, 1600, 1200)
    target = PerformanceTarget(0.01, 10.0, 20.0)  # pin the state
    rates = {}
    configs = (
        ("chunk", HARS_E, False),
        ("interleaved", HARS_EI, False),
        ("stage-aware", HARS_E, True),
    )
    for label, policy, stage_aware in configs:
        sim = Simulation(spec)
        model = make_benchmark("ferret", n_units=units)
        app = sim.add_app(SimApp("ferret", model, target))
        sim.add_controller(
            AdaptiveHarsManager(
                "ferret",
                policy,
                PerformanceEstimator(),
                calibrate(spec),
                initial_state=state,
                stage_aware=stage_aware,
            )
        )
        sim.run(until_s=800)
        rates[label] = app.log.overall_rate()
    return rates


def test_ablation_ratio_learning(benchmark):
    units = bench_units() or 200
    outcomes = run_once(benchmark, _blackscholes_ablation, units)
    print()
    print("blackscholes, HARS-E, default target:")
    for label, o in outcomes.items():
        pp = o["perf"] / o["watts"]
        print(f"  {label:10s} perf={o['perf']:.3f} watts={o['watts']:.2f} "
              f"perf/watt={pp:.3f} (ratio estimate {o['ratio']:.2f})")
    fixed = outcomes["fixed-r0"]
    learned = outcomes["learned-r"]
    # The learner recovers (or approaches) the true ratio of 1.0...
    assert learned["ratio"] < 1.3
    # ...and never makes HARS meaningfully worse.
    assert (learned["perf"] / learned["watts"]) > 0.95 * (
        fixed["perf"] / fixed["watts"]
    )


def test_ablation_stage_aware_scheduling(benchmark):
    units = bench_units() or 150
    rates = run_once(benchmark, _ferret_scheduler_ablation, units)
    print()
    print("ferret pipeline throughput at fixed state 2B@1600+4L@1200:")
    for label, rate in rates.items():
        print(f"  {label:12s} {rate:.3f} items/s")
    # The Figure 3.2 hierarchy: chunk < interleaved ≤ stage-aware.
    assert rates["interleaved"] > 1.1 * rates["chunk"]
    assert rates["stage-aware"] >= 0.97 * rates["interleaved"]
    assert rates["stage-aware"] > 1.1 * rates["chunk"]
