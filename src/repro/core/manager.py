"""The HARS runtime manager (the paper's Algorithm 1).

The manager is a :class:`~repro.sim.controller.Controller` and a thin
façade over the kernel's MAPE-K control plane
(:mod:`repro.kernel.mape`): every adaptation period the Monitor samples
the windowed heartbeat rate, the Analyzer classifies it against the
target window, the Planner runs the Algorithm 2 neighbourhood search
over the cached estimation layer, and the Executor applies the chosen
state — cluster frequencies and thread placement — through the
actuation façade, exactly the user-level control surface the paper's
prototype uses on Linux (no kernel modification).

Search overhead is metered: each estimated candidate costs
``state_eval_cost_s`` of manager CPU time, which Figure 5.3(b) reports as
CPU utilization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HarsPolicy
from repro.core.power_estimator import PowerEstimator
from repro.core.state import SystemState, max_state
from repro.errors import ConfigurationError
from repro.heartbeats.record import Heartbeat
from repro.kernel.estimation import EstimationLayer
from repro.kernel.mape import (
    Analyzer,
    CycleContext,
    Executor,
    Knowledge,
    MapeLoop,
    Monitor,
    SearchPlanner,
)
from repro.platform.cluster import BIG, LITTLE
from repro.platform.topology import first_n
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp

#: Heartbeats between adaptation checks (``isAdaptPeriod``).
DEFAULT_ADAPT_EVERY = 5

#: Modelled manager CPU cost per estimated candidate state.  Together
#: with the poll cost below this is calibrated so the manager's
#: utilization envelope reproduces Figure 5.3(b): a sub-percent floor
#: from monitoring, growing severalfold with the explored-space size but
#: staying in the single digits at d = 9.
DEFAULT_STATE_EVAL_COST_S = 1e-3

#: Modelled manager CPU cost per received heartbeat: reading the shared
#: heartbeat segment, windowed-rate bookkeeping, and the main loop's
#: wakeup — the constant part of Figure 5.3(b)'s utilization.
DEFAULT_POLL_COST_S = 3e-3


class HarsManager(Controller):
    """Single-application HARS (Algorithms 1 + 2) over MAPE-K."""

    def __init__(
        self,
        app_name: str,
        policy: HarsPolicy,
        perf_estimator: PerformanceEstimator,
        power_estimator: PowerEstimator,
        adapt_every: int = DEFAULT_ADAPT_EVERY,
        state_eval_cost_s: float = DEFAULT_STATE_EVAL_COST_S,
        poll_cost_s: float = DEFAULT_POLL_COST_S,
        initial_state: Optional[SystemState] = None,
        cache_estimates: bool = True,
        stale_after_s: Optional[float] = None,
    ):
        if adapt_every < 1:
            raise ConfigurationError("adapt_every must be >= 1")
        if state_eval_cost_s < 0:
            raise ConfigurationError("state_eval_cost_s must be >= 0")
        if poll_cost_s < 0:
            raise ConfigurationError("poll_cost_s must be >= 0")
        self.app_name = app_name
        self.policy = policy
        self.state_eval_cost_s = state_eval_cost_s
        self.poll_cost_s = poll_cost_s
        self._initial_state = initial_state
        self._used: Tuple[int, int] = (0, 0)
        self._assignment = None  # ThreadAssignment actually applied
        #: Set by the supervision Checkpointer (if one is attached);
        #: consulted by :meth:`simulate_restart` for a warm restore.
        self.checkpoint_store = None
        self.knowledge = Knowledge(
            EstimationLayer(
                perf_estimator, power_estimator, cached=cache_estimates
            )
        )
        self.mape = MapeLoop(
            knowledge=self.knowledge,
            monitor=self._build_monitor(adapt_every),
            analyzer=Analyzer(),
            planner=self._build_planner(),
            executor=Executor(self._execute_plan),
            updaters=self._build_updaters(),
            stale_after_s=stale_after_s,
        )

    # -- MAPE-K wiring (extension points for subclasses) -----------------------

    def _build_monitor(self, adapt_every: int) -> Monitor:
        return Monitor(adapt_every)

    def _build_planner(self) -> SearchPlanner:
        return SearchPlanner(self.policy)

    def _build_updaters(self) -> tuple:
        return ()

    def _execute_plan(
        self, sim: "Simulation", ctx: CycleContext, state: SystemState
    ) -> None:
        # Indirect through the attribute so tests can wrap ``_apply``.
        self._apply(sim, state)

    # -- compatibility façade --------------------------------------------------

    @property
    def perf_estimator(self):
        """The (cached) performance estimator the search consults."""
        return self.knowledge.estimation.perf

    @perf_estimator.setter
    def perf_estimator(self, estimator: PerformanceEstimator) -> None:
        self.knowledge.estimation.set_perf_estimator(estimator)

    @property
    def power_estimator(self):
        """The (cached) power estimator the search consults."""
        return self.knowledge.estimation.power

    @power_estimator.setter
    def power_estimator(self, estimator: PowerEstimator) -> None:
        self.knowledge.estimation.set_power_estimator(estimator)

    @property
    def adapt_every(self) -> int:
        return self.mape.monitor.adapt_every

    @adapt_every.setter
    def adapt_every(self, value: int) -> None:
        self.mape.monitor.adapt_every = value

    @property
    def heartbeats_polled(self) -> int:
        return self.mape.monitor.polled

    @property
    def states_explored_total(self) -> int:
        return self.knowledge.states_explored

    @property
    def adaptations(self) -> int:
        return self.knowledge.adaptations

    @property
    def held_cycles(self) -> int:
        """Cycles where a degraded observation held the last good state."""
        return self.mape.held_cycles

    @property
    def _state(self) -> Optional[SystemState]:
        return self.knowledge.state_of(self.app_name)

    # -- Controller hooks ------------------------------------------------------

    def on_start(self, sim: "Simulation") -> None:
        self.knowledge.bind(sim.spec)
        self._bind_planner_backend(sim)
        state = self._initial_state or max_state(sim.spec)
        state.validate(sim.spec)
        self._apply(sim, state)

    def _bind_planner_backend(self, sim: "Simulation") -> None:
        """Inherit the planner backend from the engine's profile.

        Under the ``"vector"`` profile the engine carries a
        :class:`~repro.kernel.batchplan.PlanService`; plans then run on
        the tensorized backend (bit-identical to the scalar sweep).
        """
        service = getattr(sim, "plan_service", None)
        if service is not None:
            self.mape.planner.backend = "vector"
            self.mape.planner.plan_service = service

    def on_heartbeat(
        self, sim: "Simulation", app: "SimApp", heartbeat: Heartbeat
    ) -> None:
        if app.name != self.app_name:
            return
        if self.knowledge.spec is None:
            self.knowledge.bind(sim.spec)
        self.mape.on_heartbeat(sim, app, heartbeat)

    def current_allocation(self, app_name: str) -> Optional[Tuple[int, int]]:
        if app_name != self.app_name:
            return None
        return self._used

    def cpu_overhead_seconds(self) -> float:
        return (
            self.states_explored_total * self.state_eval_cost_s
            + self.heartbeats_polled * self.poll_cost_s
        )

    # -- state application -------------------------------------------------------

    @property
    def state(self) -> Optional[SystemState]:
        """The system state currently applied."""
        return self.knowledge.state_of(self.app_name)

    def _apply(self, sim: "Simulation", state: SystemState) -> None:
        """``setSysStateAndScheduleThreads``: DVFS + thread pinning."""
        app = sim.app(self.app_name)
        actuator = sim.actuator
        actuator.set_frequency(BIG, state.f_big_mhz)
        actuator.set_frequency(LITTLE, state.f_little_mhz)
        estimate = self.perf_estimator.estimate(state, app.n_threads)
        assignment = estimate.assignment
        big_ids = first_n(sim.spec, BIG, assignment.used_big)
        little_ids = first_n(sim.spec, LITTLE, assignment.used_little)
        actuator.place(
            app, assignment, big_ids, little_ids, self.policy.scheduler
        )
        self.knowledge.set_state(app.name, state)
        self._used = (assignment.used_big, assignment.used_little)
        self._assignment = assignment
        actuator.announce(
            app.name, state, assignment.used_big, assignment.used_little
        )

    def cpu_utilization_percent(self, elapsed_s: float) -> float:
        """Manager overhead as a percentage of one core (Fig 5.3b)."""
        if elapsed_s <= 0:
            raise ConfigurationError("elapsed time must be positive")
        return 100.0 * self.cpu_overhead_seconds() / elapsed_s

    # -- checkpoint / restore ----------------------------------------------------

    @property
    def checkpoint_id(self) -> str:
        """Store key; one HARS instance per managed application."""
        return f"hars:{self.app_name}"

    def checkpoint(self, now_s: float) -> Dict[str, Any]:
        """Snapshot the controller knowledge worth surviving a crash:
        the applied state, the fitted power model, the learned ratio (if
        an online learner is attached), and the MAPE counters."""
        # Lazy import: serialize sits above the manager layer.
        from repro.experiments.serialize import (
            checkpoint_payload,
            power_model_to_dict,
        )

        state = self.state
        learner = getattr(self, "ratio_learner", None)
        return checkpoint_payload(
            self.checkpoint_id,
            now_s,
            {
                "controller": type(self).__name__,
                "app_name": self.app_name,
                "state": (
                    [
                        state.c_big,
                        state.c_little,
                        state.f_big_mhz,
                        state.f_little_mhz,
                    ]
                    if state is not None
                    else None
                ),
                "power_model": power_model_to_dict(self.power_estimator),
                "ratio": learner.ratio if learner is not None else None,
                "counters": {
                    "adaptations": self.knowledge.adaptations,
                    "states_explored": self.knowledge.states_explored,
                    "estimation_failures": self.knowledge.estimation_failures,
                    "held_cycles": self.mape.held_cycles,
                    "polled": self.mape.monitor.polled,
                },
            },
        )

    def restore_checkpoint(
        self, sim: "Simulation", payload: Dict[str, Any]
    ) -> None:
        """Warm restore: re-adopt checkpointed knowledge mid-run.

        Raises :class:`~repro.errors.ConfigurationError` on a malformed
        payload — the caller falls back to a cold start.
        """
        from repro.experiments.serialize import (
            power_model_from_dict,
            validate_checkpoint,
        )

        body = validate_checkpoint(payload)
        if body.get("app_name") != self.app_name:
            raise ConfigurationError(
                f"checkpoint is for app {body.get('app_name')!r}, "
                f"not {self.app_name!r}"
            )
        self.power_estimator = power_model_from_dict(
            body.get("power_model") or {}
        )
        ratio = body.get("ratio")
        learner = getattr(self, "ratio_learner", None)
        if ratio is not None and learner is not None:
            learner.seed_estimate(float(ratio))
            self.perf_estimator = learner.estimator()
        state_values = body.get("state")
        if state_values is not None:
            try:
                state = SystemState(*(int(v) for v in state_values))
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed checkpointed state: {exc}"
                ) from None
            state.validate(sim.spec)
            app = sim.app(self.app_name)
            if not (app.halted or app.is_done()):
                self._apply(sim, state)
        counters = body.get("counters") or {}
        self.knowledge.adaptations = int(
            counters.get("adaptations", self.knowledge.adaptations)
        )
        self.knowledge.states_explored = int(
            counters.get("states_explored", self.knowledge.states_explored)
        )
        self.knowledge.estimation_failures = int(
            counters.get(
                "estimation_failures", self.knowledge.estimation_failures
            )
        )
        self.mape.held_cycles = int(
            counters.get("held_cycles", self.mape.held_cycles)
        )
        self.mape.monitor.polled = int(
            counters.get("polled", self.mape.monitor.polled)
        )

    def _forget_volatile(self, sim: "Simulation") -> None:
        """What dies with the controller process: applied-state memory,
        the estimation cache, and any online-learned models."""
        self.knowledge.set_state(self.app_name, None)
        self.knowledge.estimation.invalidate()
        self._used = (0, 0)
        self._assignment = None
        predictor = getattr(self, "predictor", None)
        if predictor is not None:
            predictor.reset()
        learner = getattr(self, "ratio_learner", None)
        if learner is not None:
            learner.reset()
            self.perf_estimator = learner.estimator()
        if getattr(self, "_settled_periods", None) is not None:
            self._settled_periods = 0

    def simulate_restart(self, sim: "Simulation") -> None:
        """Model a controller crash+restart (``controller_restart`` fault).

        Volatile knowledge is dropped; if a checkpoint store holds a
        valid snapshot the controller restores warm, otherwise it cold
        starts exactly as at time zero and re-converges from scratch.
        """
        from repro.kernel.bus import ControllerRestored

        self._forget_volatile(sim)
        store = getattr(self, "checkpoint_store", None)
        snapshot = (
            store.get(self.checkpoint_id) if store is not None else None
        )
        warm = False
        if snapshot is not None:
            try:
                self.restore_checkpoint(sim, snapshot)
                warm = True
            except ConfigurationError:
                snapshot = None
        if not warm:
            app = sim.app(self.app_name)
            if not (app.halted or app.is_done()):
                self.on_start(sim)
        sim.bus.publish(
            ControllerRestored(
                controller=self.checkpoint_id,
                time_s=sim.clock.now_s,
                warm=warm,
                checkpoint_time_s=(
                    snapshot["time_s"] if snapshot is not None else None
                ),
            )
        )
