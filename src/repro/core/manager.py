"""The HARS runtime manager (the paper's Algorithm 1).

The manager is a :class:`~repro.sim.controller.Controller`: it receives
the application's heartbeats, checks every adaptation period whether the
windowed rate left the target window, and if so invokes the search
function and applies the chosen state — cluster frequencies through the
DVFS controller, thread placement through the chunk/interleaving
scheduler — exactly the user-level control surface the paper's prototype
uses on Linux (no kernel modification).

Search overhead is metered: each estimated candidate costs
``state_eval_cost_s`` of manager CPU time, which Figure 5.3(b) reports as
CPU utilization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HarsPolicy
from repro.core.power_estimator import PowerEstimator
from repro.core.schedulers import apply_assignment
from repro.core.search import get_next_sys_state
from repro.core.state import SystemState, max_state
from repro.errors import ConfigurationError
from repro.heartbeats.record import Heartbeat
from repro.platform.cluster import BIG, LITTLE
from repro.platform.topology import first_n
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp

#: Heartbeats between adaptation checks (``isAdaptPeriod``).
DEFAULT_ADAPT_EVERY = 5

#: Modelled manager CPU cost per estimated candidate state.  Together
#: with the poll cost below this is calibrated so the manager's
#: utilization envelope reproduces Figure 5.3(b): a sub-percent floor
#: from monitoring, growing severalfold with the explored-space size but
#: staying in the single digits at d = 9.
DEFAULT_STATE_EVAL_COST_S = 1e-3

#: Modelled manager CPU cost per received heartbeat: reading the shared
#: heartbeat segment, windowed-rate bookkeeping, and the main loop's
#: wakeup — the constant part of Figure 5.3(b)'s utilization.
DEFAULT_POLL_COST_S = 3e-3


class HarsManager(Controller):
    """Single-application HARS (Algorithms 1 + 2)."""

    def __init__(
        self,
        app_name: str,
        policy: HarsPolicy,
        perf_estimator: PerformanceEstimator,
        power_estimator: PowerEstimator,
        adapt_every: int = DEFAULT_ADAPT_EVERY,
        state_eval_cost_s: float = DEFAULT_STATE_EVAL_COST_S,
        poll_cost_s: float = DEFAULT_POLL_COST_S,
        initial_state: Optional[SystemState] = None,
    ):
        if adapt_every < 1:
            raise ConfigurationError("adapt_every must be >= 1")
        if state_eval_cost_s < 0:
            raise ConfigurationError("state_eval_cost_s must be >= 0")
        if poll_cost_s < 0:
            raise ConfigurationError("poll_cost_s must be >= 0")
        self.app_name = app_name
        self.policy = policy
        self.perf_estimator = perf_estimator
        self.power_estimator = power_estimator
        self.adapt_every = adapt_every
        self.state_eval_cost_s = state_eval_cost_s
        self.poll_cost_s = poll_cost_s
        self.heartbeats_polled = 0
        self._initial_state = initial_state
        self._state: Optional[SystemState] = None
        self._used: Tuple[int, int] = (0, 0)
        self._assignment = None  # ThreadAssignment actually applied
        self.states_explored_total = 0
        self.adaptations = 0

    # -- Controller hooks ------------------------------------------------------

    def on_start(self, sim: "Simulation") -> None:
        state = self._initial_state or max_state(sim.spec)
        state.validate(sim.spec)
        self._apply(sim, state)

    def on_heartbeat(
        self, sim: "Simulation", app: "SimApp", heartbeat: Heartbeat
    ) -> None:
        if app.name != self.app_name:
            return
        self.heartbeats_polled += 1
        if heartbeat.index == 0 or heartbeat.index % self.adapt_every != 0:
            return
        rate = app.monitor.current_rate()
        if rate is None or self._state is None:
            return
        target = app.target
        if not target.out_of_window(rate):
            return
        space = self.policy.space_for(target.classify(rate))
        result = get_next_sys_state(
            spec=sim.spec,
            current=self._state,
            observed_rate=rate,
            n_threads=app.n_threads,
            target=target,
            space=space,
            perf_estimator=self.perf_estimator,
            power_estimator=self.power_estimator,
        )
        self.states_explored_total += result.states_explored
        if result.state != self._state:
            self.adaptations += 1
            self._apply(sim, result.state)

    def current_allocation(self, app_name: str) -> Optional[Tuple[int, int]]:
        if app_name != self.app_name:
            return None
        return self._used

    def cpu_overhead_seconds(self) -> float:
        return (
            self.states_explored_total * self.state_eval_cost_s
            + self.heartbeats_polled * self.poll_cost_s
        )

    # -- state application -------------------------------------------------------

    @property
    def state(self) -> Optional[SystemState]:
        """The system state currently applied."""
        return self._state

    def _apply(self, sim: "Simulation", state: SystemState) -> None:
        """``setSysStateAndScheduleThreads``: DVFS + thread pinning."""
        app = sim.app(self.app_name)
        sim.dvfs.set_frequency(BIG, state.f_big_mhz)
        sim.dvfs.set_frequency(LITTLE, state.f_little_mhz)
        estimate = self.perf_estimator.estimate(state, app.n_threads)
        assignment = estimate.assignment
        big_ids = first_n(sim.spec, BIG, assignment.used_big)
        little_ids = first_n(sim.spec, LITTLE, assignment.used_little)
        apply_assignment(
            app, assignment, big_ids, little_ids, self.policy.scheduler
        )
        self._state = state
        self._used = (assignment.used_big, assignment.used_little)
        self._assignment = assignment

    def cpu_utilization_percent(self, elapsed_s: float) -> float:
        """Manager overhead as a percentage of one core (Fig 5.3b)."""
        if elapsed_s <= 0:
            raise ConfigurationError("elapsed time must be positive")
        return 100.0 * self.cpu_overhead_seconds() / elapsed_s
