"""The HARS thread schedulers: chunk-based and interleaving (Section 3.1.3).

Both schedulers take the Table 3.1 split ``(T_B, T_L)`` and pin the
application's threads — ordered by thread ID — onto the allocated cores
with the simulated ``sched_setaffinity``:

* **chunk-based** — the first ``T_L`` consecutive thread IDs go to the
  little cores and the rest to the big cores.  Consecutive threads tend
  to share data (constructive cache sharing), but a pipeline stage whose
  threads are consecutive can land entirely on the little cluster and
  throttle the whole pipeline (Figure 3.2a).
* **interleaving** — thread IDs alternate between the clusters in
  proportion to ``T_B:T_L`` (Figure 3.2b), so every pipeline stage gets a
  fair mix of core types at the cost of cache sharing.

A pinned thread's mask is the *set* of its cluster's used cores; the OS
balancer spreads the group within the set.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple

from repro.core.assignment import ThreadAssignment
from repro.errors import SchedulingError
from repro.sim.process import SimApp

#: Valid scheduler-policy names.
CHUNK = "chunk"
INTERLEAVED = "interleaved"
POLICIES: Tuple[str, str] = (CHUNK, INTERLEAVED)


def chunk_split(n_threads: int, t_big: int) -> List[bool]:
    """Per-thread big-cluster flags, chunk layout.

    Thread IDs ``0 .. T_L−1`` → little; ``T_L .. T−1`` → big.
    """
    t_little = n_threads - t_big
    _validate_split(n_threads, t_big)
    return [index >= t_little for index in range(n_threads)]


def interleaved_split(n_threads: int, t_big: int) -> List[bool]:
    """Per-thread big-cluster flags, interleaved layout.

    Distributes the ``T_B`` big slots evenly across the ID range using
    the largest-remainder pattern: thread ``i`` is big iff the running
    quota ``⌊(i+1)·T_B/T⌋`` increments at ``i``.  For ``T_B = T_L`` this
    is strict alternation (little first), matching Figure 3.2(b).
    """
    _validate_split(n_threads, t_big)
    flags: List[bool] = []
    for index in range(n_threads):
        quota_before = index * t_big // n_threads
        quota_after = (index + 1) * t_big // n_threads
        flags.append(quota_after > quota_before)
    return flags


def _validate_split(n_threads: int, t_big: int) -> None:
    if n_threads < 1:
        raise SchedulingError("need at least one thread")
    if not 0 <= t_big <= n_threads:
        raise SchedulingError(
            f"t_big={t_big} out of range for {n_threads} threads"
        )


def apply_assignment(
    app: SimApp,
    assignment: ThreadAssignment,
    big_core_ids: Sequence[int],
    little_core_ids: Sequence[int],
    policy: str,
) -> None:
    """Pin the app's threads per the assignment and scheduler policy.

    ``big_core_ids`` / ``little_core_ids`` are the *used* cores
    (``C_B,U`` / ``C_L,U`` of Table 3.1) this application may run on.
    """
    if policy == CHUNK:
        flags = chunk_split(app.n_threads, assignment.t_big)
    elif policy == INTERLEAVED:
        flags = interleaved_split(app.n_threads, assignment.t_big)
    else:
        raise SchedulingError(f"unknown scheduler policy {policy!r}")

    if assignment.t_big > 0 and not big_core_ids:
        raise SchedulingError("threads assigned to big but no big cores given")
    if assignment.t_little > 0 and not little_core_ids:
        raise SchedulingError(
            "threads assigned to little but no little cores given"
        )

    big_mask: FrozenSet[int] = frozenset(big_core_ids)
    little_mask: FrozenSet[int] = frozenset(little_core_ids)
    for thread, on_big in zip(app.threads, flags):
        thread.set_affinity(big_mask if on_big else little_mask)
