"""HARS power estimator (Section 3.1.2).

Per cluster, per frequency level, a fitted linear model::

    P_B = α_B,fB · C_B,U · U_B,U + β_B,fB
    P_L = α_L,fL · C_L,U · U_L,U + β_L,fL

The coefficients come from linear regression over microbenchmark
profiling data (:mod:`repro.core.calibration`).  ``C_X,U`` are the cores
the application actually uses and ``U_X,U`` the estimated utilizations
from the performance estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.perf_estimator import PerformanceEstimate
from repro.core.state import SystemState
from repro.errors import EstimationError
from repro.platform.cluster import BIG, LITTLE


@dataclass(frozen=True)
class LinearCoefficients:
    """``(α, β)`` for one (cluster, frequency) pair, with fit quality."""

    alpha: float
    beta: float
    r_squared: float = 1.0

    def predict(self, cores_used: int, utilization: float) -> float:
        """``α · C_used · U + β`` watts."""
        if cores_used < 0:
            raise EstimationError("negative used-core count")
        if not 0.0 <= utilization <= 1.0:
            raise EstimationError(f"utilization {utilization} not in [0,1]")
        return self.alpha * cores_used * utilization + self.beta


class PowerEstimator:
    """Frequency-indexed linear power model for both clusters."""

    def __init__(
        self, coefficients: Mapping[Tuple[str, int], LinearCoefficients]
    ):
        if not coefficients:
            raise EstimationError("empty coefficient table")
        self._coefficients: Dict[Tuple[str, int], LinearCoefficients] = dict(
            coefficients
        )

    def coefficients(self, cluster: str, freq_mhz: int) -> LinearCoefficients:
        """Fitted ``(α, β)`` for one operating point."""
        try:
            return self._coefficients[(cluster, freq_mhz)]
        except KeyError:
            raise EstimationError(
                f"no fitted coefficients for {cluster}@{freq_mhz}MHz"
            ) from None

    def cluster_power(
        self, cluster: str, freq_mhz: int, cores_used: int, utilization: float
    ) -> float:
        """Estimated power of one cluster (equations 3.1 / 3.2)."""
        return self.coefficients(cluster, freq_mhz).predict(
            cores_used, utilization
        )

    def estimate(
        self, state: SystemState, perf: PerformanceEstimate
    ) -> float:
        """Total estimated power of a candidate state.

        Combines both clusters using the performance estimator's used-core
        counts and utilizations.
        """
        p_big = self.cluster_power(
            BIG, state.f_big_mhz, perf.assignment.used_big, perf.util_big
        )
        p_little = self.cluster_power(
            LITTLE,
            state.f_little_mhz,
            perf.assignment.used_little,
            perf.util_little,
        )
        total = p_big + p_little
        if total <= 0:
            raise EstimationError(
                f"non-positive power estimate for {state.describe()}"
            )
        return total

    def tabulate(self, spec) -> dict:
        """Per-frequency coefficient tables for the vector planner.

        Returns numpy arrays indexed by the cluster's frequency index:
        ``alpha_big``/``beta_big``/``ok_big`` and the little-cluster
        trio.  ``ok`` is False where no coefficients were fitted —
        the states :meth:`estimate` would reject with
        :class:`EstimationError`.
        """
        import numpy as np

        def cluster_tables(cluster: str, freqs) -> tuple:
            alpha = np.zeros(len(freqs))
            beta = np.zeros(len(freqs))
            ok = np.zeros(len(freqs), dtype=bool)
            for index, freq_mhz in enumerate(freqs):
                coeffs = self._coefficients.get((cluster, freq_mhz))
                if coeffs is None:
                    continue
                alpha[index] = coeffs.alpha
                beta[index] = coeffs.beta
                ok[index] = True
            return alpha, beta, ok

        alpha_big, beta_big, ok_big = cluster_tables(
            BIG, spec.big.frequencies_mhz
        )
        alpha_little, beta_little, ok_little = cluster_tables(
            LITTLE, spec.little.frequencies_mhz
        )
        return {
            "alpha_big": alpha_big,
            "beta_big": beta_big,
            "ok_big": ok_big,
            "alpha_little": alpha_little,
            "beta_little": beta_little,
            "ok_little": ok_little,
        }

    @property
    def fitted_points(self) -> Tuple[Tuple[str, int], ...]:
        """All (cluster, frequency) pairs with coefficients."""
        return tuple(sorted(self._coefficients))
