"""System states: the 4-D space HARS searches.

A :class:`SystemState` is ``(C_B, C_L, f_B, f_L)`` — big/little core
counts allocated to the application and both cluster frequencies.  The
search works in *index space*: core counts index themselves and
frequencies index the cluster DVFS tables, so the Manhattan distance ``d``
of Algorithm 2 is a step count, not a physical quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.platform.cluster import BIG, LITTLE
from repro.platform.spec import PlatformSpec


@dataclass(frozen=True)
class SystemState:
    """One point of the system-state space."""

    c_big: int
    c_little: int
    f_big_mhz: int
    f_little_mhz: int

    def validate(self, spec: PlatformSpec) -> "SystemState":
        """Check the state is realizable on the platform."""
        if not 0 <= self.c_big <= spec.big.n_cores:
            raise ConfigurationError(f"c_big={self.c_big} out of range")
        if not 0 <= self.c_little <= spec.little.n_cores:
            raise ConfigurationError(f"c_little={self.c_little} out of range")
        if self.c_big == 0 and self.c_little == 0:
            raise ConfigurationError("state allocates no cores")
        spec.big.freq_index(self.f_big_mhz)
        spec.little.freq_index(self.f_little_mhz)
        return self

    def indices(self, spec: PlatformSpec) -> Tuple[int, int, int, int]:
        """Index-space coordinates ``(C_B, C_L, i_fB, i_fL)``."""
        return (
            self.c_big,
            self.c_little,
            spec.big.freq_index(self.f_big_mhz),
            spec.little.freq_index(self.f_little_mhz),
        )

    def manhattan_distance(self, other: "SystemState", spec: PlatformSpec) -> int:
        """Algorithm 2's ``getDistance``: L1 distance in index space."""
        a = self.indices(spec)
        b = other.indices(spec)
        return sum(abs(x - y) for x, y in zip(a, b))

    def describe(self) -> str:
        """Short state label for traces: ``2B@1400+4L@1100``."""
        return (
            f"{self.c_big}B@{self.f_big_mhz}"
            f"+{self.c_little}L@{self.f_little_mhz}"
        )


def max_state(spec: PlatformSpec) -> SystemState:
    """All cores at maximum frequency — the paper's initial/baseline state."""
    return SystemState(
        c_big=spec.big.n_cores,
        c_little=spec.little.n_cores,
        f_big_mhz=spec.big.max_freq_mhz,
        f_little_mhz=spec.little.max_freq_mhz,
    )


def from_indices(
    spec: PlatformSpec, c_big: int, c_little: int, i_fb: int, i_fl: int
) -> SystemState:
    """Build a state from index-space coordinates (validated)."""
    return SystemState(
        c_big=c_big,
        c_little=c_little,
        f_big_mhz=spec.big.freq_at_index(i_fb),
        f_little_mhz=spec.little.freq_at_index(i_fl),
    ).validate(spec)


def neighbourhood(
    spec: PlatformSpec,
    current: SystemState,
    m: int,
    n: int,
    d: int,
    stats: Optional[Dict[str, int]] = None,
) -> Iterator[SystemState]:
    """Candidate states of Algorithm 2's four nested loops.

    Sweeps ``[x − m, x + n]`` per dimension in index space, clamped to
    the platform's ranges, and prunes candidates whose Manhattan distance
    from ``current`` exceeds ``d``.  The current state itself (distance 0)
    is included, as in the paper.

    ``stats`` (optional, mutated in place) counts what the sweep did:
    ``stats["pruned"]`` accumulates the box candidates rejected by the
    Manhattan-distance prune — the telemetry layer's
    ``search_pruned_total`` series.
    """
    if m < 0 or n < 0:
        raise ConfigurationError("m and n must be non-negative")
    if d <= 0:
        raise ConfigurationError("d must be positive")
    cb0, cl0, ifb0, ifl0 = current.indices(spec)
    cb_range = _clamped_range(cb0, m, n, 0, spec.big.n_cores)
    cl_range = _clamped_range(cl0, m, n, 0, spec.little.n_cores)
    fb_range = _clamped_range(ifb0, m, n, 0, len(spec.big.frequencies_mhz) - 1)
    fl_range = _clamped_range(ifl0, m, n, 0, len(spec.little.frequencies_mhz) - 1)
    pruned = 0
    for cb in cb_range:
        for cl in cl_range:
            if cb == 0 and cl == 0:
                continue
            for ifb in fb_range:
                for ifl in fl_range:
                    dist = (
                        abs(cb - cb0)
                        + abs(cl - cl0)
                        + abs(ifb - ifb0)
                        + abs(ifl - ifl0)
                    )
                    if dist > d:
                        pruned += 1
                        continue
                    yield from_indices(spec, cb, cl, ifb, ifl)
    if stats is not None:
        stats["pruned"] = stats.get("pruned", 0) + pruned


def _clamped_range(center: int, m: int, n: int, low: int, high: int) -> range:
    return range(max(low, center - m), min(high, center + n) + 1)
