"""HARS performance estimator (Section 3.1.1).

The estimator assumes application performance is proportional to core
count and frequency, with a *fixed* big:little per-core ratio
``r0`` = 3/2 derived from the issue widths of the A15 (3) and A7 (2).
That assumption is a deliberate imperfection the paper analyses: the
measured ratio of blackscholes is 1.0, which makes HARS settle on
suboptimal states for it (Section 5.1.2).

Per-core speeds at candidate frequencies scale linearly:
``S_B = (f_B/f0)·S_B,f0`` and ``S_L = (f_L/f0)·S_L,f0``; thread placement
follows Table 3.1 (:mod:`repro.core.assignment`), and estimated cluster
utilizations ``U_X = t_X / t_f`` feed the power estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import ThreadAssignment, assign_threads, cluster_times
from repro.core.state import SystemState
from repro.errors import EstimationError
from repro.platform.core_types import BASELINE_FREQ_MHZ

#: The paper's assumed big:little per-core performance ratio (r0 = 3/2).
DEFAULT_R0 = 1.5


@dataclass(frozen=True)
class PerformanceEstimate:
    """Estimator output for one candidate state."""

    assignment: ThreadAssignment
    capacity: float  # work units per second the model predicts
    util_big: float  # U_B,U = t_B / t_f
    util_little: float  # U_L,U = t_L / t_f

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise EstimationError("estimated capacity must be positive")


class PerformanceEstimator:
    """Analytic capacity model over system states."""

    def __init__(
        self,
        r0: float = DEFAULT_R0,
        f0_mhz: int = BASELINE_FREQ_MHZ,
        s_little_f0: float = 1.0,
    ):
        if r0 <= 0 or f0_mhz <= 0 or s_little_f0 <= 0:
            raise EstimationError("estimator parameters must be positive")
        self.r0 = r0
        self.f0_mhz = f0_mhz
        self.s_little_f0 = s_little_f0

    def per_core_speeds(self, state: SystemState) -> tuple:
        """``(S_B, S_L)`` at the state's frequencies."""
        s_big = self.r0 * self.s_little_f0 * state.f_big_mhz / self.f0_mhz
        s_little = self.s_little_f0 * state.f_little_mhz / self.f0_mhz
        return s_big, s_little

    def estimate(self, state: SystemState, n_threads: int) -> PerformanceEstimate:
        """Capacity and utilizations of a candidate state.

        Capacity is in model work units per second (``W = 1``); only
        capacity *ratios* between states are meaningful, which is how the
        runtime manager uses them.
        """
        s_big, s_little = self.per_core_speeds(state)
        if state.c_big == 0:
            ratio = 1.0  # no big cores: the split is trivial
        elif state.c_little == 0:
            ratio = self.r0
        else:
            ratio = s_big / s_little
        assignment = assign_threads(n_threads, state.c_big, state.c_little, ratio)
        t_b, t_l, t_f = cluster_times(
            assignment,
            unit_work=1.0,
            n_threads=n_threads,
            c_big=state.c_big,
            c_little=state.c_little,
            s_big=s_big,
            s_little=s_little,
        )
        if t_f <= 0:
            raise EstimationError(f"state {state.describe()} has no capacity")
        return PerformanceEstimate(
            assignment=assignment,
            capacity=1.0 / t_f,
            util_big=(t_b / t_f) if t_f > 0 else 0.0,
            util_little=(t_l / t_f) if t_f > 0 else 0.0,
        )

    def estimate_rate(
        self,
        candidate: SystemState,
        current: SystemState,
        observed_rate: float,
        n_threads: int,
    ) -> float:
        """Predicted heartbeat rate at ``candidate``.

        Transfers the observed rate by the ratio of modelled capacities,
        which cancels the absolute work scale and most systematic model
        error: ``h(candidate) = h(current) · cap(candidate)/cap(current)``.
        """
        if observed_rate <= 0:
            raise EstimationError("observed rate must be positive")
        cap_candidate = self.estimate(candidate, n_threads).capacity
        cap_current = self.estimate(current, n_threads).capacity
        return observed_rate * cap_candidate / cap_current

    def tabulate(self, spec, n_threads: int, estimate=None) -> dict:
        """Full-grid tables for the vector planner.

        ``estimate`` lets a memoizing wrapper route the per-state calls
        through its cache (see
        :meth:`repro.kernel.estimation.CachedPerformanceEstimator.tabulate`).
        """
        return tabulate_performance(
            spec, n_threads, estimate if estimate is not None else self.estimate
        )


def tabulate_performance(spec, n_threads: int, estimate) -> dict:
    """Sweep ``estimate`` over the full state grid into dense arrays.

    Returns float64/int64/bool numpy arrays indexed
    ``[c_big, c_little, i_fb, i_fl]``: ``capacity``, ``used_big``,
    ``used_little``, ``util_big``, ``util_little`` and a ``valid`` mask
    (False where the model raised :class:`EstimationError`, and on the
    zero-core row, which is not a legal state).  Every cell is the
    estimator's own scalar output, so downstream consumers see
    bit-identical floats to per-state calls.
    """
    import numpy as np

    big_freqs = spec.big.frequencies_mhz
    little_freqs = spec.little.frequencies_mhz
    shape = (
        spec.big.n_cores + 1,
        spec.little.n_cores + 1,
        len(big_freqs),
        len(little_freqs),
    )
    capacity = np.full(shape, np.nan)
    used_big = np.zeros(shape, dtype=np.int64)
    used_little = np.zeros(shape, dtype=np.int64)
    util_big = np.full(shape, np.nan)
    util_little = np.full(shape, np.nan)
    valid = np.zeros(shape, dtype=bool)
    for cb in range(shape[0]):
        for cl in range(shape[1]):
            if cb == 0 and cl == 0:
                continue
            for ifb, fb in enumerate(big_freqs):
                for ifl, fl in enumerate(little_freqs):
                    state = SystemState(cb, cl, fb, fl)
                    try:
                        result = estimate(state, n_threads)
                    except EstimationError:
                        continue
                    capacity[cb, cl, ifb, ifl] = result.capacity
                    used_big[cb, cl, ifb, ifl] = result.assignment.used_big
                    used_little[cb, cl, ifb, ifl] = (
                        result.assignment.used_little
                    )
                    util_big[cb, cl, ifb, ifl] = result.util_big
                    util_little[cb, cl, ifb, ifl] = result.util_little
                    valid[cb, cl, ifb, ifl] = True
    return {
        "capacity": capacity,
        "used_big": used_big,
        "used_little": used_little,
        "util_big": util_big,
        "util_little": util_little,
        "valid": valid,
    }
