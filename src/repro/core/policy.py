"""HARS version presets: the search-space policies of Section 3.1.3.

* **HARS-I** — incremental: ``m=1, n=0, d=1`` when the application
  overperforms (only shrink) and ``m=0, n=1, d=1`` when it underperforms
  (only grow).  Cheap, oscillation-resistant, but slow to converge and
  prone to local optima.
* **HARS-E** — exhaustive: ``m=4, n=4, d=7``, chunk-based scheduler.
* **HARS-EI** — HARS-E with the interleaving scheduler.

``sweep_policy`` builds the Figure 5.3 variants: the HARS-EI box with the
Manhattan distance ``d`` swept from 1 to 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedulers import CHUNK, INTERLEAVED, POLICIES
from repro.errors import ConfigurationError
from repro.heartbeats.targets import Satisfaction


@dataclass(frozen=True)
class SearchSpace:
    """Algorithm 2's explorable-area parameters ``(m, n, d)``."""

    m: int
    n: int
    d: int

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0:
            raise ConfigurationError("m and n must be non-negative")
        if self.d <= 0:
            raise ConfigurationError("d must be positive")


@dataclass(frozen=True)
class HarsPolicy:
    """A named HARS version: search spaces + thread-scheduler choice."""

    name: str
    scheduler: str
    overperform_space: SearchSpace
    underperform_space: SearchSpace

    def __post_init__(self) -> None:
        if self.scheduler not in POLICIES:
            raise ConfigurationError(
                f"{self.name}: unknown scheduler {self.scheduler!r}"
            )

    def space_for(self, satisfaction: Satisfaction) -> SearchSpace:
        """Search space given the current satisfaction class.

        ``ACHIEVE`` never reaches the search (Algorithm 1 line 7 gates
        it), but returns the underperform space for robustness.
        """
        if satisfaction is Satisfaction.OVERPERF:
            return self.overperform_space
        return self.underperform_space


#: The exhaustive box used by HARS-E / HARS-EI (m = n = 4, d = 7).
_EXHAUSTIVE = SearchSpace(m=4, n=4, d=7)

HARS_I = HarsPolicy(
    name="HARS-I",
    scheduler=CHUNK,
    overperform_space=SearchSpace(m=1, n=0, d=1),
    underperform_space=SearchSpace(m=0, n=1, d=1),
)

HARS_E = HarsPolicy(
    name="HARS-E",
    scheduler=CHUNK,
    overperform_space=_EXHAUSTIVE,
    underperform_space=_EXHAUSTIVE,
)

HARS_EI = HarsPolicy(
    name="HARS-EI",
    scheduler=INTERLEAVED,
    overperform_space=_EXHAUSTIVE,
    underperform_space=_EXHAUSTIVE,
)

#: Version lookup by name.
POLICY_BY_NAME = {p.name: p for p in (HARS_I, HARS_E, HARS_EI)}


def sweep_policy(d: int, scheduler: str = INTERLEAVED) -> HarsPolicy:
    """Figure 5.3 variant: the exhaustive box with a custom distance."""
    space = SearchSpace(m=4, n=4, d=d)
    return HarsPolicy(
        name=f"HARS-sweep-d{d}",
        scheduler=scheduler,
        overperform_space=space,
        underperform_space=space,
    )
