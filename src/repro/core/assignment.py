"""Thread assignment to the big and little clusters (the paper's Table 3.1).

Given ``T`` threads, allocated cores ``(C_B, C_L)`` and the per-core
performance ratio ``r = S_B / S_L`` at the candidate frequencies, the
performance estimator splits the threads so the two clusters finish a
work unit at the same time (minimizing ``t_f = max(t_B, t_L)``):

=========================  ===========================  =========  =====  =====
condition                  T_B                          T_L        C_B,U  C_L,U
=========================  ===========================  =========  =====  =====
0 < T ≤ C_B                T                            0          T      0
C_B < T ≤ r·C_B            T                            0          C_B    0
r·C_B < T ≤ r·C_B + C_L    ⌊r·C_B⌋                      T − T_B    C_B    T − T_B
r·C_B + C_L < T            ⌈r·C_B/(r·C_B + C_L) · T⌉    T − T_B    C_B    C_L
=========================  ===========================  =========  =====  =====

``C_B,U``/``C_L,U`` are the cores the application *actually uses*, which
can be fewer than it was allocated.  The table assumes ``r ≥ 1``; the
``r < 1`` case "can be similarly derived" (the paper) — we derive it by
swapping the roles of the clusters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, EstimationError

#: Tolerance for the boundary comparisons against r·C_B etc.
_EPS = 1e-12


@dataclass(frozen=True)
class ThreadAssignment:
    """Result of the Table 3.1 split."""

    t_big: int
    t_little: int
    used_big: int
    used_little: int

    def __post_init__(self) -> None:
        if min(self.t_big, self.t_little, self.used_big, self.used_little) < 0:
            raise ConfigurationError("negative assignment component")


def assign_threads(
    n_threads: int, c_big: int, c_little: int, ratio: float
) -> ThreadAssignment:
    """Table 3.1, generalized to ``r < 1`` and empty clusters."""
    if n_threads < 1:
        raise EstimationError("need at least one thread to assign")
    if c_big < 0 or c_little < 0 or (c_big == 0 and c_little == 0):
        raise EstimationError(
            f"invalid core allocation ({c_big} big, {c_little} little)"
        )
    if ratio <= 0:
        raise EstimationError(f"performance ratio must be positive, got {ratio}")
    if ratio >= 1.0:
        return _assign_fast_first(n_threads, c_big, c_little, ratio)
    # r < 1: the little cluster is the faster one; swap roles.
    mirrored = _assign_fast_first(n_threads, c_little, c_big, 1.0 / ratio)
    return ThreadAssignment(
        t_big=mirrored.t_little,
        t_little=mirrored.t_big,
        used_big=mirrored.used_little,
        used_little=mirrored.used_big,
    )


def _assign_fast_first(
    n_threads: int, c_fast: int, c_slow: int, ratio: float
) -> ThreadAssignment:
    """The table itself, with "fast" playing the big-cluster role."""
    t = n_threads
    knee = ratio * c_fast
    if t <= c_fast:
        return ThreadAssignment(t_big=t, t_little=0, used_big=t, used_little=0)
    if t <= knee + _EPS:
        return ThreadAssignment(
            t_big=t, t_little=0, used_big=c_fast, used_little=0
        )
    if t <= knee + c_slow + _EPS:
        t_fast = min(t, int(math.floor(knee + _EPS)))
        t_slow = t - t_fast
        return ThreadAssignment(
            t_big=t_fast,
            t_little=t_slow,
            used_big=c_fast,
            used_little=min(t_slow, c_slow),
        )
    t_fast = int(math.ceil(knee / (knee + c_slow) * t - _EPS))
    t_fast = max(0, min(t, t_fast))
    return ThreadAssignment(
        t_big=t_fast,
        t_little=t - t_fast,
        used_big=min(t_fast, c_fast),
        used_little=min(t - t_fast, c_slow),
    )


def cluster_times(
    assignment: ThreadAssignment,
    unit_work: float,
    n_threads: int,
    c_big: int,
    c_little: int,
    s_big: float,
    s_little: float,
) -> tuple:
    """Per-cluster unit completion times ``(t_B, t_L, t_f)``.

    Implements the paper's formulas (Section 3.1.1): a cluster running
    ``T_X`` threads of ``W/T`` work each on ``C_X`` cores of speed ``S_X``
    finishes in ``W/(T·S_X)`` when every thread has its own core, and in
    ``T_X·W / (T·C_X·S_X)`` when threads time-share.
    """
    if unit_work <= 0 or n_threads < 1:
        raise EstimationError("unit work and thread count must be positive")
    share = unit_work / n_threads

    def cluster_time(t_x: int, c_x: int, s_x: float) -> float:
        if t_x == 0:
            return 0.0
        if c_x == 0 or s_x <= 0:
            raise EstimationError(
                f"{t_x} threads assigned to a cluster with no capacity"
            )
        if t_x <= c_x:
            return share / s_x
        return t_x * share / (c_x * s_x)

    t_b = cluster_time(assignment.t_big, c_big, s_big)
    t_l = cluster_time(assignment.t_little, c_little, s_little)
    return t_b, t_l, max(t_b, t_l)
