"""Power-model calibration: fit the linear estimator from profiled data.

The paper constructs its power estimator's coefficients by linear
regression over sensor data collected while the microbenchmark sweeps
core count, frequency and utilization (Section 3.1.2).  This module runs
that sweep (:func:`repro.workloads.microbench.profile_power`) and fits
one ``(α, β)`` pair per (cluster, frequency) with ordinary least squares
on ``P ≈ α · (C_used · U) + β``.

Calibration is deterministic for a given platform spec, so results are
memoized per spec name.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.power_estimator import LinearCoefficients, PowerEstimator
from repro.errors import CalibrationError
from repro.platform.spec import PlatformSpec
from repro.workloads.microbench import ProfilePoint, profile_power

_CACHE: Dict[str, PowerEstimator] = {}


def fit_coefficients(
    points: Iterable[ProfilePoint],
) -> Dict[Tuple[str, int], LinearCoefficients]:
    """Least-squares fit per (cluster, frequency) group.

    Raises :class:`CalibrationError` if any group has fewer than two
    distinct ``C_used · U`` values (an unfittable line).
    """
    groups: Dict[Tuple[str, int], List[ProfilePoint]] = {}
    for point in points:
        groups.setdefault((point.cluster, point.freq_mhz), []).append(point)
    if not groups:
        raise CalibrationError("no profile points to fit")

    fitted: Dict[Tuple[str, int], LinearCoefficients] = {}
    for key, group in groups.items():
        x = np.array([p.cores_used * p.utilization for p in group])
        y = np.array([p.watts for p in group])
        if len(np.unique(x)) < 2:
            raise CalibrationError(
                f"{key}: need at least two distinct load levels to fit"
            )
        design = np.vstack([x, np.ones_like(x)]).T
        (alpha, beta), residuals, _, _ = np.linalg.lstsq(design, y, rcond=None)
        ss_total = float(((y - y.mean()) ** 2).sum())
        ss_residual = float(residuals[0]) if len(residuals) else 0.0
        r_squared = 1.0 - ss_residual / ss_total if ss_total > 0 else 1.0
        fitted[key] = LinearCoefficients(
            alpha=float(alpha), beta=float(beta), r_squared=r_squared
        )
    return fitted


def calibrate(
    spec: PlatformSpec,
    dwell_s: float = 1.0,
    use_cache: bool = True,
) -> PowerEstimator:
    """Profile the platform and return a fitted :class:`PowerEstimator`.

    ``dwell_s`` is the sensor-observation time per operating point; the
    default (1 s ≈ 4 sensor samples) is plenty because the simulated
    microbenchmark holds utilization perfectly steady.
    """
    if use_cache and spec.name in _CACHE:
        return _CACHE[spec.name]
    points = profile_power(spec, dwell_s=dwell_s)
    estimator = PowerEstimator(fit_coefficients(points))
    if use_cache:
        _CACHE[spec.name] = estimator
    return estimator


def clear_cache() -> None:
    """Drop memoized calibrations (tests that mutate specs use this)."""
    _CACHE.clear()
