"""HARS — the paper's primary contribution.

Components (Figure 3.1): the performance estimator, the power estimator,
and the runtime manager with its search function and thread schedulers.
"""

from repro.core.assignment import ThreadAssignment, assign_threads, cluster_times
from repro.core.calibration import calibrate, clear_cache, fit_coefficients
from repro.core.manager import (
    DEFAULT_ADAPT_EVERY,
    DEFAULT_STATE_EVAL_COST_S,
    HarsManager,
)
from repro.core.perf_estimator import (
    DEFAULT_R0,
    PerformanceEstimate,
    PerformanceEstimator,
)
from repro.core.policy import (
    HARS_E,
    HARS_EI,
    HARS_I,
    POLICY_BY_NAME,
    HarsPolicy,
    SearchSpace,
    sweep_policy,
)
from repro.core.power_estimator import LinearCoefficients, PowerEstimator
from repro.core.schedulers import (
    CHUNK,
    INTERLEAVED,
    apply_assignment,
    chunk_split,
    interleaved_split,
)
from repro.core.search import (
    EvaluatedState,
    SearchResult,
    evaluate_state,
    get_next_sys_state,
)
from repro.core.state import SystemState, from_indices, max_state, neighbourhood

__all__ = [
    "CHUNK",
    "DEFAULT_ADAPT_EVERY",
    "DEFAULT_R0",
    "DEFAULT_STATE_EVAL_COST_S",
    "EvaluatedState",
    "HARS_E",
    "HARS_EI",
    "HARS_I",
    "HarsManager",
    "HarsPolicy",
    "INTERLEAVED",
    "LinearCoefficients",
    "POLICY_BY_NAME",
    "PerformanceEstimate",
    "PerformanceEstimator",
    "PowerEstimator",
    "SearchResult",
    "SearchSpace",
    "SystemState",
    "ThreadAssignment",
    "apply_assignment",
    "assign_threads",
    "calibrate",
    "chunk_split",
    "clear_cache",
    "cluster_times",
    "evaluate_state",
    "fit_coefficients",
    "from_indices",
    "get_next_sys_state",
    "interleaved_split",
    "max_state",
    "neighbourhood",
    "sweep_policy",
]
