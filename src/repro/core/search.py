"""The HARS search function (the paper's Algorithm 2, ``GetNextSysState``).

Sweeps the neighbourhood ``[x−m, x+n]`` of the current state per
dimension, prunes by Manhattan distance ``d``, estimates each candidate's
normalized performance and power, and picks the best state under the
paper's two-tier rule:

1. any candidate *satisfying the target* (``est_rate ≥ t.min``) beats
   every candidate that does not;
2. among satisfying candidates, highest normalized perf/power wins;
   among non-satisfying candidates, highest estimated performance wins
   (get as close to the target as possible).

MP-HARS reuses the same function with a *candidate filter* that encodes
its resource-partitioning and frozen-state constraints.

This scalar loop is the repository's **bit-identity oracle**: the
vectorized backend (:mod:`repro.kernel.batchplan`, selected with
``RunConfig(profile="vector")``) must reproduce its selected state and
every counter exactly, and the parity suite
(``tests/kernel/test_batchplan.py``) cross-checks the two on randomized
sweeps.  Changes to the selection or counter semantics here must be
mirrored there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.perf_estimator import PerformanceEstimate, PerformanceEstimator
from repro.core.policy import SearchSpace
from repro.core.power_estimator import PowerEstimator
from repro.core.state import SystemState, neighbourhood
from repro.errors import EstimationError
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.spec import PlatformSpec

#: Filter signature: ``(candidate, current) -> allowed?``
CandidateFilter = Callable[[SystemState, SystemState], bool]


@dataclass(frozen=True)
class EvaluatedState:
    """One candidate with its estimates."""

    state: SystemState
    estimate: PerformanceEstimate
    est_rate: float
    norm_perf: float
    est_power: float

    @property
    def perf_per_power(self) -> float:
        """The selection metric: normalized performance per watt."""
        if self.est_power <= 0:
            raise EstimationError(
                f"cannot rank {self.state!r} by perf/watt: the power "
                f"estimate is non-positive ({self.est_power!r})"
            )
        return self.norm_perf / self.est_power

    @property
    def feasible(self) -> bool:
        """Whether the estimated rate satisfies the target minimum."""
        return self._feasible

    # populated via __post_init__ trick below (frozen dataclass)
    _feasible: bool = False


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one ``GetNextSysState`` invocation.

    ``forced_fallback`` marks the degenerate case where the candidate
    filter rejected the whole neighbourhood (including the current
    state) and the search was forced to stay put.
    ``estimation_failures`` counts candidates skipped because their
    estimate raised :class:`~repro.errors.EstimationError` — one bad
    candidate degrades the sweep, never aborts the adaptation cycle.
    ``pruned`` counts box candidates the Manhattan-distance prune
    rejected before estimation (the telemetry layer's
    ``search_pruned_total``); ``filtered`` counts candidates the
    *guardrail* filter vetoed (``search_filtered_total``) — kept
    separate so telemetry can distinguish "pruned by d" from "vetoed
    by budget".
    """

    best: EvaluatedState
    states_explored: int
    forced_fallback: bool = False
    estimation_failures: int = 0
    pruned: int = 0
    filtered: int = 0

    @property
    def state(self) -> SystemState:
        return self.best.state


def evaluate_state(
    candidate: SystemState,
    current: SystemState,
    observed_rate: float,
    n_threads: int,
    target: PerformanceTarget,
    perf_estimator: PerformanceEstimator,
    power_estimator: PowerEstimator,
) -> EvaluatedState:
    """Estimate one candidate's rate, normalized perf, and power."""
    estimate = perf_estimator.estimate(candidate, n_threads)
    est_rate = perf_estimator.estimate_rate(
        candidate, current, observed_rate, n_threads
    )
    norm_perf = target.normalized_performance(est_rate)
    est_power = power_estimator.estimate(candidate, estimate)
    return EvaluatedState(
        state=candidate,
        estimate=estimate,
        est_rate=est_rate,
        norm_perf=norm_perf,
        est_power=est_power,
        _feasible=est_rate >= target.min_rate,
    )


def _better(challenger: EvaluatedState, incumbent: EvaluatedState) -> bool:
    """Algorithm 2 lines 13–22: the two-tier comparison.

    Among infeasible candidates the paper picks the fastest; estimated
    rates often tie exactly (whichever cluster binds the barrier sets the
    rate), so ties break toward better perf/watt.
    """
    if challenger.feasible:
        if incumbent.feasible:
            return challenger.perf_per_power > incumbent.perf_per_power
        return True
    if incumbent.feasible:
        return False
    if challenger.est_rate > incumbent.est_rate * (1 + 1e-9):
        return True
    if challenger.est_rate < incumbent.est_rate * (1 - 1e-9):
        return False
    return challenger.perf_per_power > incumbent.perf_per_power


def get_next_sys_state(
    spec: PlatformSpec,
    current: SystemState,
    observed_rate: float,
    n_threads: int,
    target: PerformanceTarget,
    space: SearchSpace,
    perf_estimator: PerformanceEstimator,
    power_estimator: PowerEstimator,
    candidate_filter: Optional[CandidateFilter] = None,
    guard_filter: Optional[CandidateFilter] = None,
) -> SearchResult:
    """Algorithm 2: sweep, estimate, and select the next system state.

    The current state is itself a candidate (distance 0), so the search
    never returns something worse than staying put — this is the paper's
    final ``getBetterState(cs, ns)`` step.

    ``states_explored`` counts candidates actually *estimated* (after the
    distance prune and the filter), which is what the Figure 5.3(b)
    overhead accounting meters.

    ``candidate_filter`` encodes *structural* constraints (MP-HARS
    partitions, frozen states) and its rejections are uncounted;
    ``guard_filter`` is the guardrail veto (budget caps) and its
    rejections are reported as ``filtered``.  The guard runs after the
    structural filter, so ``filtered`` counts only vetoes among
    structurally-admissible candidates.
    """
    if observed_rate <= 0:
        raise EstimationError("search needs a positive observed rate")
    best: Optional[EvaluatedState] = None
    explored = 0
    estimation_failures = 0
    filtered = 0
    sweep_stats: dict = {}
    for candidate in neighbourhood(
        spec, current, space.m, space.n, space.d, stats=sweep_stats
    ):
        if candidate_filter is not None and not candidate_filter(
            candidate, current
        ):
            continue
        if guard_filter is not None and not guard_filter(candidate, current):
            filtered += 1
            continue
        # A candidate whose estimate raises (missing coefficients after
        # a partial restore, degenerate power prediction, …) is skipped
        # and counted; the sweep continues with the rest of the
        # neighbourhood instead of aborting the whole adaptation cycle.
        try:
            evaluated = evaluate_state(
                candidate,
                current,
                observed_rate,
                n_threads,
                target,
                perf_estimator,
                power_estimator,
            )
            better = best is None or _better(evaluated, best)
        except EstimationError:
            estimation_failures += 1
            continue
        explored += 1
        if better:
            best = evaluated
    if best is None:
        # Nothing passed the filter.  The current state is always in the
        # neighbourhood (distance 0), so reaching here means the filter
        # rejected it too: staying put is a *forced hold*, not an
        # Algorithm 2 candidate.  It is evaluated only to fill in the
        # result's estimates and is excluded from ``states_explored`` —
        # the Figure 5.3(b) overhead metering counts filter-passing
        # candidates only.
        best = evaluate_state(
            current,
            current,
            observed_rate,
            n_threads,
            target,
            perf_estimator,
            power_estimator,
        )
        return SearchResult(
            best=best,
            states_explored=explored,
            forced_fallback=True,
            estimation_failures=estimation_failures,
            pruned=sweep_stats.get("pruned", 0),
            filtered=filtered,
        )
    return SearchResult(
        best=best,
        states_explored=explored,
        estimation_failures=estimation_failures,
        pruned=sweep_stats.get("pruned", 0),
        filtered=filtered,
    )
