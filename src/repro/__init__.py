"""HARS reproduction: a heterogeneity-aware runtime system for
self-adaptive multithreaded applications (Yun, DAC'15 / UNIST thesis).

Layout:

* :mod:`repro.platform`   — HMP hardware model (ODROID-XU3 substrate)
* :mod:`repro.sim`        — discrete-time execution engine
* :mod:`repro.sched`      — Linux GTS scheduler model
* :mod:`repro.heartbeats` — Application Heartbeats framework
* :mod:`repro.workloads`  — synthetic PARSEC-like benchmarks
* :mod:`repro.core`       — HARS itself (estimators, search, manager)
* :mod:`repro.mphars`     — MP-HARS multi-application extension
* :mod:`repro.baselines`  — baseline and static-optimal versions
* :mod:`repro.fleet`      — fleet-scale request-driven serving
* :mod:`repro.telemetry`  — metrics registry, spans, and exporters
* :mod:`repro.acp`        — the out-of-process adaptation control plane
* :mod:`repro.experiments`— every table/figure of the evaluation

The names re-exported here (``__all__``) are the *stable* surface — a
script needs only ``import repro`` to configure, run, and observe an
experiment (see ``examples/quickstart.py``).  Everything else is
internal layering and may move between releases.
"""

from repro.experiments.runner import RunConfig, RunOutcome, RunShape, run
from repro.acp.chaos import AcpFaultConfig
from repro.acp.client import AcpClient, RetryPolicy, SessionHandle
from repro.faults import FaultConfig
from repro.fleet import FleetConfig, FleetFaultConfig, ResilienceConfig
from repro.guardrails import GuardrailConfig
from repro.sim.tracing import TraceRecorder
from repro.supervision import SupervisorConfig
from repro.telemetry import MetricsRegistry, TelemetryConfig

__version__ = "1.6.0"

__all__ = [
    "AcpClient",
    "AcpFaultConfig",
    "FaultConfig",
    "FleetConfig",
    "FleetFaultConfig",
    "GuardrailConfig",
    "MetricsRegistry",
    "RunConfig",
    "RunOutcome",
    "ResilienceConfig",
    "RetryPolicy",
    "RunShape",
    "SessionHandle",
    "SupervisorConfig",
    "TelemetryConfig",
    "TraceRecorder",
    "__version__",
    "run",
]
