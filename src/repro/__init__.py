"""HARS reproduction: a heterogeneity-aware runtime system for
self-adaptive multithreaded applications (Yun, DAC'15 / UNIST thesis).

Layout:

* :mod:`repro.platform`   — HMP hardware model (ODROID-XU3 substrate)
* :mod:`repro.sim`        — discrete-time execution engine
* :mod:`repro.sched`      — Linux GTS scheduler model
* :mod:`repro.heartbeats` — Application Heartbeats framework
* :mod:`repro.workloads`  — synthetic PARSEC-like benchmarks
* :mod:`repro.core`       — HARS itself (estimators, search, manager)
* :mod:`repro.mphars`     — MP-HARS multi-application extension
* :mod:`repro.baselines`  — baseline and static-optimal versions
* :mod:`repro.experiments`— every table/figure of the evaluation
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
