"""DVFS control interface — the simulated equivalent of cpufreq sysfs.

HARS is a *user-level* runtime: on the real board it writes
``scaling_setspeed`` under ``/sys/devices/system/cpu/cpufreqN/``.  The
:class:`DvfsController` provides the same verbs against the simulated
:class:`~repro.platform.machine.Machine`, including index-based stepping
(the runtime manager's search works in DVFS-table indices).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.errors import FrequencyError
from repro.platform.cluster import BIG, LITTLE
from repro.platform.machine import Machine


class DvfsController:
    """Per-cluster frequency control over a :class:`Machine`."""

    def __init__(self, machine: Machine):
        self.machine = machine
        #: Optional fault gate for :meth:`try_set_frequency` — the
        #: injector's per-write roll.  ``False`` models a lost
        #: ``scaling_setspeed`` write.  Plain :meth:`set_frequency`
        #: bypasses it, so governors and setup code are unaffected.
        self.write_filter: Optional[Callable[[str, int], bool]] = None

    def available_frequencies(self, cluster_name: str) -> Tuple[int, ...]:
        """The cluster's DVFS table (``scaling_available_frequencies``)."""
        return self.machine.spec.cluster(cluster_name).frequencies_mhz

    def current(self, cluster_name: str) -> int:
        """Current frequency in MHz (``scaling_cur_freq``)."""
        return self.machine.freq_mhz(cluster_name)

    def current_index(self, cluster_name: str) -> int:
        """Current frequency as an index into the DVFS table."""
        return self.machine.freq_index(cluster_name)

    def set_frequency(self, cluster_name: str, freq_mhz: int) -> None:
        """Set an exact operating point (``scaling_setspeed``)."""
        self.machine.set_freq_mhz(cluster_name, freq_mhz)

    def try_set_frequency(self, cluster_name: str, freq_mhz: int) -> bool:
        """Set an operating point through the fault gate.

        Returns ``False`` when an installed ``write_filter`` drops the
        write (the frequency is unchanged); callers — the actuation
        façade — own the retry policy.  Invalid frequencies still raise.
        """
        if self.write_filter is not None and not self.write_filter(
            cluster_name, freq_mhz
        ):
            self.validate(cluster_name, freq_mhz)
            return False
        self.machine.set_freq_mhz(cluster_name, freq_mhz)
        return True

    def set_index(self, cluster_name: str, index: int) -> None:
        """Set the operating point by DVFS-table index."""
        cluster = self.machine.spec.cluster(cluster_name)
        self.machine.set_freq_mhz(cluster_name, cluster.freq_at_index(index))

    def step(self, cluster_name: str, delta: int) -> int:
        """Move ``delta`` steps along the DVFS table, clamped to its ends.

        Returns the new frequency in MHz.
        """
        cluster = self.machine.spec.cluster(cluster_name)
        freqs = cluster.frequencies_mhz
        index = cluster.freq_index(self.machine.freq_mhz(cluster_name))
        new_index = max(0, min(len(freqs) - 1, index + delta))
        self.machine.set_freq_mhz(cluster_name, freqs[new_index])
        return freqs[new_index]

    def set_max(self) -> None:
        """Pin both clusters at their maximum frequency (baseline setup)."""
        for name in (BIG, LITTLE):
            cluster = self.machine.spec.cluster(name)
            self.machine.set_freq_mhz(name, cluster.max_freq_mhz)

    def set_min(self) -> None:
        """Pin both clusters at their minimum frequency."""
        for name in (BIG, LITTLE):
            cluster = self.machine.spec.cluster(name)
            self.machine.set_freq_mhz(name, cluster.min_freq_mhz)

    def validate(self, cluster_name: str, freq_mhz: int) -> int:
        """Return ``freq_mhz`` if valid for the cluster, else raise."""
        cluster = self.machine.spec.cluster(cluster_name)
        cluster.freq_index(freq_mhz)
        return freq_mhz
