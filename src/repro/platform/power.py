"""Ground-truth power model of the HMP platform.

This is the model the *simulated hardware* obeys — the equivalent of the
real silicon on the ODROID-XU3.  HARS never reads it directly; HARS only
sees the :class:`~repro.platform.sensor.PowerSensor` (which samples this
model) and its own *fitted linear* estimator
(:mod:`repro.core.power_estimator`).

Per cluster, with supply voltage ``V(f)`` from the core type's table::

    P_cluster = uncore
              + Σ_powered_cores  leakage(V)
              + Σ_powered_cores  C_dyn · (V/V_ref)² · (f/f0) · activity_core

where ``activity_core`` is the core's utilization this interval times the
running workload's switching-activity factor (idle cores retain a small
residual activity).  Board power is a constant added on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.platform.cluster import BIG, LITTLE, ClusterSpec
from repro.platform.machine import Machine
from repro.platform.spec import PlatformSpec


@dataclass(frozen=True)
class CoreActivity:
    """One core's behaviour over a measurement interval.

    Parameters
    ----------
    utilization:
        Fraction of the interval the core was executing (0..1).
    activity_factor:
        Switching-activity factor of the workload executed (0..1]; a
        compute-dense kernel like swaptions toggles more logic than a
        memory-stalled one like facesim.
    """

    utilization: float
    activity_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0:
            raise ConfigurationError(f"utilization {self.utilization} not in [0,1]")
        if not 0.0 < self.activity_factor <= 1.0:
            raise ConfigurationError(
                f"activity_factor {self.activity_factor} not in (0,1]"
            )


#: Activity of a core with nothing scheduled on it.
IDLE = CoreActivity(utilization=0.0)


class PowerModel:
    """Evaluates instantaneous platform power from per-core activity."""

    def __init__(self, spec: PlatformSpec):
        self.spec = spec
        # (cluster name, freq) -> (dynamic coefficient, leakage watts):
        # both depend only on the operating point, and DVFS tables are a
        # dozen entries, so the cache is tiny and hits every tick.
        self._coeff_cache: Dict[Tuple[str, int], Tuple[float, float]] = {}

    def _coefficients(
        self, cluster: ClusterSpec, freq_mhz: int
    ) -> Tuple[float, float]:
        key = (cluster.name, freq_mhz)
        cached = self._coeff_cache.get(key)
        if cached is None:
            core_type = cluster.core_type
            # Matches CoreType.dynamic_power's evaluation order exactly:
            # C · (V/V_ref)² · (f/f0) is its left-associated prefix, so
            # coefficient · activity is bit-identical to the direct call.
            cached = (
                core_type.dynamic_power(freq_mhz, 1.0),
                core_type.leakage_power(freq_mhz),
            )
            self._coeff_cache[key] = cached
        return cached

    def cluster_power(
        self,
        cluster: ClusterSpec,
        freq_mhz: int,
        activities: Mapping[int, CoreActivity],
        online_core_ids: Tuple[int, ...],
    ) -> float:
        """Instantaneous power (W) of one cluster.

        ``activities`` maps core id → activity; cores absent from the
        mapping are treated as idle.  Only online cores draw power.
        """
        core_type = cluster.core_type
        total = cluster.uncore_power_w if online_core_ids else 0.0
        for core_id in online_core_ids:
            act = activities.get(core_id, IDLE)
            # Idle cores keep a residual switching activity (imperfect
            # clock gating) plus full leakage.
            effective = max(
                act.utilization * act.activity_factor, core_type.idle_activity
            )
            total += core_type.dynamic_power(freq_mhz, effective)
            total += core_type.leakage_power(freq_mhz)
        return total

    def platform_power(
        self, machine: Machine, activities: Mapping[int, CoreActivity]
    ) -> Dict[str, float]:
        """Instantaneous power of both clusters plus the board constant.

        Returns a dict with keys ``"big"``, ``"little"``, ``"board"`` and
        ``"total"`` — the same channels the XU3's INA231 sensors expose.
        """
        readings: Dict[str, float] = {}
        for cluster in self.spec.clusters:
            readings[cluster.name] = self.cluster_power(
                cluster,
                machine.freq_mhz(cluster.name),
                activities,
                machine.online_core_ids(cluster.name),
            )
        readings["board"] = self.spec.board_power_w
        readings["total"] = readings[BIG] + readings[LITTLE] + readings["board"]
        return readings

    def platform_power_arrays(
        self,
        machine: Machine,
        busy_s: Sequence[float],
        busy_activity: Sequence[float],
        dt: float,
    ) -> Dict[str, float]:
        """Array-indexed equivalent of :meth:`platform_power`.

        ``busy_s[core_id]`` / ``busy_activity[core_id]`` are the tick's
        per-core busy seconds and busy·activity sums (zero for idle
        cores); utilization and activity factors are derived here the
        same way the engine derives them for :class:`CoreActivity`, so
        the result is bit-identical to :meth:`platform_power` — minus
        the per-core object construction and voltage lookups.
        """
        readings: Dict[str, float] = {}
        for cluster in self.spec.clusters:
            online = machine.online_core_ids(cluster.name)
            idle_activity = cluster.core_type.idle_activity
            dyn_coeff, leak_w = self._coefficients(
                cluster, machine.freq_mhz(cluster.name)
            )
            total = cluster.uncore_power_w if online else 0.0
            for core_id in online:
                core_busy = busy_s[core_id]
                if core_busy > 0:
                    util = core_busy / dt
                    if util > 1.0:
                        util = 1.0
                    activity = busy_activity[core_id] / core_busy
                    if activity > 1.0:
                        activity = 1.0
                    effective = util * activity
                    if effective < idle_activity:
                        effective = idle_activity
                else:
                    effective = idle_activity
                total += dyn_coeff * effective
                total += leak_w
            readings[cluster.name] = total
        readings["board"] = self.spec.board_power_w
        readings["total"] = readings[BIG] + readings[LITTLE] + readings["board"]
        return readings
