"""Mutable runtime state of the HMP platform.

A :class:`Machine` is built from a :class:`~repro.platform.spec.PlatformSpec`
and tracks the state HARS manipulates at run time: the current frequency of
each cluster (per-cluster DVFS) and per-core online flags.  It is the
object the simulation engine, the schedulers, and the runtime managers all
share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import PlatformError
from repro.platform.cluster import BIG, LITTLE, ClusterSpec
from repro.platform.spec import PlatformSpec


@dataclass
class Core:
    """Runtime state of one core."""

    core_id: int
    cluster_name: str
    online: bool = True


class Machine:
    """Runtime view of a two-cluster HMP platform.

    The machine starts with every core online and both clusters at their
    maximum frequency (the Linux ``performance`` governor default the
    paper's baseline uses).
    """

    def __init__(self, spec: PlatformSpec):
        self.spec = spec
        self._freqs: Dict[str, int] = {
            BIG: spec.big.max_freq_mhz,
            LITTLE: spec.little.max_freq_mhz,
        }
        self.cores: Dict[int, Core] = {
            core_id: Core(core_id=core_id, cluster_name=cluster.name)
            for cluster in spec.clusters
            for core_id in cluster.core_ids
        }
        # Online-set cache: hotplug is rare, online_core_ids() is per
        # tick.  The cached tuples are stable objects, which lets the
        # scheduler validate its own caches by identity.
        self._online_cache: Dict[str | None, Tuple[int, ...]] = {}

    # -- frequency control (per-cluster DVFS) -----------------------------

    def freq_mhz(self, cluster_name: str) -> int:
        """Current frequency of a cluster."""
        if cluster_name not in self._freqs:
            raise PlatformError(f"unknown cluster {cluster_name!r}")
        return self._freqs[cluster_name]

    def set_freq_mhz(self, cluster_name: str, freq_mhz: int) -> None:
        """Set a cluster's frequency; must be a DVFS operating point."""
        cluster = self.spec.cluster(cluster_name)
        cluster.freq_index(freq_mhz)  # validates
        self._freqs[cluster_name] = freq_mhz

    def freq_index(self, cluster_name: str) -> int:
        """Index of the current frequency in the cluster's DVFS table."""
        cluster = self.spec.cluster(cluster_name)
        return cluster.freq_index(self._freqs[cluster_name])

    # -- core topology -----------------------------------------------------

    def cluster_of_core(self, core_id: int) -> ClusterSpec:
        """The cluster specification owning a core id."""
        return self.spec.cluster_of(core_id)

    def online_core_ids(self, cluster_name: str | None = None) -> Tuple[int, ...]:
        """Online core ids, optionally restricted to one cluster."""
        cached = self._online_cache.get(cluster_name)
        if cached is not None:
            return cached
        ids: List[int] = []
        for core in self.cores.values():
            if not core.online:
                continue
            if cluster_name is not None and core.cluster_name != cluster_name:
                continue
            ids.append(core.core_id)
        result = tuple(sorted(ids))
        self._online_cache[cluster_name] = result
        return result

    def set_core_online(self, core_id: int, online: bool) -> None:
        """Hot(un)plug a core.

        HARS itself never hotplugs — it controls allocation through
        affinity — but the baseline sweeps and tests exercise this.
        """
        if core_id not in self.cores:
            raise PlatformError(f"unknown core id {core_id}")
        self.cores[core_id].online = online
        self._online_cache.clear()

    # -- convenience -------------------------------------------------------

    def core_speed(self, core_id: int, mem_intensity: float = 0.0) -> float:
        """Ground-truth speed of one core at the cluster's current freq."""
        cluster = self.cluster_of_core(core_id)
        return cluster.core_type.compute_speed(
            self.freq_mhz(cluster.name), mem_intensity
        )

    def snapshot(self) -> Dict[str, int]:
        """Current DVFS state, for traces: ``{"big": MHz, "little": MHz}``."""
        return dict(self._freqs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.spec.name}, big={self._freqs[BIG]}MHz, "
            f"little={self._freqs[LITTLE]}MHz)"
        )
