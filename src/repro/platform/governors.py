"""Linux cpufreq governor models.

The paper's baseline pins everything at maximum frequency (the
``performance`` governor).  Real deployments often run ``ondemand`` —
jump to maximum frequency when a cluster gets busy, step down when it
idles — so the library ships the classic governor family as controllers,
both as substrate completeness and as an extra comparison point for
HARS (which replaces the governor entirely via per-cluster
``scaling_setspeed``).

Governors are :class:`~repro.sim.controller.Controller`\\ s driven by the
engine's per-core utilization of each tick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.errors import ConfigurationError
from repro.platform.cluster import BIG, LITTLE
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class PerformanceGovernor(Controller):
    """Pin both clusters at maximum frequency (the baseline's setting)."""

    def on_start(self, sim: "Simulation") -> None:
        sim.dvfs.set_max()


class PowersaveGovernor(Controller):
    """Pin both clusters at minimum frequency."""

    def on_start(self, sim: "Simulation") -> None:
        sim.dvfs.set_min()


class OndemandGovernor(Controller):
    """The classic ondemand policy, per cluster.

    Every ``sample_period_s`` of simulated time, per cluster: if the
    busiest core's utilization over the last tick exceeds
    ``up_threshold``, jump straight to the maximum frequency; otherwise
    set the lowest frequency that would keep that utilization below the
    threshold (``f ≥ f_cur · util / up_threshold``), exactly the
    ondemand scaling rule.
    """

    def __init__(
        self,
        up_threshold: float = 0.80,
        sample_period_s: float = 0.1,
    ):
        if not 0 < up_threshold <= 1:
            raise ConfigurationError("up_threshold must be in (0, 1]")
        if sample_period_s <= 0:
            raise ConfigurationError("sample period must be positive")
        self.up_threshold = up_threshold
        self.sample_period_s = sample_period_s
        self._next_sample_s = 0.0
        self.decisions = 0

    def on_start(self, sim: "Simulation") -> None:
        sim.dvfs.set_min()  # ondemand idles low and ramps on demand
        self._next_sample_s = self.sample_period_s

    def on_tick(self, sim: "Simulation") -> None:
        if sim.clock.now_s + 1e-12 < self._next_sample_s:
            return
        self._next_sample_s = sim.clock.now_s + self.sample_period_s
        for cluster_name in (BIG, LITTLE):
            self._scale_cluster(sim, cluster_name)
        self.decisions += 1

    def _scale_cluster(self, sim: "Simulation", cluster_name: str) -> None:
        cluster = sim.spec.cluster(cluster_name)
        busiest = max(
            (
                sim.last_core_utilization.get(core_id, 0.0)
                for core_id in cluster.core_ids
            ),
            default=0.0,
        )
        current = sim.dvfs.current(cluster_name)
        if busiest > self.up_threshold:
            sim.dvfs.set_frequency(cluster_name, cluster.max_freq_mhz)
            return
        # Scale down to the lowest frequency that still keeps the
        # busiest core under the threshold at its current work rate.
        needed_mhz = current * busiest / self.up_threshold
        for freq in cluster.frequencies_mhz:
            if freq >= needed_mhz:
                sim.dvfs.set_frequency(cluster_name, freq)
                return
        sim.dvfs.set_frequency(cluster_name, cluster.max_freq_mhz)


#: Governor registry by cpufreq name.
GOVERNORS: Dict[str, type] = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
}
