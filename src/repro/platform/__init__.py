"""HMP hardware platform model (the ODROID-XU3 substrate).

Public surface:

* :class:`PlatformSpec` / :func:`odroid_xu3` — immutable machine description
* :class:`Machine` — mutable runtime state (cluster frequencies, cores)
* :class:`DvfsController` — per-cluster frequency control (cpufreq stand-in)
* :class:`PowerModel` / :class:`PowerSensor` — ground-truth power + sensors
* :mod:`repro.platform.topology` — cpuset helpers
"""

from repro.platform.cluster import BIG, LITTLE, ClusterSpec
from repro.platform.core_types import (
    BASELINE_FREQ_MHZ,
    CoreTypeSpec,
    cortex_a7,
    cortex_a15,
)
from repro.platform.dvfs import DvfsController
from repro.platform.governors import (
    GOVERNORS,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.platform.machine import Core, Machine
from repro.platform.power import IDLE, CoreActivity, PowerModel
from repro.platform.sensor import (
    DEFAULT_SAMPLE_PERIOD_S,
    PowerSample,
    PowerSensor,
)
from repro.platform.spec import PlatformSpec, odroid_xu3, small_test_platform

__all__ = [
    "BASELINE_FREQ_MHZ",
    "BIG",
    "LITTLE",
    "DEFAULT_SAMPLE_PERIOD_S",
    "ClusterSpec",
    "Core",
    "CoreActivity",
    "CoreTypeSpec",
    "DvfsController",
    "GOVERNORS",
    "IDLE",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "Machine",
    "PlatformSpec",
    "PowerModel",
    "PowerSample",
    "PowerSensor",
    "cortex_a7",
    "cortex_a15",
    "odroid_xu3",
    "small_test_platform",
]
