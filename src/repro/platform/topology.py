"""CPU-set / topology helpers (the simulated ``sched_setaffinity`` masks).

Affinity everywhere in the library is a ``frozenset`` of global core ids.
These helpers construct and split such masks by cluster, mirroring the
cpuset arithmetic HARS and MP-HARS do on the real board.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.errors import PlatformError
from repro.platform.cluster import BIG, LITTLE
from repro.platform.spec import PlatformSpec

CpuSet = FrozenSet[int]


def full_mask(spec: PlatformSpec) -> CpuSet:
    """Every core on the platform."""
    return frozenset(spec.all_core_ids)


def cluster_mask(spec: PlatformSpec, cluster_name: str) -> CpuSet:
    """All cores of one cluster."""
    return frozenset(spec.cluster(cluster_name).core_ids)


def make_mask(core_ids: Iterable[int], spec: PlatformSpec) -> CpuSet:
    """Validate and freeze a set of core ids."""
    mask = frozenset(core_ids)
    valid = set(spec.all_core_ids)
    unknown = mask - valid
    if unknown:
        raise PlatformError(f"core ids {sorted(unknown)} not on platform")
    return mask

def split_mask(mask: CpuSet, spec: PlatformSpec) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Split a mask into (big core ids, little core ids), each sorted."""
    big = tuple(sorted(c for c in mask if spec.big.contains_core(c)))
    little = tuple(sorted(c for c in mask if spec.little.contains_core(c)))
    return big, little


def first_n(spec: PlatformSpec, cluster_name: str, n: int) -> Tuple[int, ...]:
    """The lowest-numbered ``n`` cores of a cluster.

    This is how the single-application HARS picks its ``C_B``/``C_L``
    cores: allocation is by count, lowest ids first.
    """
    cluster = spec.cluster(cluster_name)
    if not 0 <= n <= cluster.n_cores:
        raise PlatformError(
            f"cannot take {n} cores from {cluster_name} (has {cluster.n_cores})"
        )
    return cluster.core_ids[:n]


def count_by_cluster(mask: CpuSet, spec: PlatformSpec) -> Tuple[int, int]:
    """``(n_big, n_little)`` cores in a mask."""
    big, little = split_mask(mask, spec)
    return len(big), len(little)


def describe(mask: CpuSet, spec: PlatformSpec) -> str:
    """Human-readable mask description for traces and logs."""
    big, little = split_mask(mask, spec)
    return f"big{list(big)}+little{list(little)}"
