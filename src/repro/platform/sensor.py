"""Power-sensor model.

The ODROID-XU3 carries INA231 current sensors on the big cluster, LITTLE
cluster, DRAM and GPU rails; the paper reads them with a 263 808 µs
sampling period and fits its power estimator against the samples.  This
module reproduces that observation channel: the simulation engine feeds
the sensor the ground-truth power of every tick, and the sensor exposes

* periodic *samples* (what calibration fits against), and
* exact integrated *energy* (what the experiments' perf/watt uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.errors import ConfigurationError

#: The paper's sensor sampling period (263,808 microseconds).
DEFAULT_SAMPLE_PERIOD_S = 0.263808

#: Power channels every reading carries.
CHANNELS = ("big", "little", "board", "total")


@dataclass(frozen=True)
class PowerSample:
    """One periodic sensor reading."""

    time_s: float
    watts: Mapping[str, float]


class PowerSensor:
    """Integrates tick-level power into energy and periodic samples."""

    def __init__(self, sample_period_s: float = DEFAULT_SAMPLE_PERIOD_S):
        if sample_period_s <= 0:
            raise ConfigurationError("sample period must be positive")
        self.sample_period_s = sample_period_s
        self.samples: List[PowerSample] = []
        self._energy_j: Dict[str, float] = {ch: 0.0 for ch in CHANNELS}
        self._elapsed_s = 0.0
        self._next_sample_s = sample_period_s
        self._last_watts: Dict[str, float] = {ch: 0.0 for ch in CHANNELS}

    def record(self, dt_s: float, watts: Mapping[str, float]) -> None:
        """Account one simulation tick of duration ``dt_s`` at ``watts``.

        The power is treated as constant across the tick — the engine's
        tick (10 ms) is much shorter than the sensor period (263.8 ms),
        which mirrors the real measurement setup.
        """
        if dt_s <= 0:
            raise ConfigurationError("tick duration must be positive")
        for channel in CHANNELS:
            if channel not in watts:
                raise ConfigurationError(f"power reading missing channel {channel!r}")
            self._energy_j[channel] += watts[channel] * dt_s
        self._elapsed_s += dt_s
        self._last_watts = {ch: watts[ch] for ch in CHANNELS}
        while self._next_sample_s <= self._elapsed_s:
            self.samples.append(
                PowerSample(time_s=self._next_sample_s, watts=dict(self._last_watts))
            )
            self._next_sample_s += self.sample_period_s

    @property
    def elapsed_s(self) -> float:
        """Total observed time."""
        return self._elapsed_s

    def energy_j(self, channel: str = "total") -> float:
        """Exact integrated energy of a channel."""
        if channel not in self._energy_j:
            raise ConfigurationError(f"unknown power channel {channel!r}")
        return self._energy_j[channel]

    def average_power_w(self, channel: str = "total") -> float:
        """Energy / time — the denominator of the paper's perf/watt."""
        if self._elapsed_s == 0:
            raise ConfigurationError("no power recorded yet")
        return self.energy_j(channel) / self._elapsed_s

    def sampled_average_w(self, channel: str = "total") -> float:
        """Average over periodic samples — what a real sensor reader sees.

        Differs slightly from :meth:`average_power_w` because sampling
        quantizes; calibration uses this one for fidelity.
        """
        if not self.samples:
            raise ConfigurationError("no samples captured yet")
        return sum(s.watts[channel] for s in self.samples) / len(self.samples)

    def reset(self) -> None:
        """Clear all accumulated state (used between calibration runs)."""
        self.samples.clear()
        self._energy_j = {ch: 0.0 for ch in CHANNELS}
        self._elapsed_s = 0.0
        self._next_sample_s = self.sample_period_s
        self._last_watts = {ch: 0.0 for ch in CHANNELS}
