"""Power-sensor model.

The ODROID-XU3 carries INA231 current sensors on the big cluster, LITTLE
cluster, DRAM and GPU rails; the paper reads them with a 263 808 µs
sampling period and fits its power estimator against the samples.  This
module reproduces that observation channel: the simulation engine feeds
the sensor the ground-truth power of every tick, and the sensor exposes

* periodic *samples* (what calibration fits against), and
* exact integrated *energy* (what the experiments' perf/watt uses).

The two channels are deliberately separate: an installed ``fault_hook``
(the fault-injection layer) can drop, freeze, or corrupt the periodic
samples a sensor *reader* would see, while the integrated energy — the
simulation's ground truth — stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError

#: The paper's sensor sampling period (263,808 microseconds).
DEFAULT_SAMPLE_PERIOD_S = 0.263808

#: Power channels every reading carries.
CHANNELS = ("big", "little", "board", "total")

#: Sample-hook signature: ``(sample_time_s, true_watts) -> observed``
#: where ``None`` means the sample was lost.
SampleHook = Callable[
    [float, Mapping[str, float]], Optional[Mapping[str, float]]
]


@dataclass(frozen=True)
class PowerSample:
    """One periodic sensor reading."""

    time_s: float
    watts: Mapping[str, float]


class PowerSensor:
    """Integrates tick-level power into energy and periodic samples."""

    def __init__(self, sample_period_s: float = DEFAULT_SAMPLE_PERIOD_S):
        if sample_period_s <= 0:
            raise ConfigurationError("sample period must be positive")
        self.sample_period_s = sample_period_s
        self.samples: List[PowerSample] = []
        #: Samples lost to an installed fault hook.
        self.dropped_samples = 0
        #: Samples whose reading had at least one channel clamped to 0 —
        #: real INA231 registers are unsigned, so a negative reading
        #: (injected noise) can never reach a reader, and
        #: :meth:`best_average_w` cannot be dragged down by one.
        self.clamped_samples = 0
        #: Optional fault filter applied per periodic sample.
        self.fault_hook: Optional[SampleHook] = None
        self._energy_j: Dict[str, float] = {ch: 0.0 for ch in CHANNELS}
        self._elapsed_s = 0.0
        #: Samples taken so far (captured + dropped).  Sample boundaries
        #: are derived by *multiplying* this count by the period — a
        #: running float sum drifts against the summed tick durations and
        #: eventually skips or double-fires a boundary.
        self._samples_seen = 0
        #: Boundary comparison tolerance: ticks accumulate rounding error
        #: of a few ulps, so an exact-boundary sample (e.g. tick 16488 at
        #: the 10 ms-tick / 263.808 ms-period ratio) must not come down
        #: to the sign of that error.
        self._boundary_eps = sample_period_s * 1e-9
        self._last_watts: Dict[str, float] = {ch: 0.0 for ch in CHANNELS}

    def record(self, dt_s: float, watts: Mapping[str, float]) -> None:
        """Account one simulation tick of duration ``dt_s`` at ``watts``.

        The power is treated as constant across the tick — the engine's
        tick (10 ms) is much shorter than the sensor period (263.8 ms),
        which mirrors the real measurement setup.
        """
        if dt_s <= 0:
            raise ConfigurationError("tick duration must be positive")
        for channel in CHANNELS:
            if channel not in watts:
                raise ConfigurationError(f"power reading missing channel {channel!r}")
            self._energy_j[channel] += watts[channel] * dt_s
        self._elapsed_s += dt_s
        self._last_watts = {ch: watts[ch] for ch in CHANNELS}
        next_sample_s = (self._samples_seen + 1) * self.sample_period_s
        while next_sample_s <= self._elapsed_s + self._boundary_eps:
            observed: Optional[Mapping[str, float]] = self._last_watts
            if self.fault_hook is not None:
                observed = self.fault_hook(next_sample_s, self._last_watts)
            if observed is None:
                self.dropped_samples += 1
            else:
                captured = dict(observed)
                if any(value < 0 for value in captured.values()):
                    self.clamped_samples += 1
                    captured = {
                        ch: (value if value >= 0 else 0.0)
                        for ch, value in captured.items()
                    }
                self.samples.append(
                    PowerSample(time_s=next_sample_s, watts=captured)
                )
            self._samples_seen += 1
            next_sample_s = (self._samples_seen + 1) * self.sample_period_s

    @property
    def elapsed_s(self) -> float:
        """Total observed time."""
        return self._elapsed_s

    def energy_j(self, channel: str = "total") -> float:
        """Exact integrated energy of a channel."""
        if channel not in self._energy_j:
            raise ConfigurationError(f"unknown power channel {channel!r}")
        return self._energy_j[channel]

    def average_power_w(self, channel: str = "total") -> float:
        """Energy / time — the denominator of the paper's perf/watt."""
        if self._elapsed_s == 0:
            raise ConfigurationError("no power recorded yet")
        return self.energy_j(channel) / self._elapsed_s

    def sampled_average_w(self, channel: str = "total") -> float:
        """Average over periodic samples — what a real sensor reader sees.

        Differs slightly from :meth:`average_power_w` because sampling
        quantizes; calibration uses this one for fidelity.
        """
        if not self.samples:
            raise ConfigurationError("no samples captured yet")
        return sum(s.watts[channel] for s in self.samples) / len(self.samples)

    def best_average_w(self, channel: str = "total") -> float:
        """Sampled average, falling back to integrated energy.

        The degradation policy for sensor dropout: readers prefer the
        sampled channel (fidelity to the real read-out), but when every
        sample was lost they degrade to the exact integrated average
        instead of failing.
        """
        if self.samples:
            return self.sampled_average_w(channel)
        return self.average_power_w(channel)

    def reset(self) -> None:
        """Clear all accumulated state (used between calibration runs).

        Sampling restarts mid-period too: the first sample after a reset
        lands one full period after it, regardless of where in the old
        period the reset happened.  An installed ``fault_hook`` stays.
        """
        self.samples.clear()
        self.dropped_samples = 0
        self.clamped_samples = 0
        self._energy_j = {ch: 0.0 for ch in CHANNELS}
        self._elapsed_s = 0.0
        self._samples_seen = 0
        self._last_watts = {ch: 0.0 for ch in CHANNELS}
