"""Core-type specifications for the HMP platform model.

The paper's platform is the Samsung Exynos 5422 (ODROID-XU3): a big
cluster of out-of-order Cortex-A15 cores and a LITTLE cluster of in-order
Cortex-A7 cores.  A :class:`CoreTypeSpec` captures everything the
simulator needs about one core microarchitecture:

* its compute speed at the baseline frequency ``f0`` (work units / s),
* a voltage/frequency operating-point table, and
* the parameters of the ground-truth power model (dynamic capacitance
  term, leakage, idle residency power).

The ground-truth power model is intentionally *nonlinear* in voltage and
frequency (``P_dyn ∝ C·V²·f``) so that HARS's fitted *linear* estimator
(Section 3.1.2 of the paper) carries realistic approximation error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.errors import ConfigurationError, FrequencyError

#: Canonical baseline frequency ``f0`` used for speed normalization (MHz).
BASELINE_FREQ_MHZ = 1000

#: Reference voltage used to normalize the dynamic-power term.
REFERENCE_VOLTAGE = 1.0


@dataclass(frozen=True)
class CoreTypeSpec:
    """Immutable description of one core microarchitecture.

    Parameters
    ----------
    name:
        Human-readable microarchitecture name (``"cortex-a15"``).
    pipeline:
        ``"out-of-order"`` or ``"in-order"``; informational.
    issue_width:
        Instruction issue width.  The paper derives its assumed big:little
        performance ratio r0 = 3/2 from the issue widths (3 vs 2).
    speed_at_f0:
        Compute-bound speed of one core at ``BASELINE_FREQ_MHZ``, in work
        units per second.  The LITTLE core defines the unit scale (1.0).
    voltage_table:
        Mapping from frequency (MHz) to supply voltage (V).  Its keys are
        the cluster's DVFS operating points.
    dynamic_capacitance_w:
        Dynamic power of one fully-active core at ``f0`` and the reference
        voltage, in watts (the ``C`` of ``C·V²·f``).
    leakage_w_per_volt:
        Static leakage per powered core, in watts per volt of supply.
    idle_activity:
        Residual activity factor of an idle-but-online core (clock gating
        is imperfect); multiplies the dynamic term.
    """

    name: str
    pipeline: str
    issue_width: int
    speed_at_f0: float
    voltage_table: Mapping[int, float]
    dynamic_capacitance_w: float
    leakage_w_per_volt: float
    idle_activity: float = 0.02

    def __post_init__(self) -> None:
        if self.speed_at_f0 <= 0:
            raise ConfigurationError(f"{self.name}: speed_at_f0 must be positive")
        if not self.voltage_table:
            raise ConfigurationError(f"{self.name}: empty voltage table")
        if self.pipeline not in ("out-of-order", "in-order"):
            raise ConfigurationError(
                f"{self.name}: pipeline must be 'out-of-order' or 'in-order'"
            )
        for freq, volt in self.voltage_table.items():
            if freq <= 0 or volt <= 0:
                raise ConfigurationError(
                    f"{self.name}: invalid operating point ({freq} MHz, {volt} V)"
                )

    @property
    def frequencies_mhz(self) -> Tuple[int, ...]:
        """Sorted DVFS operating points in MHz."""
        return tuple(sorted(self.voltage_table))

    def voltage_at(self, freq_mhz: int) -> float:
        """Supply voltage for an operating point.

        Raises
        ------
        FrequencyError
            If ``freq_mhz`` is not an operating point of this core type.
        """
        try:
            return self.voltage_table[freq_mhz]
        except KeyError:
            raise FrequencyError(
                f"{self.name}: {freq_mhz} MHz is not an operating point "
                f"(valid: {self.frequencies_mhz})"
            ) from None

    def compute_speed(self, freq_mhz: int, mem_intensity: float = 0.0) -> float:
        """Ground-truth speed of one core at an operating point.

        ``mem_intensity`` in [0, 1) models the memory-bound fraction of a
        workload's execution time, which does *not* scale with core
        frequency.  At ``mem_intensity = 0`` the speed scales linearly
        with frequency; at higher values the return on frequency
        diminishes, matching the sub-linear frequency scaling of
        memory-bound PARSEC workloads.
        """
        if not 0.0 <= mem_intensity < 1.0:
            raise ConfigurationError(
                f"mem_intensity must be in [0, 1), got {mem_intensity}"
            )
        self.voltage_at(freq_mhz)  # validates the operating point
        scale = freq_mhz / BASELINE_FREQ_MHZ
        # time/unit = compute part (scales with 1/f) + memory part (fixed)
        denominator = (1.0 - mem_intensity) / scale + mem_intensity
        return self.speed_at_f0 / denominator

    def dynamic_power(self, freq_mhz: int, activity: float) -> float:
        """Dynamic power (W) of one core at the given activity factor."""
        if activity < 0:
            raise ConfigurationError(f"negative activity factor {activity}")
        volt = self.voltage_at(freq_mhz)
        v_sq = (volt / REFERENCE_VOLTAGE) ** 2
        f_scale = freq_mhz / BASELINE_FREQ_MHZ
        return self.dynamic_capacitance_w * v_sq * f_scale * activity

    def leakage_power(self, freq_mhz: int) -> float:
        """Static leakage (W) of one powered core at an operating point."""
        return self.leakage_w_per_volt * self.voltage_at(freq_mhz)


def _linear_voltage_table(
    freqs_mhz: Tuple[int, ...], v_low: float, v_high: float
) -> Dict[int, float]:
    """Voltage table that interpolates linearly across the DVFS range."""
    lo, hi = min(freqs_mhz), max(freqs_mhz)
    span = max(1, hi - lo)
    return {
        f: round(v_low + (v_high - v_low) * (f - lo) / span, 4) for f in freqs_mhz
    }


def cortex_a15(
    freqs_mhz: Tuple[int, ...] = tuple(range(800, 1601, 100)),
) -> CoreTypeSpec:
    """The big core of the ODROID-XU3: out-of-order, 3-wide, 0.8–1.6 GHz.

    Power parameters are tuned so that four fully-active A15 cores at
    1.6 GHz draw roughly 5.5 W — the regime the XU3's big cluster operates
    in under the PARSEC native inputs.
    """
    return CoreTypeSpec(
        name="cortex-a15",
        pipeline="out-of-order",
        issue_width=3,
        speed_at_f0=1.5,
        voltage_table=_linear_voltage_table(freqs_mhz, 0.90, 1.25),
        dynamic_capacitance_w=0.52,
        leakage_w_per_volt=0.15,
    )


def cortex_a7(
    freqs_mhz: Tuple[int, ...] = tuple(range(800, 1301, 100)),
) -> CoreTypeSpec:
    """The LITTLE core of the ODROID-XU3: in-order, 2-wide, 0.8–1.3 GHz.

    Four fully-active A7 cores at 1.3 GHz draw roughly 0.85 W.
    """
    return CoreTypeSpec(
        name="cortex-a7",
        pipeline="in-order",
        issue_width=2,
        speed_at_f0=1.0,
        voltage_table=_linear_voltage_table(freqs_mhz, 0.90, 1.10),
        dynamic_capacitance_w=0.125,
        leakage_w_per_volt=0.03,
    )
