"""Cluster specifications: a group of identical cores sharing a DVFS domain.

The paper's platform has exactly two clusters ("big" and "little"), each
with its own frequency domain — per-*cluster* DVFS, not per-core (the
paper calls this assumption out in Section 3.1.1, footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError, FrequencyError
from repro.platform.core_types import CoreTypeSpec

#: Canonical cluster names used throughout the library.
BIG = "big"
LITTLE = "little"
CLUSTER_NAMES: Tuple[str, str] = (BIG, LITTLE)


@dataclass(frozen=True)
class ClusterSpec:
    """Immutable description of one cluster.

    Parameters
    ----------
    name:
        ``"big"`` or ``"little"``.
    core_type:
        The microarchitecture of every core in the cluster.
    n_cores:
        Number of cores.
    first_core_id:
        Global id of the cluster's first core.  The ODROID-XU3 numbers
        the LITTLE cores 0–3 and the big cores 4–7 (this is the
        ``bigStartIndex`` of the paper's Algorithm 4).
    uncore_power_w:
        Constant power of the cluster's shared logic (L2, interconnect)
        while the cluster is powered.
    """

    name: str
    core_type: CoreTypeSpec
    n_cores: int
    first_core_id: int
    uncore_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.name not in CLUSTER_NAMES:
            raise ConfigurationError(
                f"cluster name must be one of {CLUSTER_NAMES}, got {self.name!r}"
            )
        if self.n_cores <= 0:
            raise ConfigurationError(f"{self.name}: n_cores must be positive")
        if self.first_core_id < 0:
            raise ConfigurationError(f"{self.name}: negative first_core_id")
        if self.uncore_power_w < 0:
            raise ConfigurationError(f"{self.name}: negative uncore power")

    @property
    def core_ids(self) -> Tuple[int, ...]:
        """Global ids of the cluster's cores, in ascending order."""
        return tuple(range(self.first_core_id, self.first_core_id + self.n_cores))

    @property
    def frequencies_mhz(self) -> Tuple[int, ...]:
        """The cluster's DVFS operating points (sorted ascending)."""
        return self.core_type.frequencies_mhz

    @property
    def min_freq_mhz(self) -> int:
        return self.frequencies_mhz[0]

    @property
    def max_freq_mhz(self) -> int:
        return self.frequencies_mhz[-1]

    def freq_index(self, freq_mhz: int) -> int:
        """Index of an operating point in the sorted DVFS table."""
        try:
            return self.frequencies_mhz.index(freq_mhz)
        except ValueError:
            raise FrequencyError(
                f"{self.name}: {freq_mhz} MHz is not an operating point "
                f"(valid: {self.frequencies_mhz})"
            ) from None

    def freq_at_index(self, index: int) -> int:
        """Operating point at a DVFS-table index (clamped indexing is the
        caller's job; out-of-range raises)."""
        freqs = self.frequencies_mhz
        if not 0 <= index < len(freqs):
            raise FrequencyError(
                f"{self.name}: frequency index {index} out of range "
                f"[0, {len(freqs) - 1}]"
            )
        return freqs[index]

    def clamp_freq(self, freq_mhz: int) -> int:
        """Round an arbitrary frequency to the nearest operating point."""
        freqs = self.frequencies_mhz
        return min(freqs, key=lambda f: (abs(f - freq_mhz), f))

    def contains_core(self, core_id: int) -> bool:
        """Whether a global core id belongs to this cluster."""
        return self.first_core_id <= core_id < self.first_core_id + self.n_cores
