"""Whole-platform specification and the ODROID-XU3 preset.

A :class:`PlatformSpec` is the immutable description of an HMP machine:
two clusters, their DVFS tables, and board-level constants.  The runtime
(mutable) counterpart is :class:`repro.platform.machine.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import ConfigurationError, PlatformError
from repro.platform.cluster import BIG, LITTLE, ClusterSpec
from repro.platform.core_types import cortex_a7, cortex_a15


@dataclass(frozen=True)
class PlatformSpec:
    """Immutable description of a two-cluster HMP platform.

    Parameters
    ----------
    name:
        Platform name for reports (``"odroid-xu3"``).
    big, little:
        The two cluster specifications.  Their core-id ranges must not
        overlap.
    board_power_w:
        Constant power of everything outside the CPU clusters that the
        paper's sensors also see (DRAM refresh, regulators).
    """

    name: str
    big: ClusterSpec
    little: ClusterSpec
    board_power_w: float = 0.25

    def __post_init__(self) -> None:
        if self.big.name != BIG or self.little.name != LITTLE:
            raise ConfigurationError("clusters must be named 'big' and 'little'")
        if set(self.big.core_ids) & set(self.little.core_ids):
            raise ConfigurationError("big and little core-id ranges overlap")
        if self.board_power_w < 0:
            raise ConfigurationError("negative board power")

    @property
    def clusters(self) -> Tuple[ClusterSpec, ClusterSpec]:
        """Both clusters, big first."""
        return (self.big, self.little)

    def cluster(self, name: str) -> ClusterSpec:
        """Look up a cluster by canonical name."""
        if name == BIG:
            return self.big
        if name == LITTLE:
            return self.little
        raise PlatformError(f"unknown cluster {name!r}")

    def cluster_of(self, core_id: int) -> ClusterSpec:
        """The cluster owning a global core id."""
        for cluster in self.clusters:
            if cluster.contains_core(core_id):
                return cluster
        raise PlatformError(f"core id {core_id} is not on platform {self.name}")

    @property
    def n_cores(self) -> int:
        """Total core count across both clusters."""
        return self.big.n_cores + self.little.n_cores

    @property
    def all_core_ids(self) -> Tuple[int, ...]:
        """Every core id on the platform, ascending."""
        return tuple(sorted(self.little.core_ids + self.big.core_ids))

    def iter_states(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate the full system-state space ``(C_B, C_L, f_B, f_L)``.

        Core counts range over ``0..n`` per cluster with at least one core
        total; frequencies range over each cluster's DVFS table.  This is
        the space the static-optimal offline sweep explores.
        """
        for c_big in range(self.big.n_cores + 1):
            for c_little in range(self.little.n_cores + 1):
                if c_big == 0 and c_little == 0:
                    continue
                for f_big in self.big.frequencies_mhz:
                    for f_little in self.little.frequencies_mhz:
                        yield (c_big, c_little, f_big, f_little)

    def state_space_size(self) -> int:
        """Number of states in :meth:`iter_states`."""
        n_counts = (self.big.n_cores + 1) * (self.little.n_cores + 1) - 1
        return (
            n_counts
            * len(self.big.frequencies_mhz)
            * len(self.little.frequencies_mhz)
        )


def odroid_xu3() -> PlatformSpec:
    """The paper's evaluation platform: Samsung Exynos 5422.

    * LITTLE: 4 × Cortex-A7, cores 0–3, 0.8–1.3 GHz
    * big:    4 × Cortex-A15, cores 4–7, 0.8–1.6 GHz
    """
    little = ClusterSpec(
        name=LITTLE,
        core_type=cortex_a7(),
        n_cores=4,
        first_core_id=0,
        uncore_power_w=0.05,
    )
    big = ClusterSpec(
        name=BIG,
        core_type=cortex_a15(),
        n_cores=4,
        first_core_id=4,
        uncore_power_w=0.12,
    )
    return PlatformSpec(name="odroid-xu3", big=big, little=little)


def small_test_platform() -> PlatformSpec:
    """A 2+2-core platform with short DVFS tables, for fast unit tests."""
    little = ClusterSpec(
        name=LITTLE,
        core_type=cortex_a7(freqs_mhz=(800, 1000, 1200)),
        n_cores=2,
        first_core_id=0,
        uncore_power_w=0.05,
    )
    big = ClusterSpec(
        name=BIG,
        core_type=cortex_a15(freqs_mhz=(800, 1200, 1600)),
        n_cores=2,
        first_core_id=2,
        uncore_power_w=0.12,
    )
    return PlatformSpec(name="test-2x2", big=big, little=little)


def frequency_tables(spec: PlatformSpec) -> Dict[str, Tuple[int, ...]]:
    """Convenience: ``{cluster name: DVFS table}`` for reports."""
    return {c.name: c.frequencies_mhz for c in spec.clusters}
