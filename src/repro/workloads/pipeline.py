"""Pipeline-parallel workload model (ferret).

PARSEC's ferret is a six-stage similarity-search pipeline: a serial input
stage, four parallel middle stages, and a serial output stage.  Items
flow through bounded inter-stage queues; the application emits a
heartbeat each time an item leaves the last stage, so whole-application
throughput is capped by the *slowest stage* — which is exactly why the
chunk-based scheduler (consecutive thread ids on the little cluster) can
starve it, and the interleaving scheduler fixes it (Section 3.1.3,
Figure 3.2).

The model is a fluid approximation: per tick, each stage converts its
threads' granted work capacity into items (``capacity / cost_per_item``)
bounded by its input queue and the next queue's free space.  Stages are
drained from the back of the pipeline forwards, so an item advances at
most one stage per tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.workloads.base import AdvanceResult, WorkloadModel, WorkloadTraits

_EPSILON = 1e-9


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage.

    ``cost_per_item`` is in work units; ``n_threads`` threads serve the
    stage concurrently.
    """

    name: str
    n_threads: int
    cost_per_item: float

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ConfigurationError(f"stage {self.name}: needs a thread")
        if self.cost_per_item <= 0:
            raise ConfigurationError(f"stage {self.name}: cost must be positive")


class PipelineWorkload(WorkloadModel):
    """Multi-stage pipeline with bounded queues and per-item heartbeats.

    Thread indices are assigned stage by stage in order — stage 0 gets
    threads ``0 .. n_0−1``, stage 1 the next ``n_1``, and so on — which is
    the thread-id ordering the paper's chunk-based scheduler assumes.
    """

    def __init__(
        self,
        traits: WorkloadTraits,
        stages: Tuple[StageSpec, ...],
        n_items: int,
        queue_depth: int = 20,
    ):
        if len(stages) < 2:
            raise ConfigurationError(f"{traits.name}: need at least two stages")
        if n_items < 1:
            raise ConfigurationError(f"{traits.name}: need at least one item")
        if queue_depth < 1:
            raise ConfigurationError(f"{traits.name}: queue depth must be >= 1")
        super().__init__(traits, sum(s.n_threads for s in stages))
        self.stages = stages
        self.n_items = n_items
        self.queue_depth = queue_depth
        self._stage_of_thread: List[int] = []
        for stage_index, stage in enumerate(stages):
            self._stage_of_thread.extend([stage_index] * stage.n_threads)
        self.reset()

    def reset(self, seed: int = 0) -> None:
        self._seed = seed
        self._source_remaining = float(self.n_items)
        # _queues[s] feeds stage s for s >= 1; stage 0 reads the source.
        self._queues: List[float] = [0.0] * len(self.stages)
        self._output = 0.0
        self._emitted = 0
        self._done = False

    # -- topology ------------------------------------------------------------

    def thread_stage(self, thread_index: int) -> int:
        if not 0 <= thread_index < self.n_threads:
            raise SimulationError(
                f"{self.name}: thread index {thread_index} out of range"
            )
        return self._stage_of_thread[thread_index]

    def stage_threads(self, stage_index: int) -> Tuple[int, ...]:
        """Thread indices serving a stage."""
        return tuple(
            i for i, s in enumerate(self._stage_of_thread) if s == stage_index
        )

    def _stage_input(self, stage_index: int) -> float:
        """Items available to a stage right now."""
        if stage_index == 0:
            return self._source_remaining
        return self._queues[stage_index]

    # -- WorkloadModel interface ----------------------------------------------

    def wants_cpu(self, thread_index: int) -> bool:
        if self._done:
            return False
        stage_index = self.thread_stage(thread_index)
        if self._stage_input(stage_index) <= _EPSILON:
            return False  # starved: blocked on the input queue
        if stage_index < len(self.stages) - 1:
            # Blocked on a full output queue: the thread sleeps on the
            # queue's condition variable rather than spinning.
            return self._queues[stage_index + 1] < self.queue_depth - _EPSILON
        return True

    def advance(self, grants: Dict[int, float]) -> AdvanceResult:
        if self._done:
            return AdvanceResult(consumed={}, done=True)
        consumed = {i: 0.0 for i in grants}

        # Drain back-to-front so an item moves at most one stage per tick.
        for stage_index in range(len(self.stages) - 1, -1, -1):
            stage = self.stages[stage_index]
            thread_grants = [
                (i, grants.get(i, 0.0)) for i in self.stage_threads(stage_index)
            ]
            capacity_work = sum(g for _, g in thread_grants)
            capacity_items = capacity_work / stage.cost_per_item
            available = self._stage_input(stage_index)
            if stage_index < len(self.stages) - 1:
                space = self.queue_depth - self._queues[stage_index + 1]
            else:
                space = float("inf")
            processed = max(0.0, min(capacity_items, available, space))

            if stage_index == 0:
                self._source_remaining -= processed
            else:
                self._queues[stage_index] -= processed
            if stage_index < len(self.stages) - 1:
                self._queues[stage_index + 1] += processed
            else:
                self._output += processed

            # Attribute consumed work to the stage's threads pro rata.
            if capacity_items > _EPSILON and processed > 0:
                fraction = processed / capacity_items
                for i, grant in thread_grants:
                    consumed[i] = consumed.get(i, 0.0) + grant * fraction

        emitted_now = int(self._output + _EPSILON) - self._emitted
        self._emitted += emitted_now
        if self._emitted >= self.n_items:
            self._done = True
        return AdvanceResult(
            consumed=consumed,
            heartbeats=emitted_now,
            heartbeat_tags=tuple("pipeline" for _ in range(emitted_now)),
            done=self._done,
        )

    def is_done(self) -> bool:
        return self._done

    def total_heartbeats(self) -> int:
        return self.n_items

    # -- introspection ---------------------------------------------------------

    @property
    def items_emitted(self) -> int:
        return self._emitted

    def queue_levels(self) -> Tuple[float, ...]:
        """Current inter-stage queue occupancy (index 0 unused)."""
        return tuple(self._queues)
