"""Extra synthetic workloads beyond the paper's six PARSEC benchmarks.

The evaluation uses blackscholes…swaptions; these presets extend the
library's coverage for users exploring other regimes.  They follow the
same modelling conventions as :mod:`repro.workloads.parsec` and are kept
in a separate catalog so the paper's benchmark set stays exact.

========== ==== ==============================================================
preset     kind distinguishing regime
========== ==== ==============================================================
streamcluster DP the most memory-bound preset: frequency barely helps, so
               the efficient states run wide-and-slow.
canneal    DP   memory-bound with heavy per-unit variation (annealing
               temperature schedule): stresses the adaptation loop.
x264       PIPE a 3-stage encode pipeline with strongly uneven stage widths,
               the case the stage-aware scheduler exists for.
========== ==== ==============================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.workloads.base import WorkloadModel, WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.parsec import _big_core_speed, _unit_work_for
from repro.workloads.phases import (
    NoisyProfile,
    SinusoidProfile,
    StepProfile,
)
from repro.workloads.pipeline import PipelineWorkload, StageSpec

_STREAMCLUSTER = WorkloadTraits(
    name="streamcluster",
    big_little_ratio=1.25,
    mem_intensity=0.55,
    activity_factor=0.70,
)

_CANNEAL = WorkloadTraits(
    name="canneal",
    big_little_ratio=1.35,
    mem_intensity=0.45,
    activity_factor=0.75,
)

_X264 = WorkloadTraits(
    name="x264",
    big_little_ratio=1.8,
    mem_intensity=0.15,
    activity_factor=0.9,
)


def _streamcluster(n_units: int, n_threads: int) -> WorkloadModel:
    unit_work = _unit_work_for(_STREAMCLUSTER, baseline_hps=1.5)
    profile = NoisyProfile(
        SinusoidProfile(
            base_work=unit_work,
            amplitude=0.1 * unit_work,
            period_units=60,
        ),
        sigma=0.05,
    )
    return DataParallelWorkload(_STREAMCLUSTER, n_threads, profile, n_units)


def _canneal(n_units: int, n_threads: int) -> WorkloadModel:
    unit_work = _unit_work_for(_CANNEAL, baseline_hps=1.8)
    # Simulated-annealing temperature schedule: hot early phases move a
    # lot (expensive), late phases settle (cheap).
    profile = NoisyProfile(
        StepProfile(
            segments=(
                (max(1, n_units * 30 // 100), unit_work * 1.6),
                (max(1, n_units * 30 // 100), unit_work * 1.1),
                (max(1, n_units * 40 // 100), unit_work * 0.6),
            )
        ),
        sigma=0.10,
    )
    return DataParallelWorkload(_CANNEAL, n_threads, profile, n_units)


def _x264(n_units: int, n_threads: int) -> WorkloadModel:
    if n_threads < 2:
        raise ConfigurationError("x264 needs -n >= 2")
    # Read(1) → encode(2n−2, heavy) → entropy/write(n?) — deliberately
    # uneven stage widths so ID-interleaving misallocates big cores.
    scale = _big_core_speed(_X264) / (1.5 * 2.0)
    stages = (
        StageSpec("read", 1, 0.10 * scale),
        StageSpec("encode", 2 * n_threads - 2, 1.50 * scale),
        StageSpec("entropy", max(1, n_threads // 2), 0.40 * scale),
    )
    return PipelineWorkload(_X264, stages, n_items=n_units)


_EXTRA_FACTORIES: Dict[str, Callable[[int, int], WorkloadModel]] = {
    "streamcluster": _streamcluster,
    "canneal": _canneal,
    "x264": _x264,
}

#: Extra preset names.
EXTRA_BENCHMARKS: Tuple[str, ...] = tuple(_EXTRA_FACTORIES)

_DEFAULT_UNITS = {"streamcluster": 250, "canneal": 200, "x264": 400}


def make_extra_benchmark(
    name: str,
    n_units: Optional[int] = None,
    n_threads: int = 8,
) -> WorkloadModel:
    """Instantiate one of the extra presets."""
    key = name.lower()
    if key not in _EXTRA_FACTORIES:
        raise ConfigurationError(
            f"unknown extra benchmark {name!r}; valid: {sorted(_EXTRA_FACTORIES)}"
        )
    units = n_units if n_units is not None else _DEFAULT_UNITS[key]
    if units < 1:
        raise ConfigurationError("n_units must be positive")
    return _EXTRA_FACTORIES[key](units, n_threads)
