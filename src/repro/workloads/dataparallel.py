"""Barrier-style data-parallel workload model.

This models the dominant PARSEC pattern (blackscholes, bodytrack,
facesim, fluidanimate, swaptions): each work unit is split equally over
the ``T`` worker threads, and the unit — and its heartbeat — completes
when the *slowest* thread finishes its share (the paper's
``t_f = max(t_B, t_L)``, Section 3.1.1).  Threads that finish early wait
at the barrier, which lowers their utilization exactly the way the
HARS power estimator's ``U_B,U = t_B / t_F`` term assumes.

An optional *serial phase* runs before the parallel units: only thread 0
executes and no heartbeats are emitted.  This reproduces blackscholes'
input-reading phase, which drives the case-6 anomaly in the MP-HARS
evaluation (Section 5.2.2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError, SimulationError
from repro.workloads.base import AdvanceResult, WorkloadModel, WorkloadTraits
from repro.workloads.phases import WorkProfile

#: Completion slack: a share below this many work units counts as done.
_EPSILON = 1e-9


class DataParallelWorkload(WorkloadModel):
    """Equal-split, barrier-per-unit data-parallel application."""

    def __init__(
        self,
        traits: WorkloadTraits,
        n_threads: int,
        profile: WorkProfile,
        n_units: int,
        serial_work: float = 0.0,
    ):
        super().__init__(traits, n_threads)
        if n_units < 1:
            raise ConfigurationError(f"{traits.name}: need at least one unit")
        if serial_work < 0:
            raise ConfigurationError(f"{traits.name}: negative serial work")
        self.profile = profile
        self.n_units = n_units
        self.serial_work = serial_work
        self.reset()

    def reset(self, seed: int = 0) -> None:
        self._seed = seed
        self._unit_index = 0
        self._serial_remaining = self.serial_work
        self._shares: List[float] = []
        self._done = False
        if self.serial_work == 0:
            self._load_unit()

    def _load_unit(self) -> None:
        """Split the next work unit equally across threads."""
        work = self.profile.work(self._unit_index, self._seed)
        share = work / self.n_threads
        self._shares = [share] * self.n_threads

    # -- WorkloadModel interface -------------------------------------------

    def wants_cpu(self, thread_index: int) -> bool:
        if not 0 <= thread_index < self.n_threads:
            raise SimulationError(
                f"{self.name}: thread index {thread_index} out of range"
            )
        if self._done:
            return False
        if self._serial_remaining > _EPSILON:
            return thread_index == 0
        return self._shares[thread_index] > _EPSILON

    def advance(self, grants: Dict[int, float]) -> AdvanceResult:
        if self._done:
            return AdvanceResult(consumed={}, done=True)
        consumed = {i: 0.0 for i in grants}
        remaining_grant = dict(grants)
        heartbeats = 0
        tags: List[str] = []

        # Serial phase: only thread 0 makes progress, no heartbeats.
        if self._serial_remaining > _EPSILON:
            grant0 = remaining_grant.get(0, 0.0)
            used = min(grant0, self._serial_remaining)
            self._serial_remaining -= used
            consumed[0] = consumed.get(0, 0.0) + used
            remaining_grant[0] = grant0 - used
            if self._serial_remaining > _EPSILON:
                return AdvanceResult(consumed=consumed)
            self._load_unit()

        # Parallel units: loop because a large grant may complete several
        # units within one tick.
        while True:
            progressed = False
            for i, grant in remaining_grant.items():
                if grant <= _EPSILON or self._shares[i] <= _EPSILON:
                    continue
                used = min(grant, self._shares[i])
                self._shares[i] -= used
                remaining_grant[i] = grant - used
                consumed[i] += used
                progressed = True
            if all(share <= _EPSILON for share in self._shares):
                heartbeats += 1
                tags.append("parallel")
                self._unit_index += 1
                if self._unit_index >= self.n_units:
                    self._done = True
                    break
                self._load_unit()
                continue
            if not progressed:
                break

        return AdvanceResult(
            consumed=consumed,
            heartbeats=heartbeats,
            heartbeat_tags=tuple(tags),
            done=self._done,
        )

    def is_done(self) -> bool:
        return self._done

    def total_heartbeats(self) -> int:
        return self.n_units

    # -- introspection (tests, estimator validation) ------------------------

    @property
    def units_completed(self) -> int:
        """How many work units (heartbeats) have completed so far."""
        return self._unit_index

    @property
    def in_serial_phase(self) -> bool:
        """Whether the model is still in the heartbeat-free serial phase."""
        return self._serial_remaining > _EPSILON
