"""Power-profiling microbenchmark.

The paper fits its power estimator against data "collected by the
microbenchmark, which stresses the cores and memory with running tasks"
and "can configure the number of cores, frequency level, and CPU
utilization" (Section 3.1.2).  This module provides both faces of that
tool:

* :class:`MicrobenchWorkload` — a duty-cycled spin workload that can run
  under the simulation engine (integration tests use it), and
* :func:`profile_power` — the profiling sweep itself: it drives the
  ground-truth power model through the configured operating points and
  records what the power *sensor* reports, producing the
  ``(C_used · U, watts)`` sample set the linear regression is fitted on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.platform.cluster import ClusterSpec
from repro.platform.machine import Machine
from repro.platform.power import CoreActivity, PowerModel
from repro.platform.sensor import PowerSensor
from repro.platform.spec import PlatformSpec
from repro.workloads.base import AdvanceResult, WorkloadModel, WorkloadTraits

#: Utilization levels the profiling sweep visits.
DEFAULT_UTILIZATIONS: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)

#: Seconds of sensor data collected per operating point.
DEFAULT_DWELL_S = 3.0


class MicrobenchWorkload(WorkloadModel):
    """Endless duty-cycled spin loop with a configurable utilization.

    Each thread consumes ``duty`` of whatever capacity it is granted and
    idles the rest, so a thread pinned alone on a core produces exactly
    ``duty`` core utilization.  It emits no heartbeats and never finishes
    on its own; runs are bounded by simulation time.
    """

    def __init__(self, n_threads: int, duty: float = 1.0):
        if not 0.0 < duty <= 1.0:
            raise ConfigurationError(f"duty {duty} not in (0, 1]")
        traits = WorkloadTraits(
            name="microbench", big_little_ratio=1.5, activity_factor=1.0
        )
        super().__init__(traits, n_threads)
        self.duty = duty
        self.reset()

    def reset(self, seed: int = 0) -> None:
        self._work_done = 0.0

    def wants_cpu(self, thread_index: int) -> bool:
        if not 0 <= thread_index < self.n_threads:
            raise ConfigurationError(f"thread index {thread_index} out of range")
        return True

    def advance(self, grants: Dict[int, float]) -> AdvanceResult:
        consumed = {i: g * self.duty for i, g in grants.items()}
        self._work_done += sum(consumed.values())
        return AdvanceResult(consumed=consumed)

    def is_done(self) -> bool:
        return False

    def total_heartbeats(self) -> int:
        return 0

    @property
    def work_done(self) -> float:
        """Total work executed (tests check duty-cycle accounting)."""
        return self._work_done


@dataclass(frozen=True)
class ProfilePoint:
    """One profiled operating point of one cluster."""

    cluster: str
    freq_mhz: int
    cores_used: int
    utilization: float
    watts: float  # sensor-reported cluster power


def profile_power(
    spec: PlatformSpec,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    dwell_s: float = DEFAULT_DWELL_S,
    tick_s: float = 0.01,
) -> List[ProfilePoint]:
    """Run the profiling sweep and return the sensor-observed samples.

    For every cluster, every DVFS operating point, every used-core count
    ``1..n`` and every utilization level, the ground-truth power model is
    observed through a :class:`PowerSensor` for ``dwell_s`` seconds.  The
    *other* cluster idles at its minimum frequency during the run, and its
    idle draw is not attributed to the cluster under test — matching how
    the paper isolates per-cluster rails with the on-board sensors.
    """
    if dwell_s <= 0 or tick_s <= 0:
        raise ConfigurationError("dwell and tick must be positive")
    model = PowerModel(spec)
    points: List[ProfilePoint] = []
    for cluster in spec.clusters:
        for freq in cluster.frequencies_mhz:
            for cores_used in range(1, cluster.n_cores + 1):
                for util in utilizations:
                    if not 0 < util <= 1:
                        raise ConfigurationError(f"utilization {util} not in (0,1]")
                    watts = _observe_point(
                        spec, model, cluster, freq, cores_used, util, dwell_s, tick_s
                    )
                    points.append(
                        ProfilePoint(
                            cluster=cluster.name,
                            freq_mhz=freq,
                            cores_used=cores_used,
                            utilization=util,
                            watts=watts,
                        )
                    )
    return points


def _observe_point(
    spec: PlatformSpec,
    model: PowerModel,
    cluster: ClusterSpec,
    freq_mhz: int,
    cores_used: int,
    utilization: float,
    dwell_s: float,
    tick_s: float,
) -> float:
    """Sensor-average cluster power at one microbenchmark setting."""
    machine = Machine(spec)
    for other in spec.clusters:
        machine.set_freq_mhz(other.name, other.min_freq_mhz)
    machine.set_freq_mhz(cluster.name, freq_mhz)
    activities = {
        core_id: CoreActivity(utilization=utilization, activity_factor=1.0)
        for core_id in cluster.core_ids[:cores_used]
    }
    sensor = PowerSensor()
    elapsed = 0.0
    while elapsed < dwell_s:
        sensor.record(tick_s, model.platform_power(machine, activities))
        elapsed += tick_s
    # best_average_w degrades to the integrated average if every sample
    # in the dwell was dropped by a faulty sensor.
    return sensor.best_average_w(cluster.name)
