"""PARSEC-like synthetic benchmark presets.

The paper evaluates HARS on six PARSEC benchmarks.  Each preset below is
a synthetic model carrying the properties the paper's findings depend on:

==============  ====  =====================================================
benchmark       kind  distinguishing properties
==============  ====  =====================================================
blackscholes    DP    true big:little ratio **1.0** (the paper measures the
                      same speed on both core types — HARS's r0 = 1.5
                      assumption mispredicts it); heartbeat-free serial
                      input-reading phase (drives the case-6 anomaly);
                      otherwise perfectly regular.
bodytrack       DP    moderate step-phase variation (per-frame cost tracks
                      subject motion), mildly memory-bound.
facesim         DP    heavy per-unit variation, most memory-bound of the six.
ferret          PIPE  six-stage pipeline (serial in → 4 parallel middle
                      stages → serial out); throughput is capped by the
                      slowest stage, which the chunk scheduler can starve.
fluidanimate    DP    smooth sinusoidal frame-cost variation, memory-bound.
swaptions       DP    compute-dense and perfectly regular; widest true
                      big:little ratio.
==============  ====  =====================================================

Work-unit sizes are scaled so that the *baseline* (Linux GTS, all cores at
maximum frequency — where the eight CPU-hungry threads crowd onto the four
big cores) completes units at a few heartbeats per second, matching the
native-input heartbeat cadence of the paper's runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.workloads.base import WorkloadModel, WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.phases import (
    ConstantProfile,
    NoisyProfile,
    SinusoidProfile,
    StepProfile,
    WorkProfile,
)
from repro.workloads.pipeline import PipelineWorkload, StageSpec

#: Short benchmark codes as used in the paper's figures.
SHORT_CODES: Dict[str, str] = {
    "blackscholes": "BL",
    "bodytrack": "BO",
    "facesim": "FA",
    "ferret": "FE",
    "fluidanimate": "FL",
    "swaptions": "SW",
}

#: Frequency (MHz) of the big cluster at the baseline version.
_BIG_MAX_MHZ = 1600
_F0_MHZ = 1000
#: Big cores available to the GTS-scheduled baseline.
_BASELINE_BIG_CORES = 4


def _big_core_speed(traits: WorkloadTraits) -> float:
    """Per-core speed on a big core at max frequency (ground truth)."""
    scale = _BIG_MAX_MHZ / _F0_MHZ
    denominator = (1.0 - traits.mem_intensity) / scale + traits.mem_intensity
    return traits.unit_scale * traits.big_little_ratio / denominator


def _unit_work_for(traits: WorkloadTraits, baseline_hps: float) -> float:
    """Work per unit so the GTS baseline runs near ``baseline_hps``.

    Under the baseline every CPU-hungry thread migrates to the big
    cluster, so aggregate throughput is four big cores' worth and the
    barrier closes at ``4·S_B / W`` units per second.
    """
    if baseline_hps <= 0:
        raise ConfigurationError("baseline_hps must be positive")
    return _BASELINE_BIG_CORES * _big_core_speed(traits) / baseline_hps


@dataclass(frozen=True)
class BenchmarkInfo:
    """Catalog entry: traits plus run-shape defaults."""

    traits: WorkloadTraits
    kind: str  # "dataparallel" | "pipeline"
    default_units: int
    baseline_hps: float


def _blackscholes(n_units: int, n_threads: int) -> WorkloadModel:
    traits = _CATALOG["blackscholes"].traits
    unit_work = _unit_work_for(traits, _CATALOG["blackscholes"].baseline_hps)
    profile: WorkProfile = NoisyProfile(ConstantProfile(unit_work), sigma=0.02)
    # Serial input-reading phase: roughly 20 s on one max-frequency core,
    # long enough for a co-runner to adapt before the first heartbeat.
    serial_work = 20.0 * _big_core_speed(traits)
    return DataParallelWorkload(
        traits, n_threads, profile, n_units, serial_work=serial_work
    )


def _bodytrack(n_units: int, n_threads: int) -> WorkloadModel:
    info = _CATALOG["bodytrack"]
    unit_work = _unit_work_for(info.traits, info.baseline_hps)
    steps = StepProfile(
        segments=(
            (max(1, n_units * 25 // 100), unit_work * 1.00),
            (max(1, n_units * 20 // 100), unit_work * 1.35),
            (max(1, n_units * 30 // 100), unit_work * 0.80),
            (max(1, n_units * 25 // 100), unit_work * 1.15),
        )
    )
    return DataParallelWorkload(
        info.traits, n_threads, NoisyProfile(steps, sigma=0.08), n_units
    )


def _facesim(n_units: int, n_threads: int) -> WorkloadModel:
    info = _CATALOG["facesim"]
    unit_work = _unit_work_for(info.traits, info.baseline_hps)
    steps = StepProfile(
        segments=(
            (max(1, n_units * 20 // 100), unit_work * 0.70),
            (max(1, n_units * 30 // 100), unit_work * 1.40),
            (max(1, n_units * 30 // 100), unit_work * 0.90),
            (max(1, n_units * 20 // 100), unit_work * 1.25),
        )
    )
    return DataParallelWorkload(
        info.traits, n_threads, NoisyProfile(steps, sigma=0.12), n_units
    )


def _ferret(n_units: int, n_threads: int) -> WorkloadModel:
    """PARSEC ferret: serial input/output plus four parallel middle
    stages with ``n`` threads *each* (the PARSEC ``-n`` parameter), so
    ``-n 8`` runs 4·8 + 2 = 34 threads.

    Stage costs are scaled so that under the GTS baseline — all middle
    threads time-sharing the four big cores, each heavy stage holding a
    quarter of them — the segment/extract stages bound throughput at the
    catalogued baseline rate.
    """
    info = _CATALOG["ferret"]
    if n_threads < 1:
        raise ConfigurationError("ferret needs a positive -n parameter")
    # Under the baseline the segment stage owns n of the 4n hungry middle
    # threads → one big core's worth: rate = S_B / c_segment.
    scale = _big_core_speed(info.traits) / (1.2 * info.baseline_hps)
    stages = (
        StageSpec("input", 1, 0.10 * scale),
        StageSpec("segment", n_threads, 1.20 * scale),
        StageSpec("extract", n_threads, 1.20 * scale),
        StageSpec("index", n_threads, 0.60 * scale),
        StageSpec("rank", n_threads, 0.60 * scale),
        StageSpec("output", 1, 0.10 * scale),
    )
    return PipelineWorkload(info.traits, stages, n_items=n_units)


def _fluidanimate(n_units: int, n_threads: int) -> WorkloadModel:
    info = _CATALOG["fluidanimate"]
    unit_work = _unit_work_for(info.traits, info.baseline_hps)
    wave = SinusoidProfile(
        base_work=unit_work, amplitude=0.22 * unit_work, period_units=100
    )
    return DataParallelWorkload(
        info.traits, n_threads, NoisyProfile(wave, sigma=0.05), n_units
    )


def _swaptions(n_units: int, n_threads: int) -> WorkloadModel:
    info = _CATALOG["swaptions"]
    unit_work = _unit_work_for(info.traits, info.baseline_hps)
    return DataParallelWorkload(
        info.traits, n_threads, ConstantProfile(unit_work), n_units
    )


_CATALOG: Dict[str, BenchmarkInfo] = {
    "blackscholes": BenchmarkInfo(
        traits=WorkloadTraits(
            name="blackscholes",
            big_little_ratio=1.0,
            mem_intensity=0.05,
            activity_factor=0.95,
        ),
        kind="dataparallel",
        default_units=300,
        baseline_hps=3.0,
    ),
    "bodytrack": BenchmarkInfo(
        traits=WorkloadTraits(
            name="bodytrack",
            big_little_ratio=1.5,
            mem_intensity=0.25,
            activity_factor=0.85,
        ),
        kind="dataparallel",
        default_units=260,
        baseline_hps=2.0,
    ),
    "facesim": BenchmarkInfo(
        traits=WorkloadTraits(
            name="facesim",
            big_little_ratio=1.4,
            mem_intensity=0.35,
            activity_factor=0.80,
        ),
        kind="dataparallel",
        default_units=150,
        baseline_hps=1.2,
    ),
    "ferret": BenchmarkInfo(
        traits=WorkloadTraits(
            name="ferret",
            # Compute-dense pipeline stages benefit strongly from the
            # out-of-order big core: the true ratio exceeds HARS's
            # r0 = 1.5 assumption, so meeting the default target needs
            # cores from *both* clusters — the regime where the chunk
            # scheduler's stage imbalance bites (Section 5.1.2).
            big_little_ratio=2.0,
            mem_intensity=0.20,
            activity_factor=0.85,
        ),
        kind="pipeline",
        default_units=400,
        baseline_hps=2.5,
    ),
    "fluidanimate": BenchmarkInfo(
        traits=WorkloadTraits(
            name="fluidanimate",
            big_little_ratio=1.45,
            mem_intensity=0.30,
            activity_factor=0.80,
        ),
        kind="dataparallel",
        default_units=500,
        baseline_hps=2.0,
    ),
    "swaptions": BenchmarkInfo(
        traits=WorkloadTraits(
            name="swaptions",
            # Monte-Carlo inner loops with heavy ILP: the widest true
            # big:little gap of the six.  The little cluster alone cannot
            # reach the default target, forcing mixed-cluster states.
            big_little_ratio=1.9,
            mem_intensity=0.05,
            activity_factor=1.00,
        ),
        kind="dataparallel",
        default_units=300,
        baseline_hps=2.5,
    ),
}

_FACTORIES: Dict[str, Callable[[int, int], WorkloadModel]] = {
    "blackscholes": _blackscholes,
    "bodytrack": _bodytrack,
    "facesim": _facesim,
    "ferret": _ferret,
    "fluidanimate": _fluidanimate,
    "swaptions": _swaptions,
}

#: All benchmark names, in the paper's figure order.
BENCHMARKS: Tuple[str, ...] = tuple(_CATALOG)


def benchmark_info(name: str) -> BenchmarkInfo:
    """Catalog entry for a benchmark (raises on unknown names)."""
    key = resolve_name(name)
    return _CATALOG[key]


def resolve_name(name: str) -> str:
    """Accept either full names or the paper's two-letter codes."""
    lowered = name.lower()
    if lowered in _CATALOG:
        return lowered
    for full, code in SHORT_CODES.items():
        if name.upper() == code:
            return full
    raise ConfigurationError(
        f"unknown benchmark {name!r}; valid: {sorted(_CATALOG)} "
        f"or codes {sorted(SHORT_CODES.values())}"
    )


def make_benchmark(
    name: str,
    n_units: Optional[int] = None,
    n_threads: int = 8,
) -> WorkloadModel:
    """Instantiate a fresh benchmark model.

    ``n_units`` overrides the native-input heartbeat count (use small
    values in tests); ``n_threads`` is the PARSEC ``-n`` thread-count
    parameter (the paper sets it to the total core count, 8).
    """
    key = resolve_name(name)
    info = _CATALOG[key]
    units = info.default_units if n_units is None else n_units
    if units < 1:
        raise ConfigurationError("n_units must be positive")
    return _FACTORIES[key](units, n_threads)
