"""Per-unit work profiles: how much work each heartbeat interval carries.

PARSEC inputs are not uniform: bodytrack's per-frame cost tracks the
subject's motion, fluidanimate's per-frame cost follows the fluid state,
swaptions is embarrassingly regular.  A :class:`WorkProfile` maps a work
unit's index to its size (in work units), deterministically — noisy
profiles hash the unit index with the run seed so two runs with the same
seed replay identically regardless of tick size.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class WorkProfile(abc.ABC):
    """Maps unit index → work size (work units)."""

    @abc.abstractmethod
    def work(self, unit_index: int, seed: int = 0) -> float:
        """Size of work unit ``unit_index`` for run ``seed``."""

    def mean_work(self, n_units: int, seed: int = 0) -> float:
        """Average unit size over a run; used to scale targets."""
        if n_units < 1:
            raise ConfigurationError("n_units must be positive")
        return sum(self.work(i, seed) for i in range(n_units)) / n_units


@dataclass(frozen=True)
class ConstantProfile(WorkProfile):
    """Every unit costs the same (swaptions, blackscholes)."""

    unit_work: float

    def __post_init__(self) -> None:
        if self.unit_work <= 0:
            raise ConfigurationError("unit work must be positive")

    def work(self, unit_index: int, seed: int = 0) -> float:
        if unit_index < 0:
            raise ConfigurationError("negative unit index")
        return self.unit_work


@dataclass(frozen=True)
class StepProfile(WorkProfile):
    """Piecewise-constant phases: ``segments`` is ``((n_units, work), …)``.

    Indices past the last segment repeat the final work size.
    """

    segments: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("StepProfile needs at least one segment")
        for n_units, work in self.segments:
            if n_units <= 0 or work <= 0:
                raise ConfigurationError(f"invalid segment ({n_units}, {work})")

    def work(self, unit_index: int, seed: int = 0) -> float:
        if unit_index < 0:
            raise ConfigurationError("negative unit index")
        offset = 0
        for n_units, work in self.segments:
            if unit_index < offset + n_units:
                return work
            offset += n_units
        return self.segments[-1][1]


@dataclass(frozen=True)
class SinusoidProfile(WorkProfile):
    """Smooth periodic variation around a base size (fluidanimate)."""

    base_work: float
    amplitude: float
    period_units: int

    def __post_init__(self) -> None:
        if self.base_work <= 0:
            raise ConfigurationError("base work must be positive")
        if not 0 <= self.amplitude < self.base_work:
            raise ConfigurationError("amplitude must be in [0, base_work)")
        if self.period_units < 2:
            raise ConfigurationError("period must span at least 2 units")

    def work(self, unit_index: int, seed: int = 0) -> float:
        if unit_index < 0:
            raise ConfigurationError("negative unit index")
        phase = 2.0 * math.pi * unit_index / self.period_units
        return self.base_work + self.amplitude * math.sin(phase)


@dataclass(frozen=True)
class NoisyProfile(WorkProfile):
    """Multiplicative log-normal-ish jitter over an inner profile.

    Each unit's factor is drawn from a generator seeded with
    ``(seed, unit_index)`` so the profile is stateless and replayable.
    """

    inner: WorkProfile
    sigma: float

    def __post_init__(self) -> None:
        if not 0 <= self.sigma < 0.5:
            raise ConfigurationError("sigma must be in [0, 0.5)")

    def work(self, unit_index: int, seed: int = 0) -> float:
        if unit_index < 0:
            raise ConfigurationError("negative unit index")
        base = self.inner.work(unit_index, seed)
        if self.sigma == 0:
            return base
        rng = np.random.default_rng((seed & 0xFFFFFFFF, unit_index))
        factor = math.exp(self.sigma * float(rng.standard_normal()))
        return base * factor


@dataclass(frozen=True)
class TraceProfile(WorkProfile):
    """Replay recorded per-unit work sizes.

    Useful for trace-driven studies: record a real application's
    per-heartbeat work (e.g. frame decode times scaled by a calibrated
    core speed) and replay it deterministically.  Indices past the end
    of the trace wrap around, so a short trace can drive a long run.
    """

    sizes: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ConfigurationError("TraceProfile needs at least one size")
        if any(size <= 0 for size in self.sizes):
            raise ConfigurationError("trace sizes must be positive")

    def work(self, unit_index: int, seed: int = 0) -> float:
        if unit_index < 0:
            raise ConfigurationError("negative unit index")
        return self.sizes[unit_index % len(self.sizes)]


def record_profile(
    profile: WorkProfile, n_units: int, seed: int = 0
) -> TraceProfile:
    """Materialize any profile into a replayable trace."""
    if n_units < 1:
        raise ConfigurationError("n_units must be positive")
    return TraceProfile(
        sizes=tuple(profile.work(i, seed) for i in range(n_units))
    )


def describe_profile(profile: WorkProfile, n_units: int, seed: int = 0) -> dict:
    """Summary statistics for reports: mean, min, max, CoV."""
    sizes = [profile.work(i, seed) for i in range(n_units)]
    arr = np.asarray(sizes)
    mean = float(arr.mean())
    return {
        "mean": mean,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "cov": float(arr.std() / mean) if mean else 0.0,
    }
