"""Workload-model interface driven by the simulation engine.

A :class:`WorkloadModel` is the synthetic stand-in for one instrumented
PARSEC application.  Each simulation tick the engine grants every thread
a *work capacity* (how many work units that thread could complete this
tick on its assigned core, at the core's current frequency) and the model

* consumes capacity according to its parallel structure (barrier
  data-parallelism, pipeline stages, serial phases),
* reports per-thread *consumed* work back (which drives utilization,
  power, and the GTS load signal), and
* reports the heartbeats it emitted.

Ground-truth speed: a thread on a core of ``core_type`` at ``freq_mhz``
processes

    speed = base(cluster) · 1 / ((1 − mi)·f0/f + mi)

work units per second, where ``base(little) = unit_scale`` and
``base(big) = unit_scale · big_little_ratio``.  ``big_little_ratio`` is
the workload's *true* big:little ratio — the quantity HARS assumes to be
r0 = 1.5 and the paper measures to be 1.0 for blackscholes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.platform.cluster import BIG, LITTLE
from repro.platform.core_types import BASELINE_FREQ_MHZ, CoreTypeSpec


@dataclass(frozen=True)
class AdvanceResult:
    """What happened inside the model during one tick.

    ``consumed`` maps thread index → work units actually executed (never
    more than the grant).  ``heartbeats`` is the number of work-unit
    completions to emit, with ``heartbeat_tags`` carrying per-beat phase
    labels for traces.
    """

    consumed: Dict[int, float]
    heartbeats: int = 0
    heartbeat_tags: tuple = ()
    done: bool = False


@dataclass(frozen=True)
class WorkloadTraits:
    """Static per-workload parameters shared by all model kinds.

    Parameters
    ----------
    name:
        Benchmark name (``"bodytrack"``).
    unit_scale:
        Speed of one little core at ``f0`` for this workload, in work
        units per second; sets the absolute work scale.
    big_little_ratio:
        True per-core speed ratio r = S_B / S_L at equal frequency.
    mem_intensity:
        Memory-bound time fraction in [0, 1); damps frequency scaling.
    activity_factor:
        Switching-activity factor in (0, 1]; scales dynamic power.
    """

    name: str
    unit_scale: float = 1.0
    big_little_ratio: float = 1.5
    mem_intensity: float = 0.0
    activity_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.unit_scale <= 0:
            raise ConfigurationError(f"{self.name}: unit_scale must be positive")
        if self.big_little_ratio <= 0:
            raise ConfigurationError(f"{self.name}: ratio must be positive")
        if not 0.0 <= self.mem_intensity < 1.0:
            raise ConfigurationError(f"{self.name}: mem_intensity not in [0,1)")
        if not 0.0 < self.activity_factor <= 1.0:
            raise ConfigurationError(f"{self.name}: activity not in (0,1]")

    def thread_speed(
        self, cluster_name: str, core_type: CoreTypeSpec, freq_mhz: int
    ) -> float:
        """Work units per second of one thread running alone on a core."""
        if cluster_name == BIG:
            base = self.unit_scale * self.big_little_ratio
        elif cluster_name == LITTLE:
            base = self.unit_scale
        else:
            raise ConfigurationError(f"unknown cluster {cluster_name!r}")
        core_type.voltage_at(freq_mhz)  # validates the operating point
        scale = freq_mhz / BASELINE_FREQ_MHZ
        denominator = (1.0 - self.mem_intensity) / scale + self.mem_intensity
        return base / denominator


class WorkloadModel(abc.ABC):
    """Abstract synthetic application.

    Concrete models: :class:`repro.workloads.dataparallel.DataParallelWorkload`
    and :class:`repro.workloads.pipeline.PipelineWorkload`.
    """

    def __init__(self, traits: WorkloadTraits, n_threads: int):
        if n_threads < 1:
            raise ConfigurationError(f"{traits.name}: need at least one thread")
        self.traits = traits
        self.n_threads = n_threads

    @property
    def name(self) -> str:
        return self.traits.name

    @abc.abstractmethod
    def reset(self, seed: int = 0) -> None:
        """Return the model to its initial state (fresh run)."""

    @abc.abstractmethod
    def wants_cpu(self, thread_index: int) -> bool:
        """Whether the thread has work right now (drives GTS load)."""

    @abc.abstractmethod
    def advance(self, grants: Dict[int, float]) -> AdvanceResult:
        """Consume granted capacity; return consumption and heartbeats."""

    @abc.abstractmethod
    def is_done(self) -> bool:
        """Whether every work unit has been completed."""

    @abc.abstractmethod
    def total_heartbeats(self) -> int:
        """How many heartbeats a full run emits."""

    def thread_stage(self, thread_index: int) -> int:
        """Pipeline stage of a thread (0 for non-pipeline workloads)."""
        return 0

    def thread_speed(
        self, cluster_name: str, core_type: CoreTypeSpec, freq_mhz: int
    ) -> float:
        """Per-thread ground-truth speed; see :class:`WorkloadTraits`."""
        return self.traits.thread_speed(cluster_name, core_type, freq_mhz)
