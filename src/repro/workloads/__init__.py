"""Synthetic workload models (the PARSEC stand-ins and microbenchmark)."""

from repro.workloads.base import AdvanceResult, WorkloadModel, WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.extra import EXTRA_BENCHMARKS, make_extra_benchmark
from repro.workloads.microbench import (
    MicrobenchWorkload,
    ProfilePoint,
    profile_power,
)
from repro.workloads.parsec import (
    BENCHMARKS,
    SHORT_CODES,
    BenchmarkInfo,
    benchmark_info,
    make_benchmark,
    resolve_name,
)
from repro.workloads.phases import (
    ConstantProfile,
    NoisyProfile,
    SinusoidProfile,
    StepProfile,
    TraceProfile,
    WorkProfile,
    record_profile,
)
from repro.workloads.pipeline import PipelineWorkload, StageSpec

__all__ = [
    "AdvanceResult",
    "BENCHMARKS",
    "BenchmarkInfo",
    "ConstantProfile",
    "DataParallelWorkload",
    "EXTRA_BENCHMARKS",
    "MicrobenchWorkload",
    "make_extra_benchmark",
    "NoisyProfile",
    "PipelineWorkload",
    "ProfilePoint",
    "SHORT_CODES",
    "SinusoidProfile",
    "StageSpec",
    "StepProfile",
    "TraceProfile",
    "WorkProfile",
    "record_profile",
    "WorkloadModel",
    "WorkloadTraits",
    "benchmark_info",
    "make_benchmark",
    "profile_power",
    "resolve_name",
]
