"""Fault-model configuration.

HARS's observation and actuation channels can all lie on real hardware:
the INA231 power sensor drops or corrupts readings, heartbeat delivery
through the shared-memory segment stalls or jitters, and
``scaling_setspeed`` / ``sched_setaffinity`` writes fail transiently
under load.  A :class:`FaultConfig` gives every channel a configurable
failure rate; the seeded :class:`~repro.faults.injector.FaultInjector`
turns the rates into concrete, reproducible fault decisions.

With every rate at zero the configuration is *disabled*: the engine
skips the injector entirely and the whole stack is bit-identical to a
simulation built without a fault layer.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Sequence, Tuple

from repro.errors import ConfigurationError

#: The fault channels a config can enable, as reported on the bus.
FAULT_KINDS = (
    "sensor-dropout",
    "sensor-noise",
    "sensor-stuck",
    "thermal-ramp",
    "heartbeat-stall",
    "heartbeat-jitter",
    "dvfs",
    "affinity",
)

#: Application/controller lifecycle fault kinds (PR 3).  Underscored
#: names match the ``repro.supervision`` failure taxonomy.
LIFECYCLE_KINDS = (
    "app_crash",
    "app_hang",
    "app_runaway",
    "controller_restart",
)

_RATE_FIELDS = (
    "sensor_dropout_rate",
    "sensor_noise_rate",
    "sensor_stuck_rate",
    "thermal_ramp_rate",
    "heartbeat_stall_rate",
    "heartbeat_jitter_rate",
    "dvfs_failure_rate",
    "affinity_failure_rate",
)

_LIFECYCLE_RATE_FIELDS = (
    "app_crash_rate",
    "app_hang_rate",
    "app_runaway_rate",
    "controller_restart_rate",
)


@dataclass(frozen=True)
class LifecycleEvent:
    """One deterministically-scheduled lifecycle fault.

    ``target`` names the app to hit (``"*"`` picks the first live app at
    fire time; ignored for ``controller_restart``); the event fires once
    during the tick that covers ``at_s``.
    """

    kind: str
    at_s: float
    target: str = "*"

    def __post_init__(self) -> None:
        if self.kind not in LIFECYCLE_KINDS:
            raise ConfigurationError(
                f"unknown lifecycle fault kind {self.kind!r}; "
                f"valid: {LIFECYCLE_KINDS}"
            )
        if self.at_s < 0:
            raise ConfigurationError("lifecycle event time must be >= 0")


@dataclass(frozen=True)
class FaultConfig:
    """Failure rates and shapes for every injectable fault channel.

    Rates are per-event probabilities: per periodic power *sample* for
    the sensor channels, per emitted heartbeat for the heartbeat
    channels, and per attempted platform write for the actuation
    channels.
    """

    #: Seed of the injector's private RNG (independent of workload seeds).
    seed: int = 0

    # -- power sensor (INA231 read-out) ----------------------------------
    #: Probability a periodic sample is lost entirely.
    sensor_dropout_rate: float = 0.0
    #: Probability a sample is corrupted by multiplicative noise.
    sensor_noise_rate: float = 0.0
    #: Relative std-dev of the multiplicative noise (0.05 = ±5 %).
    sensor_noise_std: float = 0.05
    #: Probability a sample freezes the sensor at its current reading.
    sensor_stuck_rate: float = 0.0
    #: Length of a stuck-at episode, in samples (including the first).
    sensor_stuck_samples: int = 8
    #: Probability a sample starts a thermal-ramp episode: ambient heating
    #: adds a triangular power excursion (ramp up, peak, ramp back) to the
    #: board and total rails over the next ``thermal_ramp_samples``
    #: readings — the sustained-drift shape that exercises the guardrail
    #: thermal model, unlike the instantaneous noise/stuck faults.
    thermal_ramp_rate: float = 0.0
    #: Peak extra watts at the middle of a thermal-ramp episode.
    thermal_ramp_heat_w: float = 1.5
    #: Length of a thermal-ramp episode, in samples (including the first).
    thermal_ramp_samples: int = 16

    # -- heartbeat delivery ----------------------------------------------
    #: Probability a heartbeat's delivery to the runtime stalls.
    heartbeat_stall_rate: float = 0.0
    #: Stall length in engine ticks.
    heartbeat_stall_ticks: int = 50
    #: Probability a heartbeat's delivery jitters by a few ticks.
    heartbeat_jitter_rate: float = 0.0
    #: Maximum jitter in engine ticks (actual delay uniform in [1, max]).
    heartbeat_jitter_ticks: int = 3

    # -- actuation (DVFS writes, affinity calls) -------------------------
    #: Probability one ``scaling_setspeed`` write is lost.
    dvfs_failure_rate: float = 0.0
    #: Probability one affinity/cpuset call fails.
    affinity_failure_rate: float = 0.0

    # -- application / controller lifecycle ------------------------------
    #: Per-app, per-simulated-second hazard of an abrupt crash (the app
    #: stops mid-workload; ``AppFinished`` fires with work left undone).
    app_crash_rate: float = 0.0
    #: Per-app, per-simulated-second hazard of a hang (the app stops
    #: emitting heartbeats but never exits).
    app_hang_rate: float = 0.0
    #: Per-app, per-simulated-second hazard of a runaway episode (the
    #: app escapes its pinning and runs uncontrolled).
    app_runaway_rate: float = 0.0
    #: Speed multiplier a runaway app gains while uncontrolled.
    app_runaway_speed_factor: float = 3.0
    #: Per-simulated-second hazard of a controller crash+restart.
    controller_restart_rate: float = 0.0
    #: Deterministically-scheduled lifecycle events (tests/benchmarks
    #: pin failures to exact times with these; rates stay random).
    lifecycle_schedule: Tuple[LifecycleEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS + _LIFECYCLE_RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {rate!r}"
                )
        if self.sensor_noise_std < 0:
            raise ConfigurationError("sensor_noise_std must be >= 0")
        if self.thermal_ramp_heat_w < 0:
            raise ConfigurationError("thermal_ramp_heat_w must be >= 0")
        if self.app_runaway_speed_factor <= 1.0:
            raise ConfigurationError(
                "app_runaway_speed_factor must be > 1 (a runaway speeds up)"
            )
        for name in (
            "sensor_stuck_samples",
            "thermal_ramp_samples",
            "heartbeat_stall_ticks",
            "heartbeat_jitter_ticks",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")

    # -- enablement queries ----------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any channel has a non-zero failure rate."""
        return (
            any(getattr(self, name) > 0 for name in _RATE_FIELDS)
            or self.lifecycle_enabled
        )

    @property
    def lifecycle_enabled(self) -> bool:
        """Whether any lifecycle fault can fire (rate or schedule)."""
        return (
            any(getattr(self, name) > 0 for name in _LIFECYCLE_RATE_FIELDS)
            or bool(self.lifecycle_schedule)
        )

    @property
    def sensor_enabled(self) -> bool:
        return (
            self.sensor_dropout_rate > 0
            or self.sensor_noise_rate > 0
            or self.sensor_stuck_rate > 0
            or self.thermal_ramp_rate > 0
        )

    @property
    def heartbeat_enabled(self) -> bool:
        return self.heartbeat_stall_rate > 0 or self.heartbeat_jitter_rate > 0

    @property
    def actuation_enabled(self) -> bool:
        return self.dvfs_failure_rate > 0 or self.affinity_failure_rate > 0

    # -- presets ----------------------------------------------------------

    @classmethod
    def disabled(cls, seed: int = 0) -> "FaultConfig":
        """All rates zero: the stack behaves exactly as without faults."""
        return cls(seed=seed)

    @classmethod
    def defaults(cls, seed: int = 0) -> "FaultConfig":
        """The documented default fault rates.

        Modelled on the noise levels MARS / Hurry-up report for embedded
        observation channels: occasional sample loss and stuck episodes,
        ±5 % read-out noise, rare-but-long heartbeat stalls, frequent
        small delivery jitter, and transiently failing platform writes.
        A full HARS run under these rates must complete without an
        unhandled exception.
        """
        return cls(
            seed=seed,
            sensor_dropout_rate=0.02,
            sensor_noise_rate=0.05,
            sensor_noise_std=0.05,
            sensor_stuck_rate=0.005,
            sensor_stuck_samples=8,
            heartbeat_stall_rate=0.01,
            heartbeat_stall_ticks=50,
            heartbeat_jitter_rate=0.05,
            heartbeat_jitter_ticks=3,
            dvfs_failure_rate=0.05,
            affinity_failure_rate=0.02,
        )

    def with_lifecycle_schedule(
        self, schedule: Sequence[LifecycleEvent]
    ) -> "FaultConfig":
        """A copy carrying ``schedule`` as its lifecycle schedule."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values["lifecycle_schedule"] = tuple(schedule)
        return FaultConfig(**values)

    def scaled(self, factor: float) -> "FaultConfig":
        """A copy with every *rate* multiplied by ``factor`` (capped at 1).

        Shapes (noise std, episode lengths) are preserved — this is the
        knob the fault-tolerance benchmark sweeps.
        """
        if factor < 0:
            raise ConfigurationError("scale factor must be >= 0")
        updates = {
            name: min(1.0, getattr(self, name) * factor)
            for name in _RATE_FIELDS + _LIFECYCLE_RATE_FIELDS
        }
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(updates)
        return FaultConfig(**values)


def lane_crash_schedule(
    times_s: Sequence[float], apps: Sequence[str], seed: int = 0
) -> FaultConfig:
    """A fault layer that crashes every app in ``apps`` at each time.

    The fleet chaos compiler (:mod:`repro.fleet.chaos`) uses this to
    deliver *node* crashes through the per-simulation lifecycle
    machinery: one ``app_crash`` :class:`LifecycleEvent` per serving
    lane per crash time, all rates zero, so the node's engine publishes
    the same ``FaultInjected`` / ``AppFinished`` sequence a real abrupt
    exit would.  Times must be simulation-local and non-negative.
    """
    if not apps:
        raise ConfigurationError("lane_crash_schedule needs at least one app")
    events = []
    for at_s in sorted(times_s):
        if at_s < 0:
            raise ConfigurationError(
                f"crash time must be >= 0, got {at_s!r}"
            )
        for app in apps:
            events.append(LifecycleEvent("app_crash", at_s, target=app))
    return FaultConfig(seed=seed, lifecycle_schedule=tuple(events))
