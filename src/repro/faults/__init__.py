"""Fault injection and graceful degradation.

``repro.faults`` models lying observation and actuation channels — the
power sensor, heartbeat delivery, DVFS and affinity writes — with
configurable, seeded failure rates, so the runtime managers can be
exercised (and hardened) against the conditions a production deployment
actually sees.  See :mod:`repro.faults.config` for the knobs and
:mod:`repro.faults.injector` for the mechanics.
"""

from repro.faults.config import (
    FAULT_KINDS,
    LIFECYCLE_KINDS,
    FaultConfig,
    LifecycleEvent,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "FAULT_KINDS",
    "LIFECYCLE_KINDS",
    "FaultConfig",
    "FaultInjector",
    "LifecycleEvent",
]
