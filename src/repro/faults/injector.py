"""Seeded, composable fault injector.

One :class:`FaultInjector` serves every fault site of a simulation:

* the power sensor installs :meth:`filter_power` as its sample hook
  (dropout / noise / stuck-at on the periodic samples; the exact
  integrated energy — the simulation's ground truth — is never touched);
* the engine asks :meth:`heartbeat_fault` whether a heartbeat's bus
  delivery stalls or jitters;
* the actuation façade rolls :meth:`dvfs_write_ok` /
  :meth:`affinity_write_ok` per platform write and drives its
  retry-with-backoff policy off the answers.

All randomness comes from one private :class:`random.Random` seeded by
the config, and draws happen in a fixed order per call site, so a fault
schedule is exactly reproducible for a given config and workload.

Every degradation is announced on the kernel bus:
:class:`~repro.kernel.bus.FaultInjected` when a channel goes bad and
:class:`~repro.kernel.bus.FaultRecovered` when it produces a good
result again, so traces capture the full fault history.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.faults.config import FaultConfig
from repro.kernel.bus import EventBus, FaultInjected, FaultRecovered

#: Seed offset of the lifecycle RNG stream.  Lifecycle faults draw from
#: their own generator so enabling them never perturbs the established
#: sensor/heartbeat/actuation fault schedules of the same seed.
_LIFECYCLE_SEED_OFFSET = 0x9E3779B9

#: Seed offset of the thermal-ramp RNG stream, separate for the same
#: reason: enabling the ramp must not shift the per-sample dropout /
#: stuck / noise draws of an established seed.
_THERMAL_SEED_OFFSET = 0x85EBCA6B


class FaultInjector:
    """Turns a :class:`FaultConfig` into concrete fault decisions."""

    def __init__(self, config: FaultConfig, bus: EventBus):
        self.config = config
        self.bus = bus
        self.rng = random.Random(config.seed)
        self.lifecycle_rng = random.Random(config.seed + _LIFECYCLE_SEED_OFFSET)
        self.thermal_rng = random.Random(config.seed + _THERMAL_SEED_OFFSET)
        #: Injection / recovery counts per fault kind.
        self.injected: Dict[str, int] = {}
        self.recovered: Dict[str, int] = {}
        self._stuck_watts: Optional[Dict[str, float]] = None
        self._stuck_left = 0
        self._dropout_pending = False
        self._noise_pending = False
        self._ramp_total = 0
        self._ramp_left = 0
        self._fired_schedule: Set[int] = set()

    # -- bookkeeping + bus announcements ----------------------------------

    def note_injected(
        self, kind: str, target: str, time_s: float, detail: str = ""
    ) -> None:
        """Count an injected fault and announce it on the bus."""
        self.injected[kind] = self.injected.get(kind, 0) + 1
        self.bus.publish(
            FaultInjected(kind=kind, target=target, time_s=time_s, detail=detail)
        )

    def note_recovered(
        self, kind: str, target: str, time_s: float, detail: str = ""
    ) -> None:
        """Count a recovery and announce it on the bus."""
        self.recovered[kind] = self.recovered.get(kind, 0) + 1
        self.bus.publish(
            FaultRecovered(
                kind=kind, target=target, time_s=time_s, detail=detail
            )
        )

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_recovered(self) -> int:
        return sum(self.recovered.values())

    def summary(self) -> Dict[str, Tuple[int, int]]:
        """``kind -> (injected, recovered)`` for reports."""
        kinds = sorted(set(self.injected) | set(self.recovered))
        return {
            kind: (self.injected.get(kind, 0), self.recovered.get(kind, 0))
            for kind in kinds
        }

    # -- power sensor ------------------------------------------------------

    def filter_power(
        self, time_s: float, watts: Mapping[str, float]
    ) -> Optional[Mapping[str, float]]:
        """Corrupt one periodic power sample (the sensor's fault hook).

        Returns the watts the sensor reader *observes*: ``None`` for a
        dropped sample, a frozen copy during a stuck-at episode, a
        noise-scaled reading, or the true reading when no fault fires.
        An active thermal-ramp episode then adds its excursion on top of
        whatever the sample faults produced (except a full dropout).
        """
        observed = self._sample_fault(time_s, watts)
        cfg = self.config
        if (
            self._ramp_left == 0
            and cfg.thermal_ramp_rate
            and self.thermal_rng.random() < cfg.thermal_ramp_rate
        ):
            self._ramp_total = cfg.thermal_ramp_samples
            self._ramp_left = cfg.thermal_ramp_samples
            self.note_injected(
                "thermal-ramp",
                "power",
                time_s,
                f"{cfg.thermal_ramp_samples} samples, "
                f"peak +{cfg.thermal_ramp_heat_w}W",
            )
        if self._ramp_left > 0:
            # Triangular excursion: 0 at the episode edges, peak heat in
            # the middle.  Only the board and total rails heat up, so the
            # per-cluster big + little + board = total additivity holds.
            pos = self._ramp_total - self._ramp_left
            if self._ramp_total > 1:
                frac = 1.0 - abs(2.0 * pos / (self._ramp_total - 1) - 1.0)
            else:
                frac = 1.0
            extra = cfg.thermal_ramp_heat_w * frac
            self._ramp_left -= 1
            if observed is not None and extra > 0:
                heated = dict(observed)
                for channel in ("board", "total"):
                    if channel in heated:
                        heated[channel] += extra
                observed = heated
            if self._ramp_left == 0:
                self.note_recovered("thermal-ramp", "power", time_s)
        return observed

    def _sample_fault(
        self, time_s: float, watts: Mapping[str, float]
    ) -> Optional[Mapping[str, float]]:
        """The per-sample dropout / stuck / noise fault chain."""
        cfg = self.config
        if self._stuck_left > 0:
            self._stuck_left -= 1
            frozen = dict(self._stuck_watts or {})
            if self._stuck_left == 0:
                self._stuck_watts = None
                self.note_recovered("sensor-stuck", "power", time_s)
            return frozen
        if cfg.sensor_dropout_rate and self.rng.random() < cfg.sensor_dropout_rate:
            self._dropout_pending = True
            self.note_injected("sensor-dropout", "power", time_s)
            return None
        if self._dropout_pending:
            self._dropout_pending = False
            self.note_recovered("sensor-dropout", "power", time_s)
        if cfg.sensor_stuck_rate and self.rng.random() < cfg.sensor_stuck_rate:
            self._stuck_watts = dict(watts)
            self._stuck_left = cfg.sensor_stuck_samples - 1
            self.note_injected(
                "sensor-stuck",
                "power",
                time_s,
                f"{cfg.sensor_stuck_samples} samples",
            )
            if self._stuck_left == 0:
                self._stuck_watts = None
                self.note_recovered("sensor-stuck", "power", time_s)
            return dict(watts)
        if cfg.sensor_noise_rate and self.rng.random() < cfg.sensor_noise_rate:
            factor = max(0.0, 1.0 + self.rng.gauss(0.0, cfg.sensor_noise_std))
            self._noise_pending = True
            self.note_injected("sensor-noise", "power", time_s, f"x{factor:.4f}")
            return {channel: w * factor for channel, w in watts.items()}
        if self._noise_pending:
            self._noise_pending = False
            self.note_recovered("sensor-noise", "power", time_s)
        return watts

    # -- heartbeat delivery ------------------------------------------------

    def heartbeat_fault(
        self, app_name: str, time_s: float
    ) -> Optional[Tuple[str, int]]:
        """Whether this heartbeat's delivery is delayed.

        Returns ``(kind, delay_ticks)`` for a stall or jitter fault, or
        ``None`` for immediate delivery.  The *engine* announces both the
        injection (it knows the heartbeat index) and the recovery when
        the delayed heartbeat finally reaches the bus; this method only
        rolls the dice.
        """
        cfg = self.config
        if (
            cfg.heartbeat_stall_rate
            and self.rng.random() < cfg.heartbeat_stall_rate
        ):
            return ("heartbeat-stall", cfg.heartbeat_stall_ticks)
        if (
            cfg.heartbeat_jitter_rate
            and self.rng.random() < cfg.heartbeat_jitter_rate
        ):
            return ("heartbeat-jitter", self.rng.randint(1, cfg.heartbeat_jitter_ticks))
        return None

    # -- application / controller lifecycle --------------------------------

    def lifecycle_events(
        self, now_s: float, dt: float, candidates: Sequence[str]
    ) -> List[Tuple[str, str]]:
        """Lifecycle faults firing during the tick ``[now, now + dt)``.

        Returns ``(kind, target)`` pairs: scheduled events first (in
        declaration order, each at most once), then rate-driven rolls —
        one per live app per app channel, one for the controller channel
        — in a fixed order so the schedule is reproducible.  The engine
        resolves ``"*"`` targets and applies the faults; this method
        only decides.
        """
        cfg = self.config
        events: List[Tuple[str, str]] = []
        for index, event in enumerate(cfg.lifecycle_schedule):
            if index in self._fired_schedule:
                continue
            if event.at_s < now_s + dt - 1e-12:
                self._fired_schedule.add(index)
                events.append((event.kind, event.target))
        rng = self.lifecycle_rng
        for kind, rate in (
            ("app_crash", cfg.app_crash_rate),
            ("app_hang", cfg.app_hang_rate),
            ("app_runaway", cfg.app_runaway_rate),
        ):
            if not rate:
                continue
            p = min(1.0, rate * dt)
            for name in candidates:
                if rng.random() < p:
                    events.append((kind, name))
        if cfg.controller_restart_rate:
            p = min(1.0, cfg.controller_restart_rate * dt)
            if rng.random() < p:
                events.append(("controller_restart", "*"))
        return events

    # -- actuation ---------------------------------------------------------

    def actuation_enabled(self, kind: str) -> bool:
        """Whether the ``dvfs`` or ``affinity`` channel can fail at all."""
        if kind == "dvfs":
            return self.config.dvfs_failure_rate > 0
        if kind == "affinity":
            return self.config.affinity_failure_rate > 0
        return False

    def dvfs_write_ok(self, cluster_name: str, freq_mhz: int) -> bool:
        """Roll one DVFS write (the platform controller's write filter)."""
        rate = self.config.dvfs_failure_rate
        return not (rate and self.rng.random() < rate)

    def affinity_write_ok(self, app_name: str) -> bool:
        """Roll one affinity/cpuset call."""
        rate = self.config.affinity_failure_rate
        return not (rate and self.rng.random() < rate)
