"""Small unit-handling helpers shared across the library.

The platform model works in the following canonical units:

* frequency  — megahertz (``int``), matching the cpufreq sysfs convention
* time       — seconds (``float``) of *simulated* time
* power      — watts (``float``)
* energy     — joules (``float``)
* work       — abstract "work units"; a core's speed is work units / second

These helpers keep conversions explicit and provide a couple of numeric
utilities (geometric mean, clamping) used throughout the experiments.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

#: Number of megahertz in a gigahertz, for readable conversions.
MHZ_PER_GHZ = 1000


def ghz(value: float) -> int:
    """Convert gigahertz to the canonical integer megahertz."""
    return int(round(value * MHZ_PER_GHZ))


def mhz_to_ghz(value_mhz: int) -> float:
    """Convert megahertz to gigahertz (for display only)."""
    return value_mhz / MHZ_PER_GHZ


def usec(value: float) -> float:
    """Convert microseconds to canonical seconds."""
    return value * 1e-6


def msec(value: float) -> float:
    """Convert milliseconds to canonical seconds."""
    return value * 1e-3


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ConfigurationError(f"clamp bounds reversed: [{low}, {high}]")
    return max(low, min(high, value))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports geometric means across benchmarks (the "GM" bar in
    Figures 5.1, 5.2, and 5.4).
    """
    if not values:
        raise ConfigurationError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty iterable."""
    items = list(values)
    if not items:
        raise ConfigurationError("mean of empty sequence")
    return sum(items) / len(items)


def frange(start: float, stop: float, step: float) -> Iterable[float]:
    """Float range that is robust to accumulation error."""
    if step <= 0:
        raise ConfigurationError("frange requires a positive step")
    n = int(math.floor((stop - start) / step + 1e-9)) + 1
    for i in range(max(0, n)):
        yield start + i * step
