"""Misprediction watchdog: degrade to safe mode when the models drift.

Every executed plan carries the estimates that justified it — the
Algorithm 2 winner's predicted heartbeat rate and power.  The watchdog
compares them against what actually happened one adaptation period
later: the observed boundary rate, and the sensor's exactly-integrated
average power over the interval.  Both residuals are *signed* relative
errors ``(observed − predicted) / predicted``, so telemetry can tell a
consistently optimistic model (negative rate residuals) from a noisy
one.

Past a mean-absolute-residual threshold over a sliding window the
watchdog declares the estimators untrustworthy and trips **safe mode**:
the planner is restricted to incremental HARS-I moves (±1 neighbour,
d = 1), whose outcome depends far less on model accuracy — a measured
step-and-check discipline — until the residuals of the *applied* states
recover below the release threshold.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple


class _AppWatchdog:
    """Per-app residual window and pending prediction."""

    __slots__ = ("residuals", "pending", "safe_mode")

    def __init__(self, window: int):
        #: Recent signed relative residuals, rate and power interleaved
        #: in arrival order.
        self.residuals: Deque[float] = deque(maxlen=window)
        #: ``(est_rate, est_power, time_s, energy_j)`` of the last
        #: executed plan, awaiting its follow-up observation.
        self.pending: Optional[Tuple[float, float, float, float]] = None
        self.safe_mode = False


class MispredictionWatchdog:
    """Signed residual tracking with a safe-mode state machine."""

    def __init__(
        self,
        window: int,
        trip_threshold: float,
        recover_threshold: float,
        track_power: bool = True,
    ):
        self.window = window
        self.trip_threshold = trip_threshold
        self.recover_threshold = recover_threshold
        #: Power residuals only make sense when the sensor's board rail
        #: is attributable to one app; multi-app layers switch this off
        #: and the watchdog judges rate residuals alone.
        self.track_power = track_power
        self._apps: Dict[str, _AppWatchdog] = {}
        #: Safe-mode entries (→ ``GuardrailTripped``).
        self.trips = 0
        #: Boundary cycles planned under safe mode.
        self.safe_cycles = 0
        #: Every signed residual ever recorded (telemetry histogram).
        self.all_residuals: List[float] = []

    def _of(self, app_name: str) -> _AppWatchdog:
        data = self._apps.get(app_name)
        if data is None:
            data = self._apps[app_name] = _AppWatchdog(self.window)
        return data

    def in_safe_mode(self, app_name: str) -> bool:
        data = self._apps.get(app_name)
        return data is not None and data.safe_mode

    def note_prediction(
        self,
        app_name: str,
        est_rate: float,
        est_power: float,
        now_s: float,
        energy_j: float,
    ) -> None:
        """Remember an executed plan's estimates for later comparison.

        Overwrites any unresolved prediction: residuals are measured
        against the *latest applied* state, the only one the next
        observation can vouch for.
        """
        self._of(app_name).pending = (est_rate, est_power, now_s, energy_j)

    def note_observation(
        self,
        app_name: str,
        observed_rate: float,
        now_s: float,
        energy_j: float,
    ) -> str:
        """Resolve a pending prediction; returns ``"trip"``/``"release"``/``""``."""
        data = self._apps.get(app_name)
        if data is None or data.pending is None:
            return ""
        est_rate, est_power, pred_time_s, pred_energy_j = data.pending
        data.pending = None
        if est_rate > 0 and observed_rate > 0:
            self._record(data, (observed_rate - est_rate) / est_rate)
        if self.track_power and est_power > 0 and now_s > pred_time_s:
            observed_power = (energy_j - pred_energy_j) / (
                now_s - pred_time_s
            )
            if observed_power > 0:
                self._record(data, (observed_power - est_power) / est_power)
        return self._judge(data)

    def _record(self, data: _AppWatchdog, residual: float) -> None:
        data.residuals.append(residual)
        self.all_residuals.append(residual)

    def _judge(self, data: _AppWatchdog) -> str:
        if len(data.residuals) < self.window:
            return ""
        mean_abs = sum(abs(r) for r in data.residuals) / len(data.residuals)
        if not data.safe_mode and mean_abs > self.trip_threshold:
            data.safe_mode = True
            self.trips += 1
            return "trip"
        if data.safe_mode and mean_abs < self.recover_threshold:
            data.safe_mode = False
            return "release"
        return ""

    def note_safe_cycle(self) -> None:
        self.safe_cycles += 1

    def forget(self, app_name: str) -> None:
        """Drop per-app state (the app finished or was evicted)."""
        self._apps.pop(app_name, None)

    def reset(self) -> None:
        """Cold start: windows, pendings, and safe flags are volatile."""
        self._apps.clear()

    # -- checkpoint plumbing ----------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable residual windows and safe flags."""
        return {
            "trips": self.trips,
            "safe_cycles": self.safe_cycles,
            "apps": {
                name: {
                    "residuals": list(data.residuals),
                    "safe_mode": data.safe_mode,
                }
                for name, data in self._apps.items()
            },
        }

    def restore(self, body: Dict[str, object]) -> None:
        self.trips = int(body.get("trips", 0))
        self.safe_cycles = int(body.get("safe_cycles", 0))
        for name, entry in (body.get("apps") or {}).items():
            data = self._of(str(name))
            data.residuals.clear()
            for value in entry.get("residuals", ()):
                data.residuals.append(float(value))
            data.safe_mode = bool(entry.get("safe_mode", False))
