"""Guardrail configuration.

HARS trusts its offline-fitted linear estimators: nothing in
Algorithms 1–4 stops the search from admitting a state that blows a
power budget, ping-ponging between two neighbouring states every
adaptation period, or planning on a model that has drifted away from
the platform.  A :class:`GuardrailConfig` switches on up to three
independent protections (see :mod:`repro.guardrails.layer`):

* a **budget enforcer** — per-run (and per-app) power caps composed
  into the Algorithm 2 sweep as a guard filter plus a post-actuation
  sensor check with emergency down-throttle, optionally tightened by a
  modelled first-order thermal ramp;
* an **oscillation damper** — A↔B thrash detection over a sliding
  window of planned states with a hysteresis hold of the cheaper
  state;
* a **misprediction watchdog** — signed residual tracking between
  estimated and observed rate/power, degrading to incremental (HARS-I)
  safe-mode moves while the estimators are untrustworthy.

Everything defaults *off*: a default-constructed config has
``enabled == False`` and the runner attaches no layer at all, so the
run is bit-identical to one built before guardrails existed — the same
identity contract the fault, supervision, and telemetry layers honour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GuardrailConfig:
    """Which guardrails run and how aggressively they trip."""

    # -- budget enforcer ---------------------------------------------------
    #: Run-wide power cap in watts over the sensor's ``total`` rail, or
    #: ``None`` for no run cap.
    power_cap_w: Optional[float] = None
    #: Explicit per-app caps as ``(app_name, watts)`` pairs (MP-HARS).
    #: Apps without an entry share what remains of ``power_cap_w``
    #: equally; shares are recomputed when an app finishes, is
    #: quarantined, or is evicted.
    app_power_caps: Tuple[Tuple[str, float], ...] = ()
    #: The guard filter vetoes candidates whose *estimated* power
    #: exceeds ``margin × share``; headroom below 1.0 absorbs estimator
    #: optimism before the sensor check has to act.
    filter_margin: float = 0.95
    #: Each post-actuation budget trip multiplies the margin by this
    #: decay (down to :attr:`min_margin`), so a cap the estimator keeps
    #: underestimating is enforced progressively harder.
    trip_margin_decay: float = 0.85
    #: Floor of the adaptive filter margin.
    min_margin: float = 0.4
    #: A tripped throttle releases once observed power falls back under
    #: ``release_fraction × cap`` (hysteresis against re-trip chatter).
    release_fraction: float = 0.95

    # -- modelled thermal ramp --------------------------------------------
    #: Track a first-order thermal state alongside the budget check.
    thermal_enabled: bool = False
    #: Ambient / idle temperature of the thermal model (°C).
    ambient_c: float = 45.0
    #: First-order time constant of the package (seconds).
    thermal_tau_s: float = 10.0
    #: Steady-state temperature rise per sustained watt (°C/W).
    thermal_c_per_w: float = 5.0
    #: Above this modelled temperature the effective cap tightens and
    #: an emergency down-throttle fires.
    thermal_throttle_c: float = 85.0
    #: The tightened cap releases once the model cools below this.
    thermal_release_c: float = 80.0
    #: Multiplier applied to the cap (and every share) while hot.
    thermal_cap_factor: float = 0.8

    # -- oscillation damper ------------------------------------------------
    #: Sliding window of recent boundary plans inspected for A↔B
    #: thrash; ``0`` disables the damper.
    damper_window: int = 0
    #: Minimum state flips inside a full window to call it thrashing.
    damper_flips: int = 3
    #: Maximum distinct states a thrash cycle may involve.  The default
    #: catches the classic A↔B ping-pong; tight tolerance windows also
    #: produce longer A→B→C→A limit cycles, caught by raising this.
    damper_states: int = 2
    #: Adaptation periods the cheapest cycle member is held for.
    damper_hold_periods: int = 8

    # -- misprediction watchdog --------------------------------------------
    #: Residual samples per app needed before the watchdog judges the
    #: estimators; ``0`` disables the watchdog.
    watchdog_window: int = 0
    #: Mean absolute relative residual that trips safe mode.
    watchdog_trip: float = 0.35
    #: Mean absolute relative residual below which safe mode releases.
    watchdog_recover: float = 0.15

    def __post_init__(self) -> None:
        if self.power_cap_w is not None and self.power_cap_w <= 0:
            raise ConfigurationError("power_cap_w must be positive")
        seen = set()
        for entry in self.app_power_caps:
            if len(entry) != 2:
                raise ConfigurationError(
                    "app_power_caps entries must be (app_name, watts) pairs"
                )
            name, cap = entry
            if name in seen:
                raise ConfigurationError(
                    f"duplicate app power cap for {name!r}"
                )
            seen.add(name)
            if cap <= 0:
                raise ConfigurationError(
                    f"app power cap for {name!r} must be positive"
                )
        if not 0 < self.filter_margin <= 2:
            raise ConfigurationError("filter_margin must be in (0, 2]")
        if not 0 < self.trip_margin_decay <= 1:
            raise ConfigurationError("trip_margin_decay must be in (0, 1]")
        if not 0 < self.min_margin <= self.filter_margin:
            raise ConfigurationError(
                "min_margin must be in (0, filter_margin]"
            )
        if not 0 < self.release_fraction <= 1:
            raise ConfigurationError("release_fraction must be in (0, 1]")
        if self.thermal_enabled:
            if not self.budget_enabled:
                raise ConfigurationError(
                    "the thermal ramp tightens a power cap: set "
                    "power_cap_w (or app_power_caps) to enable it"
                )
            if self.thermal_tau_s <= 0:
                raise ConfigurationError("thermal_tau_s must be positive")
            if self.thermal_c_per_w <= 0:
                raise ConfigurationError("thermal_c_per_w must be positive")
            if not (
                self.ambient_c
                < self.thermal_release_c
                < self.thermal_throttle_c
            ):
                raise ConfigurationError(
                    "need ambient_c < thermal_release_c < thermal_throttle_c"
                )
            if not 0 < self.thermal_cap_factor <= 1:
                raise ConfigurationError(
                    "thermal_cap_factor must be in (0, 1]"
                )
        if self.damper_window < 0:
            raise ConfigurationError("damper_window must be >= 0")
        if self.damper_window:
            if self.damper_window < 3:
                raise ConfigurationError(
                    "a damper needs a window of at least 3 plans"
                )
            if not 2 <= self.damper_flips < self.damper_window:
                raise ConfigurationError(
                    "damper_flips must be in [2, damper_window)"
                )
            if not 2 <= self.damper_states < self.damper_window:
                raise ConfigurationError(
                    "damper_states must be in [2, damper_window)"
                )
            if self.damper_hold_periods < 1:
                raise ConfigurationError("damper_hold_periods must be >= 1")
        if self.watchdog_window < 0:
            raise ConfigurationError("watchdog_window must be >= 0")
        if self.watchdog_window:
            if self.watchdog_window < 2:
                raise ConfigurationError(
                    "a watchdog needs a window of at least 2 residuals"
                )
            if not 0 < self.watchdog_recover < self.watchdog_trip:
                raise ConfigurationError(
                    "need 0 < watchdog_recover < watchdog_trip"
                )

    # -- enablement queries ------------------------------------------------

    @property
    def budget_enabled(self) -> bool:
        """Whether any power cap is configured."""
        return self.power_cap_w is not None or bool(self.app_power_caps)

    @property
    def damper_enabled(self) -> bool:
        return self.damper_window > 0

    @property
    def watchdog_enabled(self) -> bool:
        return self.watchdog_window > 0

    @property
    def enabled(self) -> bool:
        """Whether the layer does anything at all.

        ``False`` (the default config) means the runner never attaches
        the layer — the bit-identity contract.
        """
        return (
            self.budget_enabled
            or self.damper_enabled
            or self.watchdog_enabled
        )

    # -- conveniences ------------------------------------------------------

    def with_(self, **changes) -> "GuardrailConfig":
        """A copy with some fields replaced (sweep convenience)."""
        return replace(self, **changes)

    def explicit_caps(self) -> Dict[str, float]:
        """The per-app caps as a plain dict."""
        return dict(self.app_power_caps)
