"""First-order thermal model for the budget enforcer.

The ODROID-XU3's A15 cluster throttles thermally long before its
electrical limits; the enforcer models that with the standard
single-pole RC abstraction: package temperature relaxes toward
``ambient + c_per_w × power`` with time constant ``tau``.  Driven from
the engine's per-tick power samples this is deterministic, cheap, and
captures the property the guardrail needs — *sustained* power near the
cap heats the package over tens of seconds even when no single sample
violates it.

The hot/cool decision carries hysteresis (``throttle_c`` to trip,
``release_c`` to clear) so the tightened cap does not chatter around
the threshold.
"""

from __future__ import annotations

import math


class ThermalModel:
    """``dT/dt = (ambient + c_per_w·P − T) / tau`` with hysteresis."""

    def __init__(
        self,
        ambient_c: float,
        tau_s: float,
        c_per_w: float,
        throttle_c: float,
        release_c: float,
    ):
        self.ambient_c = ambient_c
        self.tau_s = tau_s
        self.c_per_w = c_per_w
        self.throttle_c = throttle_c
        self.release_c = release_c
        self.temp_c = ambient_c
        #: Whether the model is currently in the tightened-cap regime.
        self.hot = False
        #: Highest temperature the model reached.
        self.peak_c = ambient_c

    def update(self, dt_s: float, power_w: float) -> str:
        """Advance one tick; returns ``"trip"`` / ``"release"`` / ``""``.

        The exact exponential step (not the Euler approximation) keeps
        the model stable for any ``dt``/``tau`` ratio.
        """
        if dt_s <= 0:
            return ""
        steady = self.ambient_c + self.c_per_w * power_w
        alpha = 1.0 - math.exp(-dt_s / self.tau_s)
        self.temp_c += (steady - self.temp_c) * alpha
        if self.temp_c > self.peak_c:
            self.peak_c = self.temp_c
        if not self.hot and self.temp_c >= self.throttle_c:
            self.hot = True
            return "trip"
        if self.hot and self.temp_c <= self.release_c:
            self.hot = False
            return "release"
        return ""

    def restore(self, temp_c: float, hot: bool, peak_c: float) -> None:
        """Adopt checkpointed thermal state (warm restart)."""
        self.temp_c = float(temp_c)
        self.hot = bool(hot)
        self.peak_c = float(peak_c)

    def reset(self) -> None:
        """Cold start: back to ambient."""
        self.temp_c = self.ambient_c
        self.hot = False
        self.peak_c = self.ambient_c
