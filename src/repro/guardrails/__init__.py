"""Runtime guardrails: budget enforcement, damping, misprediction watchdog.

The layer is strictly opt-in: a :class:`~repro.experiments.runner.RunConfig`
without a :class:`GuardrailConfig` (or with an all-default one) attaches
nothing and is bit-identical to a run predating this package.
"""

from repro.guardrails.config import GuardrailConfig
from repro.guardrails.damper import OscillationDamper
from repro.guardrails.layer import BudgetEnforcer, GuardrailLayer
from repro.guardrails.thermal import ThermalModel
from repro.guardrails.watchdog import MispredictionWatchdog

__all__ = [
    "BudgetEnforcer",
    "GuardrailConfig",
    "GuardrailLayer",
    "MispredictionWatchdog",
    "OscillationDamper",
    "ThermalModel",
]
