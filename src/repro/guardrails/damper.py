"""Oscillation damper: hysteresis against A↔B state thrashing.

HARS-E's exhaustive search has no memory: when no reachable state sits
inside a tight target window, every adaptation period flips between the
nearest state *below* the window and the nearest state *above* it —
each DVFS write and thread migration costing real time and power for
zero satisfaction gain.  Tight windows also produce longer limit
cycles — A→B→C→A every three periods — with the same cost profile.
The damper watches a sliding window of planned boundary states per
app; when the window is dominated by a small recurring set of states
(at most ``states`` distinct members, two by default) with enough
flips between them, it trips, picks the *cheapest* member (by
estimated power), and holds it for a cooldown of K adaptation periods
before letting the search move again.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.core.state import SystemState


class _AppDamper:
    """Per-app sliding window and hold state."""

    __slots__ = ("history", "hold_left", "held_state")

    def __init__(self, window: int):
        self.history: Deque[SystemState] = deque(maxlen=window)
        self.hold_left = 0
        self.held_state: Optional[SystemState] = None


class OscillationDamper:
    """Detects small-cycle thrash and holds the cheapest state."""

    def __init__(
        self, window: int, flips: int, hold_periods: int, states: int = 2
    ):
        self.window = window
        self.flips = flips
        self.hold_periods = hold_periods
        self.states = states
        self._apps: Dict[str, _AppDamper] = {}
        #: Thrash episodes detected (→ ``GuardrailTripped``).
        self.trips = 0
        #: Boundary cycles spent inside a hold.
        self.held_cycles = 0

    def _of(self, app_name: str) -> _AppDamper:
        data = self._apps.get(app_name)
        if data is None:
            data = self._apps[app_name] = _AppDamper(self.window)
        return data

    def holding(self, app_name: str) -> bool:
        data = self._apps.get(app_name)
        return data is not None and data.hold_left > 0

    def filter_plan(
        self,
        app_name: str,
        planned: SystemState,
        cheaper_of: Callable[[SystemState, SystemState], SystemState],
    ) -> Tuple[SystemState, str]:
        """One boundary decision through the damper.

        Returns ``(state_to_apply, transition)`` where ``transition`` is
        ``"trip"`` when a new hold starts, ``"release"`` when the
        current hold expires after this cycle, and ``""`` otherwise.
        """
        data = self._of(app_name)
        if data.hold_left > 0:
            data.hold_left -= 1
            self.held_cycles += 1
            held = data.held_state
            assert held is not None
            if data.hold_left == 0:
                data.held_state = None
                # History restarts empty after a hold so the cooldown
                # actually buys K undisturbed periods of evidence.
                data.history.clear()
                return held, "release"
            return held, ""
        data.history.append(planned)
        if len(data.history) < self.window:
            return planned, ""
        # First-seen order keeps the reduction below deterministic.
        distinct = []
        for state in data.history:
            if state not in distinct:
                distinct.append(state)
        if not 2 <= len(distinct) <= self.states:
            return planned, ""
        flips = sum(
            1
            for earlier, later in zip(
                tuple(data.history), tuple(data.history)[1:]
            )
            if earlier != later
        )
        if flips < self.flips:
            return planned, ""
        hold = distinct[0]
        for other in distinct[1:]:
            hold = cheaper_of(hold, other)
        self.trips += 1
        self.held_cycles += 1
        data.held_state = hold
        # The tripping cycle counts as the first held period.
        data.hold_left = self.hold_periods - 1
        data.history.clear()
        if data.hold_left == 0:
            # Degenerate one-period hold: the caller pairs the release
            # itself (``holding()`` is already False again).
            data.held_state = None
        return hold, "trip"

    def forget(self, app_name: str) -> None:
        """Drop per-app state (the app finished or was evicted)."""
        self._apps.pop(app_name, None)

    def reset(self) -> None:
        """Cold start: windows and holds are volatile."""
        self._apps.clear()

    # -- checkpoint plumbing ----------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable hold state (history windows are volatile)."""
        return {
            "trips": self.trips,
            "held_cycles": self.held_cycles,
            "holds": {
                name: {
                    "hold_left": data.hold_left,
                    "held_state": (
                        [
                            data.held_state.c_big,
                            data.held_state.c_little,
                            data.held_state.f_big_mhz,
                            data.held_state.f_little_mhz,
                        ]
                        if data.held_state is not None
                        else None
                    ),
                }
                for name, data in self._apps.items()
                if data.hold_left > 0
            },
        }

    def restore(self, body: Dict[str, object]) -> None:
        self.trips = int(body.get("trips", 0))
        self.held_cycles = int(body.get("held_cycles", 0))
        holds = body.get("holds") or {}
        for name, entry in holds.items():
            data = self._of(str(name))
            data.hold_left = int(entry.get("hold_left", 0))
            values = entry.get("held_state")
            data.held_state = (
                SystemState(*(int(v) for v in values))
                if values is not None
                else None
            )
