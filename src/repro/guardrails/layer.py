"""The guardrail layer: budget enforcement, damping, and the watchdog.

One bus-attached :class:`GuardrailLayer` serves a whole run, the same
way one supervisor or one telemetry hub does.  It installs itself as
the ``guard`` hook on every MAPE loop (mirroring how the telemetry hub
installs :class:`~repro.telemetry.hub.MapeTelemetry`) and wires three
protections through the existing seams:

* the **BudgetEnforcer** composes a power-cap veto into the Algorithm 2
  sweep (``guard_filter`` — rejections show up as the search's
  ``filtered`` counter), and rides the per-tick
  :class:`~repro.kernel.bus.PowerSample` stream for the post-actuation
  check: a sensor reading above the cap fires an emergency
  down-throttle through the actuation façade and tightens the filter
  margin, so repeat offenders are vetoed earlier the next time.  An
  optional first-order :class:`~repro.guardrails.thermal.ThermalModel`
  tightens the effective cap while the modelled package is hot.
  In multi-app runs the cap is split into per-app *shares*; an app
  that finishes, is quarantined, or is evicted releases its share back
  to the survivors immediately (the recomputation happens inside the
  bus dispatch, so the next planned cycle already sees it).
* the **OscillationDamper** filters every planned state through a
  per-app sliding window and replaces A↔B thrash with a hysteresis
  hold of the cheaper state.
* the **MispredictionWatchdog** pairs each executed plan's estimates
  with the next boundary observation and, past its residual threshold,
  narrows the search to incremental HARS-I moves until the models earn
  trust back.

Every engagement and disengagement is announced on the kernel bus as
:class:`~repro.kernel.bus.GuardrailTripped` /
:class:`~repro.kernel.bus.GuardrailReleased`.  The layer is
checkpoint-capable (``checkpoint`` / ``restore_checkpoint`` /
``simulate_restart``), so the supervision
:class:`~repro.supervision.checkpoint.Checkpointer` snapshots it like
any manager.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.core.policy import HARS_I
from repro.core.state import SystemState
from repro.errors import ConfigurationError, EstimationError
from repro.guardrails.config import GuardrailConfig
from repro.guardrails.damper import OscillationDamper
from repro.guardrails.thermal import ThermalModel
from repro.guardrails.watchdog import MispredictionWatchdog
from repro.kernel.bus import (
    AppEvicted,
    AppFinished,
    AppQuarantined,
    GuardrailReleased,
    GuardrailTripped,
    PowerSample,
)
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.policy import SearchSpace
    from repro.kernel.mape import CycleContext, Knowledge, Observation, PlanResult
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp

#: Tolerance on the sensor-vs-cap comparison: a reading a few ulps over
#: the cap is measurement rounding, not a violation.
_CAP_EPS = 1e-9


class BudgetEnforcer:
    """Power-cap bookkeeping: shares, margin, thermal state, throttle."""

    def __init__(self, config: GuardrailConfig):
        self.config = config
        self.cap_w = config.power_cap_w
        #: Adaptive guard-filter margin; decays per budget trip.
        self.margin = config.filter_margin
        #: The platform's constant board-rail draw (set at ``on_start``).
        #: The sensor cap is *total*-basis; the estimator covers the two
        #: clusters only, so the veto subtracts the board constant.
        self.board_power_w = 0.0
        self.thermal: Optional[ThermalModel] = (
            ThermalModel(
                ambient_c=config.ambient_c,
                tau_s=config.thermal_tau_s,
                c_per_w=config.thermal_c_per_w,
                throttle_c=config.thermal_throttle_c,
                release_c=config.thermal_release_c,
            )
            if config.thermal_enabled
            else None
        )
        self._explicit = config.explicit_caps()
        self._live: Set[str] = set()
        #: ``app -> watts`` share of the cap, ``None`` for uncapped.
        self.shares: Dict[str, Optional[float]] = {}
        #: ``(time_s, {app: share_w})`` per recomputation — the audit
        #: trail the guardrail↔supervision tests read.
        self.share_events: List[Tuple[float, Dict[str, float]]] = []
        #: Whether the emergency throttle is currently engaged.
        self.throttling = False
        #: Budget trips (sensor reading above the effective cap).
        self.trips = 0
        #: Thermal-regime entries (modelled temperature over threshold).
        self.thermal_trips = 0
        #: Ticks whose sensor reading violated the effective cap.
        self.violation_ticks = 0
        #: Longest contiguous violation streak, in simulated seconds —
        #: the acceptance metric (must stay under one MAPE period).
        self.max_violation_streak_s = 0.0
        #: Total simulated time spent with the throttle engaged.
        self.throttled_s = 0.0
        self._streak_s = 0.0
        self._throttle_start: Optional[float] = None

    # -- shares ------------------------------------------------------------

    def set_live(self, app_names: List[str], now_s: float) -> None:
        self._live = set(app_names)
        self._recompute(now_s)

    def release(self, app_name: str, now_s: float) -> bool:
        """Drop an app's share; returns whether anything changed."""
        if app_name not in self._live:
            return False
        self._live.discard(app_name)
        self._recompute(now_s)
        return True

    def admit(self, app_name: str, now_s: float) -> bool:
        """(Re-)admit an app (quarantine recovered); returns if changed."""
        if app_name in self._live:
            return False
        self._live.add(app_name)
        self._recompute(now_s)
        return True

    def _recompute(self, now_s: float) -> None:
        live = sorted(self._live)
        shares: Dict[str, Optional[float]] = {}
        implicit = [name for name in live if name not in self._explicit]
        for name in live:
            if name in self._explicit:
                shares[name] = self._explicit[name]
        if self.cap_w is not None and implicit:
            remaining = (
                self.cap_w
                - self.board_power_w
                - sum(
                    self._explicit[name]
                    for name in live
                    if name in self._explicit
                )
            )
            each = max(remaining, 0.0) / len(implicit)
            for name in implicit:
                shares[name] = each if each > 0 else None
        else:
            for name in implicit:
                shares[name] = None
        self.shares = shares
        self.share_events.append(
            (
                now_s,
                {
                    name: share
                    for name, share in shares.items()
                    if share is not None
                },
            )
        )

    def run_cap_w(self) -> Optional[float]:
        """The run-wide cap the sensor check enforces (total basis).

        Per-app caps are cluster-basis (an app's attributable draw), so
        summing them for the run-wide check adds the board constant back.
        """
        if self.cap_w is not None:
            return self.cap_w
        if self._live and all(name in self._explicit for name in self._live):
            return (
                sum(self._explicit[name] for name in self._live)
                + self.board_power_w
            )
        return None

    def _thermal_factor(self) -> float:
        if self.thermal is not None and self.thermal.hot:
            return self.config.thermal_cap_factor
        return 1.0

    def effective_cap_w(self) -> Optional[float]:
        """The run cap after thermal tightening (the sensor threshold)."""
        cap = self.run_cap_w()
        if cap is None:
            return None
        return cap * self._thermal_factor()

    def veto_cap_w(self, app_name: str) -> Optional[float]:
        """The estimated-power bound the guard filter enforces for an app."""
        share = self.shares.get(app_name)
        if share is None:
            return None
        return share * self.margin * self._thermal_factor()

    # -- post-actuation check ----------------------------------------------

    def observe(
        self, dt_s: float, total_w: float, time_s: float
    ) -> Tuple[List[Tuple[str, str, str]], bool]:
        """Account one tick's sensor reading.

        Returns ``(transitions, violating)``: transitions are
        ``(guard, "trip"|"release", detail)`` tuples for the layer to
        publish; ``violating`` asks for the emergency down-throttle to
        be (re-)asserted this tick.
        """
        transitions: List[Tuple[str, str, str]] = []
        if self.thermal is not None:
            change = self.thermal.update(dt_s, total_w)
            if change == "trip":
                self.thermal_trips += 1
                transitions.append(
                    (
                        "thermal",
                        "trip",
                        f"{self.thermal.temp_c:.1f}C >= "
                        f"{self.thermal.throttle_c:.1f}C",
                    )
                )
            elif change == "release":
                transitions.append(
                    ("thermal", "release", f"{self.thermal.temp_c:.1f}C")
                )
        cap = self.effective_cap_w()
        if cap is None:
            return transitions, False
        violating = total_w > cap + _CAP_EPS
        if violating:
            self.violation_ticks += 1
            self._streak_s += dt_s
            if self._streak_s > self.max_violation_streak_s:
                self.max_violation_streak_s = self._streak_s
            if not self.throttling:
                self.throttling = True
                self.trips += 1
                self.margin = max(
                    self.config.min_margin,
                    self.margin * self.config.trip_margin_decay,
                )
                self._throttle_start = time_s
                transitions.append(
                    (
                        "budget",
                        "trip",
                        f"{total_w:.3f}W > cap {cap:.3f}W",
                    )
                )
        else:
            self._streak_s = 0.0
            if self.throttling and total_w <= cap * self.config.release_fraction:
                self.throttling = False
                if self._throttle_start is not None:
                    self.throttled_s += time_s - self._throttle_start
                    self._throttle_start = None
                transitions.append(
                    ("budget", "release", f"{total_w:.3f}W <= cap {cap:.3f}W")
                )
        return transitions, violating

    # -- checkpoint plumbing ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "margin": self.margin,
            "throttling": self.throttling,
            "trips": self.trips,
            "thermal_trips": self.thermal_trips,
            "violation_ticks": self.violation_ticks,
            "max_violation_streak_s": self.max_violation_streak_s,
            "throttled_s": self.throttled_s,
            "live": sorted(self._live),
            "thermal": (
                {
                    "temp_c": self.thermal.temp_c,
                    "hot": self.thermal.hot,
                    "peak_c": self.thermal.peak_c,
                }
                if self.thermal is not None
                else None
            ),
        }

    def restore(self, body: Dict[str, Any], now_s: float) -> None:
        self.margin = float(body.get("margin", self.config.filter_margin))
        self.throttling = bool(body.get("throttling", False))
        self.trips = int(body.get("trips", 0))
        self.thermal_trips = int(body.get("thermal_trips", 0))
        self.violation_ticks = int(body.get("violation_ticks", 0))
        self.max_violation_streak_s = float(
            body.get("max_violation_streak_s", 0.0)
        )
        self.throttled_s = float(body.get("throttled_s", 0.0))
        self._throttle_start = now_s if self.throttling else None
        self._streak_s = 0.0
        live = body.get("live")
        if live is not None:
            self.set_live([str(name) for name in live], now_s)
        thermal = body.get("thermal")
        if self.thermal is not None and thermal is not None:
            self.thermal.restore(
                thermal.get("temp_c", self.thermal.ambient_c),
                thermal.get("hot", False),
                thermal.get("peak_c", self.thermal.ambient_c),
            )

    def reset(self, now_s: float, live: List[str]) -> None:
        """Cold start: margin, thermal, and throttle state are volatile."""
        self.margin = self.config.filter_margin
        self.throttling = False
        self._throttle_start = None
        self._streak_s = 0.0
        if self.thermal is not None:
            self.thermal.reset()
        self.set_live(live, now_s)


class BudgetVeto:
    """Plan-stage guard filter for the power-budget cap.

    Callable with ``(candidate, current)`` for the scalar sweep and
    mask-capable (``box_mask``) for the vector planner; both admit a
    candidate when its estimate is unavailable (the sweep counts the
    failure), when it fits under the cap, or when it is a strictly
    downhill move from a current state that is itself over budget —
    vetoing the whole neighbourhood there would force the search to
    *hold* the hot state instead of descending toward the cap region.
    """

    __slots__ = ("estimation", "n_threads", "cap_w", "current_power")

    def __init__(
        self,
        estimation,
        n_threads: int,
        cap_w: float,
        current_power: Optional[float],
    ):
        self.estimation = estimation
        self.n_threads = n_threads
        self.cap_w = cap_w
        self.current_power = current_power

    def __call__(self, candidate: SystemState, current: SystemState) -> bool:
        # The estimation layer memoizes, so the sweep's own
        # evaluate_state re-uses these lookups.
        try:
            estimate = self.estimation.perf.estimate(
                candidate, self.n_threads
            )
            power = self.estimation.power.estimate(candidate, estimate)
        except EstimationError:
            # Let the sweep count it as an estimation failure.
            return True
        if power <= self.cap_w:
            return True
        return self.current_power is not None and power < self.current_power

    def box_mask(self, box):
        """Vectorized equivalent over a candidate box (same semantics).

        ``box.power`` is NaN exactly where the scalar calls would raise,
        and NaN compares False — the ``~box.valid`` term admits those.
        """
        allowed = (~box.valid) | (box.power <= self.cap_w)
        if self.current_power is not None:
            allowed = allowed | (box.power < self.current_power)
        return allowed


class GuardrailLayer(Controller):
    """Bus-attached runtime guardrails for one simulation run."""

    def __init__(self, config: GuardrailConfig):
        if not config.enabled:
            raise ConfigurationError(
                "GuardrailLayer needs at least one guardrail enabled; "
                "with the default config attach no layer at all "
                "(the bit-identity contract)"
            )
        self.config = config
        self.enforcer: Optional[BudgetEnforcer] = (
            BudgetEnforcer(config) if config.budget_enabled else None
        )
        self.damper: Optional[OscillationDamper] = (
            OscillationDamper(
                window=config.damper_window,
                flips=config.damper_flips,
                hold_periods=config.damper_hold_periods,
                states=config.damper_states,
            )
            if config.damper_enabled
            else None
        )
        self.watchdog: Optional[MispredictionWatchdog] = (
            MispredictionWatchdog(
                window=config.watchdog_window,
                trip_threshold=config.watchdog_trip,
                recover_threshold=config.watchdog_recover,
            )
            if config.watchdog_enabled
            else None
        )
        #: Emergency down-throttles asserted through the actuation façade.
        self.emergency_throttles = 0
        #: In-window cycles the budget guard forced while over cap.
        self.forced_cycles = 0
        #: Set by the supervision Checkpointer (if one is attached).
        self.checkpoint_store = None
        self._sim: Optional["Simulation"] = None
        self._last_sample_s = 0.0
        #: Per-app acknowledgment of the enforcer's violation counter:
        #: a boundary cycle is forced until the app has planned *after*
        #: the latest violating tick.
        self._violation_ack: Dict[str, int] = {}

    # -- Controller wiring -------------------------------------------------

    def attach(self, sim: "Simulation") -> None:
        self._sim = sim
        if self.enforcer is not None:
            # The budget check needs every tick's reading; subscribing
            # here is what makes the engine publish PowerSample at all,
            # and only guardrailed runs pay for it.
            sim.bus.subscribe(PowerSample, self._on_power_sample)
            sim.bus.subscribe(AppFinished, self._on_app_finished)
            sim.bus.subscribe(AppQuarantined, self._on_app_quarantined)
            sim.bus.subscribe(AppEvicted, self._on_app_evicted)

    def on_start(self, sim: "Simulation") -> None:
        if self.watchdog is not None:
            # Board power is attributable to a single app only when the
            # run has exactly one; co-run watchdogs judge rate residuals.
            self.watchdog.track_power = len(sim.apps) == 1
        if self.enforcer is not None:
            self.enforcer.board_power_w = sim.spec.board_power_w
            self.enforcer.set_live(
                [app.name for app in sim.apps], sim.clock.now_s
            )
        for controller in sim.controllers:
            mape = getattr(controller, "mape", None)
            if mape is None or getattr(mape, "guard", None) is not None:
                continue
            mape.guard = self
            mape.planner.guard = self

    # -- bus handlers -------------------------------------------------------

    def _on_power_sample(self, event: PowerSample) -> None:
        enforcer = self.enforcer
        sim = self._sim
        if enforcer is None or sim is None:
            return
        dt_s = event.time_s - self._last_sample_s
        self._last_sample_s = event.time_s
        total_w = event.watts.get("total", 0.0)
        transitions, violating = enforcer.observe(dt_s, total_w, event.time_s)
        for guard, change, detail in transitions:
            self._announce(guard, "*", change, detail, time_s=event.time_s)
        if violating:
            # Emergency down-throttle, re-asserted every violating tick
            # — a manager that re-applies a hot state mid-throttle is
            # immediately overridden again.
            sim.actuator.set_min_frequencies()
            self.emergency_throttles += 1

    def _on_app_finished(self, event: AppFinished) -> None:
        self._release_share(event.app_name, event.time_s, "finished")

    def _on_app_quarantined(self, event: AppQuarantined) -> None:
        self._release_share(event.app_name, event.time_s, "quarantined")

    def _on_app_evicted(self, event: AppEvicted) -> None:
        self._release_share(event.app_name, event.time_s, "evicted")
        self._violation_ack.pop(event.app_name, None)
        if self.damper is not None:
            self.damper.forget(event.app_name)
        if self.watchdog is not None:
            self.watchdog.forget(event.app_name)

    def _release_share(self, app_name: str, time_s: float, why: str) -> None:
        enforcer = self.enforcer
        if enforcer is not None and enforcer.release(app_name, time_s):
            self._announce(
                "budget",
                app_name,
                "release",
                f"share released ({why}); survivors absorb it",
                time_s=time_s,
            )

    def _announce(
        self,
        guard: str,
        app_name: str,
        change: str,
        detail: str,
        time_s: Optional[float] = None,
    ) -> None:
        sim = self._sim
        if sim is None:
            return
        if time_s is None:
            time_s = sim.clock.now_s
        event_type = GuardrailTripped if change == "trip" else GuardrailReleased
        sim.bus.publish(
            event_type(
                guard=guard, app_name=app_name, time_s=time_s, detail=detail
            )
        )

    # -- MAPE guard hooks (installed on every loop) -------------------------

    def on_observation(
        self,
        sim: "Simulation",
        app: "SimApp",
        current: SystemState,
        observation: "Observation",
    ) -> None:
        enforcer = self.enforcer
        if enforcer is not None and enforcer.admit(app.name, sim.clock.now_s):
            # A fresh boundary observation from an app whose share was
            # released (quarantine) means it recovered: re-admit it.
            self._announce(
                "budget", app.name, "trip", "share re-admitted (recovered)"
            )
        watchdog = self.watchdog
        if watchdog is not None:
            change = watchdog.note_observation(
                app.name,
                observation.rate,
                sim.clock.now_s,
                sim.sensor.energy_j("total"),
            )
            if change:
                self._announce(
                    "watchdog",
                    app.name,
                    change,
                    (
                        "residuals over threshold: incremental safe mode"
                        if change == "trip"
                        else "residuals recovered: full search restored"
                    ),
                )

    def wants_cycle(self, sim: "Simulation", app: "SimApp") -> bool:
        """Whether the loop must plan even inside the target window.

        While the sensor reads over budget, an in-window rate must not
        suppress planning: the emergency throttle only pins frequencies,
        and shrinking the *allocation* under the cap takes a (vetoed)
        search.  The signal is "any violating tick since this app last
        planned" rather than the instantaneous throttle flag — bursty
        workloads dip under the release threshold between heartbeats,
        and a boundary landing in such a dip must not mask a budget
        that is violated the rest of the period.  Also true mid-hold so
        a damper cooldown keeps counting down instead of freezing when
        the held state satisfies the target.
        """
        enforcer = self.enforcer
        if (
            enforcer is not None
            and enforcer.shares.get(app.name) is not None
            and enforcer.violation_ticks > self._violation_ack.get(app.name, 0)
        ):
            self.forced_cycles += 1
            return True
        if self.damper is not None and self.damper.holding(app.name):
            return True
        return False

    def adjust_space(
        self, ctx: "CycleContext", space: "SearchSpace"
    ) -> "SearchSpace":
        watchdog = self.watchdog
        if watchdog is not None and watchdog.in_safe_mode(ctx.app.name):
            watchdog.note_safe_cycle()
            return HARS_I.space_for(ctx.analysis.satisfaction)
        return space

    def candidate_veto(self, knowledge: "Knowledge", ctx: "CycleContext"):
        enforcer = self.enforcer
        if enforcer is None:
            return None
        cap = enforcer.veto_cap_w(ctx.app.name)
        if cap is None:
            return None
        estimation = knowledge.estimation
        n_threads = ctx.app.n_threads
        try:
            current_estimate = estimation.perf.estimate(
                ctx.current, n_threads
            )
            current_power = estimation.power.estimate(
                ctx.current, current_estimate
            )
        except EstimationError:
            current_power = None
        return BudgetVeto(estimation, n_threads, cap, current_power)

    def adjust_plan(
        self,
        sim: "Simulation",
        knowledge: "Knowledge",
        ctx: "CycleContext",
        plan: "PlanResult",
    ) -> "PlanResult":
        damper = self.damper
        if damper is None:
            return plan
        app_name = ctx.app.name
        estimation = knowledge.estimation
        n_threads = ctx.app.n_threads

        def cheaper_of(first: SystemState, second: SystemState) -> SystemState:
            try:
                power_first = estimation.power.estimate(
                    first, estimation.perf.estimate(first, n_threads)
                )
                power_second = estimation.power.estimate(
                    second, estimation.perf.estimate(second, n_threads)
                )
            except EstimationError:
                return plan.state
            return first if power_first <= power_second else second

        state, change = damper.filter_plan(app_name, plan.state, cheaper_of)
        if change == "trip":
            self._announce(
                "damper",
                app_name,
                "trip",
                f"thrash detected; holding {state.describe()} "
                f"for {damper.hold_periods} periods",
            )
            if not damper.holding(app_name):
                # One-period hold: pair the release immediately.
                self._announce("damper", app_name, "release", "hold expired")
        elif change == "release":
            self._announce("damper", app_name, "release", "hold expired")
        if state == plan.state:
            return plan
        # The held state replaces the search winner; its estimates no
        # longer describe what is applied, so the watchdog prediction
        # for this cycle is dropped with it.
        return replace(plan, state=state, evaluated=None)

    def note_cycle(
        self, sim: "Simulation", ctx: "CycleContext", executed: bool
    ) -> None:
        if self.enforcer is not None:
            self._violation_ack[ctx.app.name] = self.enforcer.violation_ticks
        watchdog = self.watchdog
        if watchdog is None or not executed:
            return
        plan = ctx.plan
        if plan is None:
            return
        evaluated = plan.evaluated
        if evaluated is None or evaluated.state != plan.state:
            return
        watchdog.note_prediction(
            ctx.app.name,
            evaluated.est_rate,
            evaluated.est_power,
            sim.clock.now_s,
            sim.sensor.energy_j("total"),
        )

    # -- telemetry harvest ---------------------------------------------------

    def guardrail_stats(self) -> Dict[str, float]:
        """Deterministic scalar stats the telemetry hub exports."""
        stats: Dict[str, float] = {
            "emergency_throttles": float(self.emergency_throttles),
            "forced_cycles": float(self.forced_cycles),
        }
        enforcer = self.enforcer
        if enforcer is not None:
            stats.update(
                budget_trips=float(enforcer.trips),
                thermal_trips=float(enforcer.thermal_trips),
                violation_ticks=float(enforcer.violation_ticks),
                max_violation_streak_s=enforcer.max_violation_streak_s,
                throttled_seconds=enforcer.throttled_s,
                filter_margin=enforcer.margin,
            )
            if enforcer.thermal is not None:
                stats["thermal_peak_c"] = enforcer.thermal.peak_c
        if self.damper is not None:
            stats.update(
                damper_trips=float(self.damper.trips),
                damper_held_cycles=float(self.damper.held_cycles),
            )
        if self.watchdog is not None:
            stats.update(
                watchdog_trips=float(self.watchdog.trips),
                watchdog_safe_cycles=float(self.watchdog.safe_cycles),
            )
        return stats

    def residuals(self) -> List[float]:
        """Signed watchdog residuals (telemetry histogram feed)."""
        if self.watchdog is None:
            return []
        return list(self.watchdog.all_residuals)

    # -- checkpoint / restore ------------------------------------------------

    @property
    def checkpoint_id(self) -> str:
        return "guardrails"

    def checkpoint(self, now_s: float) -> Dict[str, Any]:
        from repro.experiments.serialize import checkpoint_payload

        body: Dict[str, Any] = {
            "controller": type(self).__name__,
            "emergency_throttles": self.emergency_throttles,
        }
        if self.enforcer is not None:
            body["enforcer"] = self.enforcer.snapshot()
        if self.damper is not None:
            body["damper"] = self.damper.snapshot()
        if self.watchdog is not None:
            body["watchdog"] = self.watchdog.snapshot()
        return checkpoint_payload(self.checkpoint_id, now_s, body)

    def restore_checkpoint(
        self, sim: "Simulation", payload: Dict[str, Any]
    ) -> None:
        from repro.experiments.serialize import validate_checkpoint

        body = validate_checkpoint(payload)
        self.emergency_throttles = int(body.get("emergency_throttles", 0))
        if self.enforcer is not None and body.get("enforcer") is not None:
            self.enforcer.restore(body["enforcer"], sim.clock.now_s)
        if self.damper is not None and body.get("damper") is not None:
            self.damper.restore(body["damper"])
        if self.watchdog is not None and body.get("watchdog") is not None:
            self.watchdog.restore(body["watchdog"])

    def _forget_volatile(self, sim: "Simulation") -> None:
        live = [
            app.name
            for app in sim.apps
            if not (app.halted or app.is_done())
        ]
        self._violation_ack.clear()
        if self.enforcer is not None:
            self.enforcer.reset(sim.clock.now_s, live)
        if self.damper is not None:
            self.damper.reset()
        if self.watchdog is not None:
            self.watchdog.reset()

    def simulate_restart(self, sim: "Simulation") -> None:
        from repro.kernel.bus import ControllerRestored

        self._forget_volatile(sim)
        store = getattr(self, "checkpoint_store", None)
        snapshot = (
            store.get(self.checkpoint_id) if store is not None else None
        )
        warm = False
        if snapshot is not None:
            try:
                self.restore_checkpoint(sim, snapshot)
                warm = True
            except ConfigurationError:
                snapshot = None
        sim.bus.publish(
            ControllerRestored(
                controller=self.checkpoint_id,
                time_s=sim.clock.now_s,
                warm=warm,
                checkpoint_time_s=(
                    snapshot["time_s"] if snapshot is not None else None
                ),
            )
        )
