"""Comparison versions: the GTS baseline and the static optimal sweep."""

from repro.baselines.baseline import BaselineController
from repro.baselines.static_optimal import (
    OracleEvaluation,
    StaticOptimalController,
    evaluate_all_states,
    find_static_optimal,
    oracle_power,
    oracle_rate,
)

__all__ = [
    "BaselineController",
    "OracleEvaluation",
    "StaticOptimalController",
    "evaluate_all_states",
    "find_static_optimal",
    "oracle_power",
    "oracle_rate",
]
