"""The paper's baseline version.

"The baseline version runs at the maximum core count and frequency level
scheduled by the Linux HMP scheduler" (Section 5.1.1).  As a controller
it only pins both clusters to their maximum frequency and leaves every
thread unpinned for the GTS model to place.  Its perf/watt is the
normalization denominator of Figures 5.1, 5.2 and 5.4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class BaselineController(Controller):
    """Max cores, max frequency, pure GTS scheduling."""

    def on_start(self, sim: "Simulation") -> None:
        sim.actuator.set_max_frequencies()
        for app in sim.apps:
            sim.actuator.clear_affinities(app)
            sim.actuator.set_cpuset(app, None)
