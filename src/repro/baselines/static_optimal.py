"""The static optimal (SO) version.

"The static optimal version runs with the optimal number of cores and
frequency level determined by the offline simulations … It [is] also
scheduled by the Linux HMP scheduler" (Section 5.1.1).

The offline sweep here is an *oracle*: it evaluates every system state
with the ground-truth workload traits and power model (unlike HARS's
online estimators, which assume r0 = 1.5) plus an analytic model of how
GTS places threads within a restricted cpuset.  That mirrors the paper's
setup, where the offline simulation observes the real platform and
therefore does not inherit HARS's r0 misprediction — which is exactly why
SO beats HARS on blackscholes.

GTS placement model (matches :class:`repro.sched.gts.GtsScheduler` for
CPU-hungry threads): if the cpuset contains any big core, every hungry
thread sticks to the big cores and time-shares them; little cores in the
cpuset idle.  Only a big-free cpuset uses the little cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.core.state import SystemState
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.cluster import BIG, LITTLE
from repro.platform.machine import Machine
from repro.platform.power import CoreActivity, PowerModel
from repro.platform.spec import PlatformSpec
from repro.platform.topology import first_n
from repro.sim.controller import Controller
from repro.workloads.base import WorkloadModel
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.pipeline import PipelineWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class OracleEvaluation:
    """Ground-truth prediction for one state."""

    state: SystemState
    rate: float
    watts: float
    norm_perf: float

    @property
    def perf_per_power(self) -> float:
        return self.norm_perf / self.watts


def _mean_unit_work(model: WorkloadModel, seed: int = 0) -> float:
    if isinstance(model, DataParallelWorkload):
        return model.profile.mean_work(model.n_units, seed)
    raise ConfigurationError(f"{model.name}: not a data-parallel workload")


def _gts_cluster(state: SystemState) -> Tuple[str, int, int]:
    """(cluster hungry threads land on, cores there, freq) under GTS."""
    if state.c_big > 0:
        return BIG, state.c_big, state.f_big_mhz
    return LITTLE, state.c_little, state.f_little_mhz


def _pipeline_rate(model: PipelineWorkload, cores: int, speed: float) -> float:
    """Steady-state pipeline throughput with fair core time-sharing.

    Threads of starved stages stop demanding CPU, which grows the fair
    share of the busy stages' threads, which changes which stage binds —
    so the throughput is a fixed point.  Iterate: given throughput ``X``,
    stage utilization is ``u_s = X·c_s / (n_s·share·S)`` and the fair
    per-thread share is ``min(1, cores / Σ_s n_s·u_s)`` of a core.
    """
    shares = [1.0 for _ in model.stages]  # per-thread core fraction
    rate = 0.0
    for _ in range(50):
        per_stage = [
            stage.n_threads * shares[s] * speed / stage.cost_per_item
            for s, stage in enumerate(model.stages)
        ]
        new_rate = min(per_stage)
        demand = sum(
            stage.n_threads
            * min(1.0, new_rate * stage.cost_per_item
                  / max(1e-12, stage.n_threads * shares[s] * speed))
            for s, stage in enumerate(model.stages)
        )
        share = min(1.0, cores / max(demand, 1e-12))
        shares = [share] * len(model.stages)
        if abs(new_rate - rate) < 1e-9:
            break
        rate = new_rate
    return rate


def oracle_rate(
    spec: PlatformSpec, model: WorkloadModel, state: SystemState, seed: int = 0
) -> float:
    """Ground-truth steady-state heartbeat rate under GTS at ``state``."""
    cluster_name, cores, freq = _gts_cluster(state)
    cluster = spec.cluster(cluster_name)
    speed = model.thread_speed(cluster_name, cluster.core_type, freq)
    if isinstance(model, PipelineWorkload):
        return _pipeline_rate(model, cores, speed)
    unit_work = _mean_unit_work(model, seed)
    return min(model.n_threads, cores) * speed / unit_work


def oracle_power(
    spec: PlatformSpec, model: WorkloadModel, state: SystemState, seed: int = 0
) -> float:
    """Ground-truth average power under GTS at ``state``."""
    cluster_name, cores, freq = _gts_cluster(state)
    machine = Machine(spec)
    machine.set_freq_mhz(BIG, state.f_big_mhz)
    machine.set_freq_mhz(LITTLE, state.f_little_mhz)
    used = min(model.n_threads, cores)
    if isinstance(model, PipelineWorkload):
        rate = oracle_rate(spec, model, state, seed)
        cluster = spec.cluster(cluster_name)
        speed = model.thread_speed(cluster_name, cluster.core_type, freq)
        total_cost = sum(stage.cost_per_item for stage in model.stages)
        utilization = min(1.0, rate * total_cost / (speed * used))
    else:
        utilization = 1.0  # equal-speed barrier threads stay busy
    core_ids = first_n(spec, cluster_name, used)
    activities: Dict[int, CoreActivity] = {
        core_id: CoreActivity(
            utilization=utilization,
            activity_factor=model.traits.activity_factor,
        )
        for core_id in core_ids
    }
    return PowerModel(spec).platform_power(machine, activities)["total"]


def evaluate_all_states(
    spec: PlatformSpec,
    model: WorkloadModel,
    target: PerformanceTarget,
    seed: int = 0,
) -> List[OracleEvaluation]:
    """Offline sweep: oracle-evaluate the entire state space."""
    evaluations: List[OracleEvaluation] = []
    for c_big, c_little, f_big, f_little in spec.iter_states():
        state = SystemState(c_big, c_little, f_big, f_little)
        rate = oracle_rate(spec, model, state, seed)
        watts = oracle_power(spec, model, state, seed)
        evaluations.append(
            OracleEvaluation(
                state=state,
                rate=rate,
                watts=watts,
                norm_perf=target.normalized_performance(rate),
            )
        )
    return evaluations


def find_static_optimal(
    spec: PlatformSpec,
    model: WorkloadModel,
    target: PerformanceTarget,
    seed: int = 0,
) -> OracleEvaluation:
    """The SO state: best perf/watt among target-satisfying states.

    If no state satisfies ``t.min`` (an over-ambitious target), falls
    back to the fastest state — the same closest-to-target rule the HARS
    search applies.
    """
    evaluations = evaluate_all_states(spec, model, target, seed)
    feasible = [e for e in evaluations if e.rate >= target.min_rate]
    if feasible:
        return max(
            feasible, key=lambda e: (e.perf_per_power, -e.watts)
        )
    return max(evaluations, key=lambda e: (e.rate, -e.watts))


def find_static_optimal_measured(
    spec: PlatformSpec,
    model_factory,
    target: PerformanceTarget,
    seed: int = 0,
    top_k: int = 6,
    probe_units: int = 50,
    tick_s: float = 0.01,
) -> SystemState:
    """Offline-simulation SO: analytic shortlist, then measured pick.

    The paper's static optimal comes from *offline simulations* of the
    real platform, so it never inherits the analytic model's optimism
    (e.g. fair-share pipeline equilibria the fixed point cannot see).
    This mirrors that: the oracle ranks the state space, the ``top_k``
    feasible candidates are each run briefly on the simulator, and the
    state with the best *measured* normalized perf/watt wins.

    ``model_factory`` must return a fresh workload model per call.
    """
    evaluations = evaluate_all_states(spec, model_factory(), target, seed)
    feasible = [e for e in evaluations if e.rate >= target.min_rate]
    if not feasible:
        return find_static_optimal(spec, model_factory(), target, seed).state
    # Shortlist per rate tier: the oracle can be optimistic (it cannot
    # see fair-share pipeline equilibria), so besides the best-perf/watt
    # feasible states we also probe the best states with progressively
    # more rate headroom — one of them measures feasible even when the
    # oracle's favourite does not.
    tiers = (target.min_rate, target.avg_rate, target.max_rate)
    per_tier = max(1, top_k // len(tiers))
    shortlist: List[SystemState] = []
    for tier_rate in tiers:
        tier = sorted(
            (e for e in feasible if e.rate >= tier_rate),
            key=lambda e: e.perf_per_power,
            reverse=True,
        )
        for evaluation in tier[:per_tier]:
            if evaluation.state not in shortlist:
                shortlist.append(evaluation.state)
            for bumped in _bumped_neighbours(spec, evaluation.state):
                if bumped not in shortlist:
                    shortlist.append(bumped)

    best_state: Optional[SystemState] = None
    best_score: Tuple[int, float] = (-1, 0.0)
    for state in shortlist:
        norm_perf, watts = _probe_state(
            spec, model_factory, target, state, seed, probe_units, tick_s
        )
        score = (1 if norm_perf >= 0.999 * (target.min_rate / target.avg_rate)
                 else 0, norm_perf / watts)
        if score > best_score:
            best_score = score
            best_state = state
    assert best_state is not None
    return best_state


def _bumped_neighbours(spec: PlatformSpec, state: SystemState):
    """One-step-faster variants of a state (higher freq or +1 core)."""
    freqs_b = spec.big.frequencies_mhz
    freqs_l = spec.little.frequencies_mhz
    i_fb = spec.big.freq_index(state.f_big_mhz)
    i_fl = spec.little.freq_index(state.f_little_mhz)
    if state.c_big > 0 and i_fb + 1 < len(freqs_b):
        yield SystemState(
            state.c_big, state.c_little, freqs_b[i_fb + 1], state.f_little_mhz
        )
    if state.c_little > 0 and i_fl + 1 < len(freqs_l):
        yield SystemState(
            state.c_big, state.c_little, state.f_big_mhz, freqs_l[i_fl + 1]
        )


def _probe_state(
    spec: PlatformSpec,
    model_factory,
    target: PerformanceTarget,
    state: SystemState,
    seed: int,
    probe_units: int,
    tick_s: float,
) -> Tuple[float, float]:
    """Short measured run of one state: (mean norm perf, avg watts)."""
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp

    model = model_factory()
    if hasattr(model, "n_units"):
        probe_units = min(probe_units, model.total_heartbeats())
    model.reset(seed)
    sim = Simulation(spec, tick_s=tick_s)
    app = sim.add_app(SimApp("so-probe", model, target))
    sim.add_controller(StaticOptimalController("so-probe", state))
    horizon = probe_units / max(target.min_rate, 1e-6) + 30.0
    sim.run(until_s=horizon)
    return (
        app.monitor.mean_normalized_performance(),
        sim.sensor.average_power_w(),
    )


class StaticOptimalController(Controller):
    """Runs one app at a fixed offline-chosen state under GTS."""

    def __init__(self, app_name: str, state: SystemState):
        self.app_name = app_name
        self.state = state

    def on_start(self, sim: "Simulation") -> None:
        self.state.validate(sim.spec)
        actuator = sim.actuator
        actuator.set_frequency(BIG, self.state.f_big_mhz)
        actuator.set_frequency(LITTLE, self.state.f_little_mhz)
        app = sim.app(self.app_name)
        actuator.clear_affinities(app)
        cpuset = frozenset(
            first_n(sim.spec, BIG, self.state.c_big)
            + first_n(sim.spec, LITTLE, self.state.c_little)
        )
        actuator.set_cpuset(app, cpuset)
        actuator.announce(
            app.name, self.state, self.state.c_big, self.state.c_little
        )

    def current_allocation(self, app_name: str) -> Optional[Tuple[int, int]]:
        if app_name != self.app_name:
            return None
        return (self.state.c_big, self.state.c_little)
