"""Run-level metrics: the quantities the paper's figures plot.

The paper's efficiency metric is *normalized performance per watt*
(Section 3.1.3): normalized performance is ``min(g, h)/g`` — capped at 1
because overperformance has no benefit — and power is the run's average
total draw.  Figures normalize each version's perf/watt to the baseline
version and summarize across benchmarks with the geometric mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.units import geometric_mean


@dataclass(frozen=True)
class AppRunMetrics:
    """Per-application outcome of one run."""

    app_name: str
    heartbeats: int
    overall_rate: float
    mean_normalized_perf: float
    target_min: float
    target_avg: float
    target_max: float

    def __post_init__(self) -> None:
        if self.heartbeats < 0 or self.overall_rate < 0:
            raise ConfigurationError("negative run metric")
        if not 0 <= self.mean_normalized_perf <= 1:
            raise ConfigurationError(
                f"normalized perf {self.mean_normalized_perf} not in [0,1]"
            )


@dataclass(frozen=True)
class RunMetrics:
    """Whole-run outcome: applications + power + manager overhead."""

    version: str
    apps: Tuple[AppRunMetrics, ...]
    elapsed_s: float
    avg_power_w: float
    manager_overhead_s: float = 0.0
    final_state: str = ""

    def __post_init__(self) -> None:
        if not self.apps:
            raise ConfigurationError("run produced no application metrics")
        if self.elapsed_s <= 0 or self.avg_power_w <= 0:
            raise ConfigurationError("elapsed time and power must be positive")

    @property
    def perf_per_watt(self) -> float:
        """Normalized performance per watt.

        For a single application this is the paper's metric exactly; for
        multi-application cases (Figure 5.4's one-bar-per-case), the
        numerator is the *mean* of the apps' normalized performances over
        the *total* average power, so a version that starves one app to
        please another is penalized.
        """
        mean_perf = sum(a.mean_normalized_perf for a in self.apps) / len(
            self.apps
        )
        return mean_perf / self.avg_power_w

    @property
    def manager_cpu_percent(self) -> float:
        """Manager overhead as percent of one CPU (Figure 5.3b)."""
        return 100.0 * self.manager_overhead_s / self.elapsed_s

    def app(self, name: str) -> AppRunMetrics:
        for metrics in self.apps:
            if metrics.app_name == name:
                return metrics
        raise ConfigurationError(f"no metrics for app {name!r}")


def normalize_to_baseline(
    results: Mapping[str, RunMetrics], baseline_version: str = "baseline"
) -> Dict[str, float]:
    """Perf/watt of each version relative to the baseline's."""
    if baseline_version not in results:
        raise ConfigurationError(
            f"baseline version {baseline_version!r} missing from results"
        )
    base = results[baseline_version].perf_per_watt
    if base <= 0:
        raise ConfigurationError("baseline perf/watt must be positive")
    return {name: run.perf_per_watt / base for name, run in results.items()}


def geomean_across(
    per_benchmark: Sequence[Mapping[str, float]], versions: Sequence[str]
) -> Dict[str, float]:
    """Geometric mean of normalized scores per version (the "GM" bar)."""
    means: Dict[str, float] = {}
    for version in versions:
        values: List[float] = []
        for row in per_benchmark:
            if version not in row:
                raise ConfigurationError(
                    f"version {version!r} missing from a benchmark row"
                )
            values.append(row[version])
        means[version] = geometric_mean(values)
    return means
