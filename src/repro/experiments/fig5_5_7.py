"""Figures 5.5–5.7: behaviour graphs of case 4 (bodytrack + fluidanimate).

For each of CONS-I, MP-HARS-I and MP-HARS-E, the paper plots — per
application, against the heartbeat index — the heartbeat rate (HPS) with
the target window, the allocated big/little core counts, and both cluster
frequencies.  This module reruns case 4 with tracing and exposes the
series, plus the specific observations the paper makes:

* CONS-I (Fig 5.5): fluidanimate largely exceeds its target window once
  bodytrack achieves, because the conservative global model cannot
  decrease;
* MP-HARS-I (Fig 5.6): both applications track their own windows;
* MP-HARS-E (Fig 5.7): bodytrack prefers little cores (no big core),
  fluidanimate holds big cores at a reduced frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import sampled_series
from repro.experiments.runner import RunConfig, RunOutcome, RunShape, run
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.spec import PlatformSpec, odroid_xu3
from repro.sim.tracing import TraceRecorder
from repro.units import mean

#: The versions whose behaviour the three figures show.
BEHAVIOUR_VERSIONS: Tuple[str, ...] = ("cons-i", "mp-hars-i", "mp-hars-e")

#: Case 4's pair.
CASE4: Tuple[str, str] = ("bodytrack", "fluidanimate")


@dataclass
class BehaviourRun:
    """One version's traced case-4 run."""

    version: str
    outcome: RunOutcome
    targets: Dict[str, PerformanceTarget] = field(default_factory=dict)

    @property
    def trace(self) -> TraceRecorder:
        return self.outcome.trace

    def app_names(self) -> Tuple[str, ...]:
        return self.trace.app_names

    def steady_mean(self, app_name: str, column: str, skip: int = 50) -> float:
        """Mean of a trace column after the adaptation transient."""
        series = self.trace.series(app_name, column)
        tail = [v for idx, v in series if idx >= skip]
        return mean(tail if tail else [v for _, v in series])

    def overshoot_fraction(self, app_name: str, skip: int = 50) -> float:
        """Fraction of post-transient measurements above ``t.max``."""
        target = self.targets[app_name]
        series = self.trace.series(app_name, "rate")
        tail = [v for idx, v in series if idx >= skip]
        if not tail:
            return 0.0
        return sum(1 for v in tail if v > target.max_rate) / len(tail)

    def render(self, max_points: int = 20) -> str:
        lines = [f"== {self.version}: case 4 behaviour =="]
        for app_name in self.app_names():
            target = self.targets[app_name]
            lines.append(
                f"-- {app_name} (window {target.min_rate:.2f}"
                f"..{target.max_rate:.2f} HPS)"
            )
            for column, label in (
                ("rate", "HPS"),
                ("big_cores", "B_Core"),
                ("little_cores", "L_Core"),
                ("big_freq_mhz", "B_Freq"),
                ("little_freq_mhz", "L_Freq"),
            ):
                series = self.trace.series(app_name, column)
                lines.append(
                    f"   {label:7s} {sampled_series(series, max_points)}"
                )
        return "\n".join(lines)


def run_behaviour(
    version: str,
    spec: Optional[PlatformSpec] = None,
    pair: Tuple[str, str] = CASE4,
    n_units: Optional[int] = None,
    seed: int = 0,
) -> BehaviourRun:
    """Trace one version's case-4 run."""
    spec = spec or odroid_xu3()
    shapes = [RunShape(benchmark=name, n_units=n_units, seed=seed) for name in pair]
    outcome = run(version, shapes, RunConfig(spec=spec))
    behaviour = BehaviourRun(version=version, outcome=outcome)
    for app in outcome.metrics.apps:
        behaviour.targets[app.app_name] = PerformanceTarget(
            app.target_min, app.target_avg, app.target_max
        )
    return behaviour


def run_fig5_5_7(
    spec: Optional[PlatformSpec] = None,
    n_units: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, BehaviourRun]:
    """All three behaviour figures: version → traced run."""
    return {
        version: run_behaviour(version, spec=spec, n_units=n_units, seed=seed)
        for version in BEHAVIOUR_VERSIONS
    }
