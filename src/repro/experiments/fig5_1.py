"""Figure 5.1: perf/watt at the default target (50 % ± 5 %).

One bar group per PARSEC benchmark, five versions (Baseline, SO, HARS-I,
HARS-E, HARS-EI), every bar normalized to the baseline version, plus the
geometric mean ("GM").  The same machinery parameterized by target
fraction also produces Figure 5.2 (75 % ± 5 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.metrics import (
    RunMetrics,
    geomean_across,
    normalize_to_baseline,
)
from repro.experiments.report import grouped_bars
from repro.experiments.runner import RunConfig, RunShape, run
from repro.experiments.versions import SINGLE_APP_VERSIONS, version_label
from repro.platform.spec import PlatformSpec, odroid_xu3
from repro.workloads.parsec import BENCHMARKS, SHORT_CODES

#: Row label of the geometric-mean row.
GM = "GM"


@dataclass
class PerfWattComparison:
    """Result of one Figure-5.1-style comparison."""

    target_fraction: float
    versions: Tuple[str, ...]
    #: benchmark code ("BL") → version → perf/watt normalized to baseline
    normalized: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: benchmark code → version → raw RunMetrics
    raw: Dict[str, Dict[str, RunMetrics]] = field(default_factory=dict)

    @property
    def geomean(self) -> Dict[str, float]:
        """The "GM" bar group."""
        return geomean_across(list(self.normalized.values()), list(self.versions))

    def render(self) -> str:
        data = dict(self.normalized)
        data[GM] = self.geomean
        title = (
            f"Perf/watt normalized to baseline "
            f"(target {self.target_fraction:.0%} ± 5% of max)"
        )
        return grouped_bars(
            [*self.normalized.keys(), GM],
            [version_label(v) for v in self.versions],
            {
                row: {
                    version_label(v): values[v] for v in self.versions
                }
                for row, values in data.items()
            },
            title=title,
        )


def run_perf_watt_comparison(
    target_fraction: float,
    spec: Optional[PlatformSpec] = None,
    benchmarks: Optional[List[str]] = None,
    versions: Tuple[str, ...] = SINGLE_APP_VERSIONS,
    n_units: Optional[int] = None,
    seed: int = 0,
) -> PerfWattComparison:
    """Run the full benchmark × version grid at one target fraction.

    ``n_units`` scales every benchmark down for quick runs (``None`` uses
    the native-input sizes).
    """
    spec = spec or odroid_xu3()
    names = benchmarks if benchmarks is not None else list(BENCHMARKS)
    comparison = PerfWattComparison(
        target_fraction=target_fraction, versions=versions
    )
    for name in names:
        shape = RunShape(
            benchmark=name,
            n_units=n_units,
            target_fraction=target_fraction,
            seed=seed,
        )
        per_version: Dict[str, RunMetrics] = {}
        for version in versions:
            per_version[version] = run(
                version, shape, RunConfig(spec=spec)
            ).metrics
        code = SHORT_CODES.get(name, name.upper())
        comparison.raw[code] = per_version
        comparison.normalized[code] = normalize_to_baseline(per_version)
    return comparison


def run_fig5_1(
    spec: Optional[PlatformSpec] = None,
    n_units: Optional[int] = None,
    benchmarks: Optional[List[str]] = None,
) -> PerfWattComparison:
    """Figure 5.1: the default performance target."""
    return run_perf_watt_comparison(
        0.5, spec=spec, benchmarks=benchmarks, n_units=n_units
    )
