"""Figure 5.3: efficiency and overhead versus the explored-space size.

The distance parameter ``d`` of the HARS-EI search is swept over
{1, 3, 5, 7, 9} for both targets:

* 5.3(a) — geometric-mean perf/watt across the benchmarks, normalized to
  ``d = 1``; the paper observes efficiency rising to a knee near
  ``d = 5``;
* 5.3(b) — the runtime manager's average CPU utilization, growing with
  ``d`` but staying under ~6 % at ``d = 9``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import format_table
from repro.experiments.runner import RunConfig, RunShape, run
from repro.platform.spec import PlatformSpec, odroid_xu3
from repro.units import geometric_mean, mean
from repro.workloads.parsec import BENCHMARKS

#: The paper's sweep: d from 1 to 9 with a step of 2.
DISTANCES: Tuple[int, ...] = (1, 3, 5, 7, 9)

#: Target fractions evaluated (default and high).
TARGETS: Tuple[float, ...] = (0.5, 0.75)


@dataclass
class DistanceSweep:
    """Result of the Figure 5.3 sweep."""

    distances: Tuple[int, ...]
    #: target fraction → d → geomean perf/watt normalized to d = 1
    efficiency: Dict[float, Dict[int, float]] = field(default_factory=dict)
    #: target fraction → d → mean manager CPU percent
    cpu_percent: Dict[float, Dict[int, float]] = field(default_factory=dict)

    def knee(self, target_fraction: float, tolerance: float = 0.03) -> int:
        """Smallest ``d`` whose efficiency is within ``tolerance`` (3 %)
        of the sweep's best — the paper's observed threshold (d = 5)."""
        series = self.efficiency[target_fraction]
        best = max(series.values())
        for distance in sorted(series):
            if series[distance] >= best * (1 - tolerance):
                return distance
        return max(series)  # pragma: no cover - series is non-empty

    def render(self) -> str:
        rows = []
        for target in sorted(self.efficiency):
            for distance in self.distances:
                rows.append(
                    [
                        f"{target:.0%}",
                        distance,
                        self.efficiency[target][distance],
                        self.cpu_percent[target][distance],
                    ]
                )
        return format_table(
            ["target", "d", "norm perf/watt (vs d=1)", "manager CPU %"],
            rows,
        )


def run_fig5_3(
    spec: Optional[PlatformSpec] = None,
    benchmarks: Optional[List[str]] = None,
    distances: Tuple[int, ...] = DISTANCES,
    targets: Tuple[float, ...] = TARGETS,
    n_units: Optional[int] = None,
    seed: int = 0,
) -> DistanceSweep:
    """Run the HARS-EI distance sweep for both targets."""
    spec = spec or odroid_xu3()
    names = benchmarks if benchmarks is not None else list(BENCHMARKS)
    sweep = DistanceSweep(distances=distances)
    for target in targets:
        raw_pp: Dict[int, List[float]] = {d: [] for d in distances}
        raw_cpu: Dict[int, List[float]] = {d: [] for d in distances}
        for name in names:
            shape = RunShape(
                benchmark=name,
                n_units=n_units,
                target_fraction=target,
                seed=seed,
            )
            for distance in distances:
                metrics = run(
                    f"hars-d{distance}", shape, RunConfig(spec=spec)
                ).metrics
                raw_pp[distance].append(metrics.perf_per_watt)
                raw_cpu[distance].append(metrics.manager_cpu_percent)
        gm = {d: geometric_mean(raw_pp[d]) for d in distances}
        base = gm[distances[0]]
        sweep.efficiency[target] = {d: gm[d] / base for d in distances}
        sweep.cpu_percent[target] = {d: mean(raw_cpu[d]) for d in distances}
    return sweep
