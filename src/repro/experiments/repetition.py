"""Seed-repetition statistics for experiment runs.

The paper reports single-run numbers; an open-source harness should
quantify run-to-run variation.  Workload noise is seeded, so repeating a
run over a seed set gives honest spread estimates: mean, sample standard
deviation, and a normal-approximation 95 % confidence interval of the
perf/watt metric per version.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.runner import RunConfig, RunShape, run
from repro.platform.spec import PlatformSpec, odroid_xu3


@dataclass(frozen=True)
class Spread:
    """Summary statistics of one metric over repeated seeded runs."""

    mean: float
    std: float
    n: int

    @property
    def ci95_half_width(self) -> float:
        """Half-width of the normal-approximation 95 % interval."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    def summary(self) -> str:
        return f"{self.mean:.3f} ± {self.ci95_half_width:.3f} (n={self.n})"


def spread_of(values: Sequence[float]) -> Spread:
    """Mean / sample std / count of a value list."""
    if not values:
        raise ConfigurationError("no values to summarize")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Spread(mean=mean, std=0.0, n=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return Spread(mean=mean, std=math.sqrt(variance), n=n)


def repeat_single(
    version: str,
    shape: RunShape,
    seeds: Sequence[int],
    spec: Optional[PlatformSpec] = None,
) -> Tuple[Spread, List[float]]:
    """Run one (benchmark, version) across seeds; return the perf/watt
    spread and the raw values."""
    if not seeds:
        raise ConfigurationError("need at least one seed")
    spec = spec or odroid_xu3()
    values = []
    for seed in seeds:
        seeded = RunShape(
            benchmark=shape.benchmark,
            n_units=shape.n_units,
            n_threads=shape.n_threads,
            target_fraction=shape.target_fraction,
            tolerance=shape.tolerance,
            seed=seed,
            tick_s=shape.tick_s,
            adapt_every=shape.adapt_every,
        )
        values.append(
            run(version, seeded, RunConfig(spec=spec)).metrics.perf_per_watt
        )
    return spread_of(values), values


def compare_with_spread(
    versions: Sequence[str],
    shape: RunShape,
    seeds: Sequence[int],
    spec: Optional[PlatformSpec] = None,
) -> Dict[str, Spread]:
    """Perf/watt spread per version on one benchmark shape."""
    return {
        version: repeat_single(version, shape, seeds, spec)[0]
        for version in versions
    }


def significantly_better(a: Spread, b: Spread) -> bool:
    """Whether ``a`` beats ``b`` beyond both 95 % intervals (a coarse
    two-sided check, adequate for figure-shape claims)."""
    return a.mean - a.ci95_half_width > b.mean + b.ci95_half_width
