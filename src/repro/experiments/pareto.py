"""Rate/power Pareto analysis of the system-state space.

A diagnostic the paper's evaluation implies but never shows: where do
the states a runtime *settles in* sit relative to the platform's true
rate/power trade-off frontier?  The frontier comes from the
static-optimal oracle (ground-truth rate and power per state under GTS);
a settled state's quality is its excess power over the cheapest
frontier point that still delivers its rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baselines.static_optimal import evaluate_all_states
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.spec import PlatformSpec
from repro.workloads.base import WorkloadModel


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (rate, watts) operating point."""

    state: SystemState
    rate: float
    watts: float


class ParetoFrontier:
    """The non-dominated frontier of a workload's state space."""

    def __init__(self, points: Sequence[ParetoPoint]):
        if not points:
            raise ConfigurationError("empty frontier")
        # Ascending by rate; by construction watts ascend with rate too.
        self._points: List[ParetoPoint] = sorted(
            points, key=lambda p: (p.rate, p.watts)
        )

    @property
    def points(self) -> Tuple[ParetoPoint, ...]:
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def min_watts_for_rate(self, rate: float) -> Optional[float]:
        """Cheapest frontier power delivering at least ``rate``.

        ``None`` when the rate exceeds the platform's maximum.
        """
        if rate < 0:
            raise ConfigurationError("negative rate")
        candidates = [p.watts for p in self._points if p.rate >= rate - 1e-12]
        return min(candidates) if candidates else None

    def excess_power(self, rate: float, watts: float) -> Optional[float]:
        """How many watts above the frontier a measured point sits.

        Slightly negative values (a measured point beating the oracle
        frontier, e.g. HARS's own scheduler outperforming GTS) are
        clamped to zero.  ``None`` if the rate is off-frontier.
        """
        floor = self.min_watts_for_rate(rate)
        if floor is None:
            return None
        return max(0.0, watts - floor)

    def excess_ratio(self, rate: float, watts: float) -> Optional[float]:
        """Excess power as a fraction of the frontier floor."""
        floor = self.min_watts_for_rate(rate)
        if floor is None or floor <= 0:
            return None
        return max(0.0, watts / floor - 1.0)


def build_frontier(
    spec: PlatformSpec,
    model: WorkloadModel,
    seed: int = 0,
) -> ParetoFrontier:
    """Oracle-evaluate every state and keep the non-dominated set.

    A state is dominated if another state is at least as fast and
    strictly cheaper (or as cheap and strictly faster).
    """
    target = PerformanceTarget(1.0, 1.0, 1.0)  # unused by the oracle rate
    evaluations = evaluate_all_states(spec, model, target, seed)
    by_rate = sorted(evaluations, key=lambda e: (-e.rate, e.watts))
    frontier: List[ParetoPoint] = []
    cheapest_so_far = float("inf")
    for evaluation in by_rate:
        if evaluation.watts < cheapest_so_far - 1e-12:
            cheapest_so_far = evaluation.watts
            frontier.append(
                ParetoPoint(
                    state=evaluation.state,
                    rate=evaluation.rate,
                    watts=evaluation.watts,
                )
            )
    return ParetoFrontier(frontier)
