"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.fig5_1 import (
    PerfWattComparison,
    run_fig5_1,
    run_perf_watt_comparison,
)
from repro.experiments.fig5_2 import gain_compression, run_fig5_2
from repro.experiments.fig5_3 import DISTANCES, DistanceSweep, run_fig5_3
from repro.experiments.fig5_4 import (
    CASES,
    MultiAppComparison,
    case_label,
    run_fig5_4,
)
from repro.experiments.fig5_5_7 import (
    BEHAVIOUR_VERSIONS,
    BehaviourRun,
    run_behaviour,
    run_fig5_5_7,
)
from repro.experiments.metrics import (
    AppRunMetrics,
    RunMetrics,
    geomean_across,
    normalize_to_baseline,
)
from repro.experiments.runner import (
    RunConfig,
    RunOutcome,
    RunShape,
    build_target,
    clear_max_rate_cache,
    measure_max_rate,
    run,
    run_multi,
    run_single,
)
from repro.experiments.accuracy import (
    AccuracyReport,
    StateAccuracy,
    evaluate_accuracy,
)
from repro.experiments.pareto import (
    ParetoFrontier,
    ParetoPoint,
    build_frontier,
)
from repro.experiments.repetition import (
    Spread,
    compare_with_spread,
    repeat_single,
    significantly_better,
    spread_of,
)
from repro.experiments.serialize import (
    behaviour_to_dict,
    comparison_to_dict,
    dump_json,
    load_json,
    multi_comparison_to_dict,
    run_metrics_from_dict,
    run_metrics_to_dict,
    sweep_to_dict,
)
from repro.experiments.table3_1 import build_table, regime_of, render_table
from repro.experiments.versions import (
    MULTI_APP_VERSIONS,
    SINGLE_APP_VERSIONS,
    attach_multi_app_version,
    attach_single_app_version,
    version_label,
)

__all__ = [
    "AccuracyReport",
    "AppRunMetrics",
    "ParetoFrontier",
    "ParetoPoint",
    "StateAccuracy",
    "build_frontier",
    "evaluate_accuracy",
    "BEHAVIOUR_VERSIONS",
    "BehaviourRun",
    "CASES",
    "DISTANCES",
    "DistanceSweep",
    "MULTI_APP_VERSIONS",
    "MultiAppComparison",
    "PerfWattComparison",
    "RunConfig",
    "RunMetrics",
    "RunOutcome",
    "RunShape",
    "SINGLE_APP_VERSIONS",
    "Spread",
    "behaviour_to_dict",
    "compare_with_spread",
    "comparison_to_dict",
    "dump_json",
    "load_json",
    "multi_comparison_to_dict",
    "repeat_single",
    "run_metrics_from_dict",
    "run_metrics_to_dict",
    "significantly_better",
    "spread_of",
    "sweep_to_dict",
    "attach_multi_app_version",
    "attach_single_app_version",
    "build_table",
    "build_target",
    "case_label",
    "clear_max_rate_cache",
    "gain_compression",
    "geomean_across",
    "measure_max_rate",
    "normalize_to_baseline",
    "regime_of",
    "render_table",
    "run",
    "run_behaviour",
    "run_fig5_1",
    "run_fig5_2",
    "run_fig5_3",
    "run_fig5_4",
    "run_fig5_5_7",
    "run_multi",
    "run_perf_watt_comparison",
    "run_single",
    "version_label",
]
