"""Table 3.1: thread assignment to the big and little clusters.

Regenerates the paper's assignment table for the evaluation platform
(``C_B = C_L = 4``, ``r = r0 = 1.5``) over a range of thread counts, with
the condition row each ``T`` falls into — a direct check of the
assignment logic the performance estimator builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.assignment import ThreadAssignment, assign_threads
from repro.core.perf_estimator import DEFAULT_R0
from repro.errors import ConfigurationError
from repro.experiments.report import format_table


@dataclass(frozen=True)
class AssignmentRow:
    """One table row: thread count, condition regime, and the split."""

    n_threads: int
    regime: str
    assignment: ThreadAssignment


def regime_of(n_threads: int, c_big: int, c_little: int, ratio: float) -> str:
    """Which of the four Table 3.1 conditions applies."""
    if n_threads <= 0:
        raise ConfigurationError("thread count must be positive")
    knee = ratio * c_big
    if n_threads <= c_big:
        return "T <= C_B"
    if n_threads <= knee:
        return "C_B < T <= r*C_B"
    if n_threads <= knee + c_little:
        return "r*C_B < T <= r*C_B + C_L"
    return "r*C_B + C_L < T"


def build_table(
    c_big: int = 4,
    c_little: int = 4,
    ratio: float = DEFAULT_R0,
    max_threads: int = 16,
) -> List[AssignmentRow]:
    """Assignment rows for ``T = 1 .. max_threads``."""
    rows = []
    for n_threads in range(1, max_threads + 1):
        rows.append(
            AssignmentRow(
                n_threads=n_threads,
                regime=regime_of(n_threads, c_big, c_little, ratio),
                assignment=assign_threads(n_threads, c_big, c_little, ratio),
            )
        )
    return rows


def render_table(rows: List[AssignmentRow]) -> str:
    """The table as text, matching the paper's column layout."""
    body = [
        [
            row.n_threads,
            row.assignment.t_big,
            row.assignment.t_little,
            row.assignment.used_big,
            row.assignment.used_little,
            row.regime,
        ]
        for row in rows
    ]
    return format_table(
        ["T", "T_B", "T_L", "C_B,U", "C_L,U", "regime"], body
    )
