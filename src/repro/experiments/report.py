"""Plain-text rendering of experiment results.

Everything the paper shows as a figure is reproduced here as aligned
text: per-benchmark tables (one column per version), simple horizontal
bar charts, and sampled behaviour-trace listings.  The renderers are
pure functions over the result dataclasses so they are easy to test.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Width of the bar area in bar charts.
_BAR_WIDTH = 40


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Align a table of mixed str/float cells as monospace text."""
    if not headers:
        raise ConfigurationError("table needs headers")
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(r[col]) for r in rendered) for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not values:
        raise ConfigurationError("bar chart needs values")
    peak = max_value if max_value is not None else max(values.values())
    if peak <= 0:
        raise ConfigurationError("bar chart needs a positive maximum")
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        filled = int(round(_BAR_WIDTH * max(0.0, value) / peak))
        bar = "#" * filled
        lines.append(
            f"{label.rjust(label_width)} | {bar:<{_BAR_WIDTH}} "
            f"{value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bars(
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    data: Mapping[str, Mapping[str, float]],
    title: str = "",
) -> str:
    """Figure-style grouped table: rows = benchmarks, columns = versions."""
    rows = []
    for row_label in row_labels:
        if row_label not in data:
            raise ConfigurationError(f"missing row {row_label!r}")
        row: List[object] = [row_label]
        for column in column_labels:
            row.append(float(data[row_label][column]))
        rows.append(row)
    table = format_table(["benchmark", *column_labels], rows)
    return f"{title}\n{table}" if title else table


def sampled_series(
    series: Sequence[Tuple[int, float]],
    max_points: int = 25,
    value_format: str = "{:.2f}",
) -> str:
    """Condense a long (index, value) series to at most ``max_points``."""
    if not series:
        return "(empty series)"
    step = max(1, len(series) // max_points)
    sampled = list(series)[::step]
    return "  ".join(
        f"{index}:{value_format.format(value)}" for index, value in sampled
    )
