"""Experiment runner: build, run and measure one simulation.

The runner owns the methodology details shared by every figure:

* the *maximum achievable performance* of a benchmark is measured by a
  baseline run (max cores, max frequency, GTS) — targets are fractions
  of it (50 % ± 5 % default, 75 % ± 5 % high);
* every run gets a fresh simulation, platform and workload, seeded
  deterministically;
* runs are bounded by a generous safety timeout so a mis-adapted run
  terminates rather than hanging.

Measured max rates are memoized per (platform, benchmark, shape) because
figure sweeps revisit them constantly.
"""

from __future__ import annotations

import copy
import warnings
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.manager import HarsManager
from repro.errors import ConfigurationError
from repro.experiments.metrics import AppRunMetrics, RunMetrics
from repro.faults import FaultConfig, FaultInjector
from repro.guardrails import GuardrailConfig, GuardrailLayer
from repro.experiments.versions import (
    attach_multi_app_version,
    attach_single_app_version,
)
from repro.fleet.config import FleetConfig
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.spec import PlatformSpec, odroid_xu3
from repro.sim.engine import PROFILES, Simulation
from repro.sim.process import SimApp
from repro.sim.tracing import TraceRecorder
from repro.supervision import (
    CheckpointStore,
    Checkpointer,
    Supervisor,
    SupervisorConfig,
)
from repro.telemetry.hub import TelemetryConfig, TelemetryHub
from repro.workloads.parsec import make_benchmark, resolve_name

#: Default target window half-width (the paper's ±5 %).
DEFAULT_TOLERANCE = 0.05

_MAX_RATE_CACHE: Dict[Tuple, float] = {}

#: Sentinel distinguishing "kwarg not passed" from an explicit default
#: on the deprecated ``run_single``/``run_multi`` signatures.
_UNSET = object()


@dataclass(frozen=True)
class RunShape:
    """Everything that defines one run apart from the version."""

    benchmark: str
    n_units: Optional[int] = None
    n_threads: int = 8
    target_fraction: float = 0.5
    tolerance: float = DEFAULT_TOLERANCE
    seed: int = 0
    tick_s: float = 0.01
    adapt_every: int = 5

    def __post_init__(self) -> None:
        resolve_name(self.benchmark)
        if not 0 < self.target_fraction <= 1:
            raise ConfigurationError("target fraction must be in (0, 1]")


@dataclass(frozen=True)
class RunConfig:
    """Everything that configures a run apart from version and shapes.

    One frozen object replaces the keyword list that grew by one per
    PR: :func:`run` (and the deprecated :func:`run_single` /
    :func:`run_multi` wrappers) take a ``RunConfig`` and thread it
    through unchanged.  All fields default to the plain fast-profile
    run every figure uses.

    ``profile`` and ``cache_estimates`` change speed only, never
    results — ``profile="vector"`` additionally runs every manager's
    Plan stage on the tensorized batch planner
    (:mod:`repro.kernel.batchplan`), bit-identical to the scalar
    Algorithm 2 sweep; ``faults`` / ``supervision`` / ``checkpoint``
    attach the
    PR-2/3 resilience layers; ``telemetry`` attaches the observation
    hub (:class:`~repro.telemetry.hub.TelemetryHub`) — ``True`` for the
    default :class:`~repro.telemetry.hub.TelemetryConfig`, and provably
    result-neutral either way; ``guardrails`` attaches the runtime
    guardrail layer (:class:`~repro.guardrails.GuardrailLayer`) —
    ``None`` or an all-default :class:`~repro.guardrails.GuardrailConfig`
    attaches nothing and is bit-identical to a run without the layer;
    ``fleet`` switches :func:`run` to the fleet backend
    (:mod:`repro.fleet`) — ``shapes`` must then be ``None`` and the
    version names the routing policy.
    """

    spec: Optional[PlatformSpec] = None
    profile: str = "fast"
    cache_estimates: bool = True
    faults: Optional[FaultConfig] = None
    supervision: Union[SupervisorConfig, bool, None] = None
    checkpoint: Optional[float] = None
    telemetry: Union[TelemetryConfig, bool, None] = None
    guardrails: Optional[GuardrailConfig] = None
    fleet: Optional[FleetConfig] = None
    #: Attachment mode: ``None`` runs in-process; ``"loopback"`` routes
    #: the run through an in-process adaptation-control-plane server
    #: over the JSONL wire protocol (:mod:`repro.acp`), bit-identically;
    #: a ``unix://<path>`` or ``http://host:port`` endpoint attaches to
    #: a ``hars-repro serve`` daemon.
    acp: Optional[str] = None

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ConfigurationError(
                f"unknown profile {self.profile!r}; valid: {PROFILES}"
            )
        if self.checkpoint is not None and self.checkpoint <= 0:
            raise ConfigurationError("checkpoint cadence must be positive")
        if self.acp is not None and not isinstance(self.acp, str):
            raise ConfigurationError(
                "acp must be None, 'loopback', or an endpoint string"
            )
        if self.acp is not None and self.fleet is not None:
            raise ConfigurationError(
                "acp attachment does not support fleet runs"
            )

    #: Sub-config fields ``with_`` deep-copies when not replaced.  The
    #: platform spec is excluded on purpose: it is immutable in practice
    #: and its identity keys the calibration cache.
    _SUBCONFIG_FIELDS = (
        "faults",
        "supervision",
        "telemetry",
        "guardrails",
        "fleet",
    )

    def with_(self, **changes) -> "RunConfig":
        """A copy with some fields replaced (sweep convenience).

        Sub-configs the caller does *not* replace are deep-copied rather
        than shared: ``dataclasses.replace`` alone would alias mutable
        payloads (a ``FaultConfig`` built from a schedule *list*, say)
        between the sibling configs, so editing the schedule after a
        ``with_()`` would silently rewrite the other run too — at fleet
        scale, one base config fans out to hundreds of nodes and the
        aliasing bites immediately.
        """
        for name in self._SUBCONFIG_FIELDS:
            if name not in changes:
                changes[name] = copy.deepcopy(getattr(self, name))
        return replace(self, **changes)

    @property
    def telemetry_config(self) -> Optional[TelemetryConfig]:
        """The effective telemetry configuration, or ``None`` if off."""
        if not self.telemetry:
            return None
        if isinstance(self.telemetry, TelemetryConfig):
            return self.telemetry
        return TelemetryConfig()


@dataclass
class RunOutcome:
    """Runner output: metrics plus the artefacts figures need."""

    metrics: RunMetrics
    trace: TraceRecorder
    target: PerformanceTarget
    max_rate: float
    #: Present when the run injected faults (``faults=`` was passed with
    #: at least one non-zero rate); carries injection/recovery counters.
    fault_injector: Optional[FaultInjector] = None
    #: Present when ``supervision=`` was passed; carries the quarantine
    #: ledger and eviction counters.
    supervisor: Optional[Supervisor] = None
    #: Present when ``checkpoint=`` was passed; the latest controller
    #: snapshots.
    checkpoint_store: Optional[CheckpointStore] = None
    #: Present when ``telemetry`` was enabled; carries the metrics
    #: registry (``outcome.telemetry.registry``) and the trace, ready
    #: for the :mod:`repro.telemetry.exporters`.
    telemetry: Optional[TelemetryHub] = None
    #: Present when ``guardrails=`` enabled at least one guardrail;
    #: carries trip counters, budget shares, and watchdog residuals.
    guardrails: Optional[GuardrailLayer] = None


def _attach_supervision(
    sim: Simulation,
    supervision: Union[SupervisorConfig, bool, None],
    checkpoint: Optional[float],
    checkpoint_store: Optional[CheckpointStore] = None,
) -> Tuple[Optional[Supervisor], Optional[CheckpointStore]]:
    """Attach the Supervisor / Checkpointer after the version controllers.

    ``supervision`` is a :class:`SupervisorConfig` (or ``True`` for the
    defaults); ``checkpoint`` is a snapshot cadence in simulated
    seconds.  Either can be used without the other.  ``checkpoint_store``
    seeds the Checkpointer with an existing store (the ACP daemon passes
    a recovered one so a restarted session restores warm).
    """
    supervisor: Optional[Supervisor] = None
    store: Optional[CheckpointStore] = None
    if supervision:
        config = (
            supervision
            if isinstance(supervision, SupervisorConfig)
            else None
        )
        supervisor = Supervisor(config)
        sim.add_controller(supervisor)
    if checkpoint is not None:
        checkpointer = Checkpointer(
            cadence_s=checkpoint, store=checkpoint_store
        )
        store = checkpointer.store
        sim.add_controller(checkpointer)
    return supervisor, store


def measure_max_rate(spec: PlatformSpec, shape: RunShape) -> float:
    """Maximum achievable heartbeat rate: a baseline run's overall rate."""
    key = (
        spec.name,
        resolve_name(shape.benchmark),
        shape.n_units,
        shape.n_threads,
        shape.seed,
        shape.tick_s,
    )
    if key in _MAX_RATE_CACHE:
        return _MAX_RATE_CACHE[key]
    sim = Simulation(spec, tick_s=shape.tick_s)
    model = make_benchmark(shape.benchmark, shape.n_units, shape.n_threads)
    model.reset(shape.seed)
    placeholder = PerformanceTarget(1.0, 1.0, 1.0)
    app = sim.add_app(SimApp(shape.benchmark, model, placeholder))
    attach_single_app_version(sim, app, "baseline")
    sim.run(until_s=_safety_horizon(model.total_heartbeats(), rate_floor=0.05))
    rate = app.log.overall_rate()
    if rate is None or rate <= 0:
        raise ConfigurationError(
            f"{shape.benchmark}: baseline run produced no measurable rate"
        )
    _MAX_RATE_CACHE[key] = rate
    return rate


def clear_max_rate_cache() -> None:
    """Forget memoized baseline rates (tests use this)."""
    _MAX_RATE_CACHE.clear()


def build_target(spec: PlatformSpec, shape: RunShape) -> PerformanceTarget:
    """The paper's target: ``fraction ± tolerance`` of max achievable."""
    max_rate = measure_max_rate(spec, shape)
    return PerformanceTarget.fraction_of(
        max_rate, shape.target_fraction, shape.tolerance
    )


def _attach_guardrails(
    sim: Simulation, config: RunConfig
) -> Optional[GuardrailLayer]:
    """Attach the guardrail layer between supervision and telemetry.

    A missing or all-default :class:`GuardrailConfig` attaches nothing:
    the run stays bit-identical to one predating the guardrail layer.
    """
    guardrail_config = config.guardrails
    if guardrail_config is None or not guardrail_config.enabled:
        return None
    layer = GuardrailLayer(guardrail_config)
    sim.add_controller(layer)
    return layer


def _attach_telemetry(
    sim: Simulation, version: str, config: RunConfig
) -> Optional[TelemetryHub]:
    """Attach the telemetry hub last, so it observes everything."""
    telemetry_config = config.telemetry_config
    if telemetry_config is None:
        return None
    hub = TelemetryHub(telemetry_config)
    hub.set_run_info(version=version, profile=config.profile)
    sim.add_controller(hub)
    return hub


def run(
    version: str,
    shapes: Union[RunShape, Sequence[RunShape], None] = None,
    config: Optional[RunConfig] = None,
):
    """Run ``version`` over ``shapes`` under one :class:`RunConfig`.

    The unified entry point every figure, benchmark, and example uses:

    * a single :class:`RunShape` runs one application (the Figure
      5.1–5.3 methodology — targets as fractions of a solo baseline's
      maximum achievable rate);
    * a sequence of shapes runs them concurrently under a multi-app
      version (the Figure 5.4 / Section 5.2.1 methodology);
    * with ``config.fleet`` set, ``version`` names a routing policy
      (``"round-robin"``, ``"least-loaded"``, ``"deadline-risk"``),
      ``shapes`` must be ``None``, and the call returns a
      :class:`~repro.fleet.cluster.FleetResult` instead of a
      :class:`RunOutcome`.

    ``config`` defaults to ``RunConfig()`` — fast profile, cached
    estimates, no faults, no supervision, no telemetry.
    """
    config = config or RunConfig()
    if config.acp is not None:
        from repro.acp.client import run_via_acp

        return run_via_acp(version, shapes, config)
    if config.fleet is not None:
        if shapes is not None:
            raise ConfigurationError(
                "a fleet run takes no shapes — the FleetConfig's trace "
                "defines the workload"
            )
        from repro.fleet import run_fleet

        return run_fleet(router=version, config=config.fleet)
    if shapes is None:
        raise ConfigurationError(
            "run() needs shapes unless config.fleet is set"
        )
    if isinstance(shapes, RunShape):
        return _run_single(version, shapes, config)
    shapes = list(shapes)
    if any(not isinstance(shape, RunShape) for shape in shapes):
        raise ConfigurationError(
            "run() takes one RunShape or a sequence of RunShapes"
        )
    return _run_multi(version, shapes, config)


@dataclass
class PreparedRun:
    """A fully-constructed simulation that has not been stepped yet.

    Both execution paths share this object so they are the same run by
    construction: the in-process path (:func:`run`) steps it to its
    horizon in one ``sim.run`` call; an ACP session
    (:mod:`repro.acp.session`) steps it in bounded segments — interleaving
    control frames — through the *same* ``sim.run`` loop, so the tick
    sequence, and therefore every result bit, is identical.
    """

    version: str
    sim: Simulation
    apps: List[SimApp]
    controllers: List
    target: PerformanceTarget
    max_rate: float
    horizon_s: float
    supervisor: Optional[Supervisor]
    checkpoint_store: Optional[CheckpointStore]
    telemetry: Optional[TelemetryHub]
    guardrails: Optional[GuardrailLayer]

    def finish(self) -> RunOutcome:
        """Harvest the outcome once the simulation has run its course."""
        if self.telemetry is not None:
            self.telemetry.finalize()
        return RunOutcome(
            metrics=_collect(
                self.version,
                self.sim,
                self.apps,
                self.controllers,
                self.sim.clock.now_s,
            ),
            trace=self.sim.trace,
            target=self.target,
            max_rate=self.max_rate,
            fault_injector=self.sim.fault_injector,
            supervisor=self.supervisor,
            checkpoint_store=self.checkpoint_store,
            telemetry=self.telemetry,
            guardrails=self.guardrails,
        )


def prepare_single(
    version: str,
    shape: RunShape,
    config: RunConfig,
    checkpoint_store: Optional[CheckpointStore] = None,
) -> PreparedRun:
    """Build (but do not step) a single-application run."""
    spec = config.spec or odroid_xu3()
    max_rate = measure_max_rate(spec, shape)
    target = PerformanceTarget.fraction_of(
        max_rate, shape.target_fraction, shape.tolerance
    )
    sim = Simulation(
        spec, tick_s=shape.tick_s, profile=config.profile, faults=config.faults
    )
    model = make_benchmark(shape.benchmark, shape.n_units, shape.n_threads)
    model.reset(shape.seed)
    app = sim.add_app(SimApp(shape.benchmark, model, target))
    controllers = attach_single_app_version(
        sim, app, version,
        adapt_every=shape.adapt_every,
        cache_estimates=config.cache_estimates,
    )
    supervisor, store = _attach_supervision(
        sim, config.supervision, config.checkpoint, checkpoint_store
    )
    guardrails = _attach_guardrails(sim, config)
    hub = _attach_telemetry(sim, version, config)
    return PreparedRun(
        version=version,
        sim=sim,
        apps=[app],
        controllers=controllers,
        target=target,
        max_rate=max_rate,
        horizon_s=_safety_horizon(
            model.total_heartbeats(), rate_floor=target.min_rate / 4
        ),
        supervisor=supervisor,
        checkpoint_store=store,
        telemetry=hub,
        guardrails=guardrails,
    )


def prepare_multi(
    version: str,
    shapes: List[RunShape],
    config: RunConfig,
    checkpoint_store: Optional[CheckpointStore] = None,
) -> PreparedRun:
    """Build (but do not step) a multi-application run."""
    if not shapes:
        raise ConfigurationError("a multi-app run needs at least one shape")
    spec = config.spec or odroid_xu3()
    tick_s = shapes[0].tick_s
    adapt_every = shapes[0].adapt_every
    sim = Simulation(
        spec, tick_s=tick_s, profile=config.profile, faults=config.faults
    )
    apps: List[SimApp] = []
    slowest_floor = float("inf")
    total_beats = 0
    for position, shape in enumerate(shapes):
        max_rate = measure_max_rate(spec, shape)
        target = PerformanceTarget.fraction_of(
            max_rate, shape.target_fraction, shape.tolerance
        )
        model = make_benchmark(shape.benchmark, shape.n_units, shape.n_threads)
        model.reset(shape.seed)
        name = f"{resolve_name(shape.benchmark)}-{position}"
        apps.append(sim.add_app(SimApp(name, model, target)))
        slowest_floor = min(slowest_floor, target.min_rate / 4)
        total_beats = max(total_beats, model.total_heartbeats())
    controllers = attach_multi_app_version(
        sim, version,
        adapt_every=adapt_every,
        cache_estimates=config.cache_estimates,
    )
    supervisor, store = _attach_supervision(
        sim, config.supervision, config.checkpoint, checkpoint_store
    )
    guardrails = _attach_guardrails(sim, config)
    hub = _attach_telemetry(sim, version, config)
    return PreparedRun(
        version=version,
        sim=sim,
        apps=apps,
        controllers=controllers,
        target=apps[0].target,
        max_rate=apps[0].target.avg_rate / shapes[0].target_fraction,
        horizon_s=2 * _safety_horizon(total_beats, rate_floor=slowest_floor),
        supervisor=supervisor,
        checkpoint_store=store,
        telemetry=hub,
        guardrails=guardrails,
    )


def _run_single(version: str, shape: RunShape, config: RunConfig) -> RunOutcome:
    prepared = prepare_single(version, shape, config)
    prepared.sim.run(until_s=prepared.horizon_s)
    return prepared.finish()


def _run_multi(
    version: str, shapes: List[RunShape], config: RunConfig
) -> RunOutcome:
    prepared = prepare_multi(version, shapes, config)
    prepared.sim.run(until_s=prepared.horizon_s)
    return prepared.finish()


#: The legacy per-call keywords RunConfig replaced, in signature order.
_LEGACY_KWARGS = (
    "spec",
    "profile",
    "cache_estimates",
    "faults",
    "supervision",
    "checkpoint",
)


def _coerce_legacy_config(
    caller: str, config: Optional[RunConfig], legacy: Dict[str, object]
) -> RunConfig:
    """Fold deprecated per-call keywords into a :class:`RunConfig`.

    Passing any legacy keyword emits a :class:`DeprecationWarning`;
    mixing them with ``config=`` is ambiguous and refused.
    """
    passed = {k: v for k, v in legacy.items() if v is not _UNSET}
    if not passed:
        return config or RunConfig()
    if config is not None:
        raise ConfigurationError(
            f"{caller}: pass either config= or the legacy keywords "
            f"({', '.join(sorted(passed))}), not both"
        )
    warnings.warn(
        f"{caller}({', '.join(sorted(passed))}=...) is deprecated; "
        f"build a RunConfig and call repro.experiments.run() instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return RunConfig(**passed)


def run_single(
    version: str,
    shape: RunShape,
    spec=_UNSET,
    profile=_UNSET,
    cache_estimates=_UNSET,
    faults=_UNSET,
    supervision=_UNSET,
    checkpoint=_UNSET,
    config: Optional[RunConfig] = None,
) -> RunOutcome:
    """Deprecated single-app wrapper around :func:`run`.

    Kept for downstream callers; the per-call keywords are deprecated
    in favour of ``config=`` (a :class:`RunConfig`) or calling
    :func:`run` directly.
    """
    legacy = dict(
        spec=spec,
        profile=profile,
        cache_estimates=cache_estimates,
        faults=faults,
        supervision=supervision,
        checkpoint=checkpoint,
    )
    return _run_single(
        version, shape, _coerce_legacy_config("run_single", config, legacy)
    )


def run_multi(
    version: str,
    shapes: List[RunShape],
    spec=_UNSET,
    profile=_UNSET,
    cache_estimates=_UNSET,
    faults=_UNSET,
    supervision=_UNSET,
    checkpoint=_UNSET,
    config: Optional[RunConfig] = None,
) -> RunOutcome:
    """Deprecated multi-app wrapper around :func:`run`.

    All applications start at the same time (the paper's Section 5.2.1
    methodology); each gets its own target as a fraction of *its own*
    maximum achievable rate measured by a solo baseline run.  The run
    finishes when every application completes its work (evicted apps
    count as finished).
    """
    if not shapes:
        raise ConfigurationError("run_multi needs at least one shape")
    legacy = dict(
        spec=spec,
        profile=profile,
        cache_estimates=cache_estimates,
        faults=faults,
        supervision=supervision,
        checkpoint=checkpoint,
    )
    return _run_multi(
        version,
        list(shapes),
        _coerce_legacy_config("run_multi", config, legacy),
    )


def _safety_horizon(total_heartbeats: int, rate_floor: float) -> float:
    """Upper bound on run time: the workload at a pessimistic rate."""
    if rate_floor <= 0:
        raise ConfigurationError("rate floor must be positive")
    return total_heartbeats / rate_floor + 120.0


def _collect(
    version: str,
    sim: Simulation,
    apps: List[SimApp],
    controllers: List,
    elapsed: float,
) -> RunMetrics:
    app_metrics = []
    for app in apps:
        overall = app.log.overall_rate() or 0.0
        try:
            mean_norm_perf = app.monitor.mean_normalized_performance()
        except ConfigurationError:
            # An app crashed/hung/was evicted before filling one rate
            # window: it delivered no usable performance.
            mean_norm_perf = 0.0
        app_metrics.append(
            AppRunMetrics(
                app_name=app.name,
                heartbeats=len(app.log),
                overall_rate=overall,
                mean_normalized_perf=mean_norm_perf,
                target_min=app.target.min_rate,
                target_avg=app.target.avg_rate,
                target_max=app.target.max_rate,
            )
        )
    overhead = sum(c.cpu_overhead_seconds() for c in controllers)
    final_state = ""
    for controller in controllers:
        state = getattr(controller, "state", None)
        if state is not None and hasattr(state, "describe"):
            final_state = state.describe()
    return RunMetrics(
        version=version,
        apps=tuple(app_metrics),
        elapsed_s=elapsed,
        avg_power_w=sim.sensor.average_power_w(),
        manager_overhead_s=overhead,
        final_state=final_state,
    )
