"""Figure 5.4: multi-application perf/watt.

Six benchmark pairs run concurrently under four versions (Baseline,
CONS-I, MP-HARS-I, MP-HARS-E), each pair's bar normalized to its
baseline, plus the geometric mean.  The paper's headline: MP-HARS-E beats
the baseline and CONS-I on geomean (by 217 % and 46 % there), except in
case 6 (BO+BL) where CONS-I wins because blackscholes' heartbeat-free
startup lets the global model settle before blackscholes competes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.metrics import (
    RunMetrics,
    geomean_across,
    normalize_to_baseline,
)
from repro.experiments.report import grouped_bars
from repro.experiments.runner import RunConfig, RunShape, run
from repro.experiments.versions import MULTI_APP_VERSIONS, version_label
from repro.platform.spec import PlatformSpec, odroid_xu3
from repro.workloads.parsec import SHORT_CODES, resolve_name

#: The paper's six cases, in figure order.
CASES: Tuple[Tuple[str, str], ...] = (
    ("bodytrack", "swaptions"),      # case 1
    ("blackscholes", "swaptions"),   # case 2
    ("fluidanimate", "blackscholes"),  # case 3
    ("bodytrack", "fluidanimate"),   # case 4
    ("fluidanimate", "swaptions"),   # case 5
    ("bodytrack", "blackscholes"),   # case 6
)

GM = "GM"


def case_label(pair: Tuple[str, str], index: int) -> str:
    """Figure-style label: ``case4:BO+FL``."""
    codes = "+".join(SHORT_CODES[resolve_name(name)] for name in pair)
    return f"case{index + 1}:{codes}"


@dataclass
class MultiAppComparison:
    """Result of the Figure 5.4 grid."""

    versions: Tuple[str, ...]
    #: case label → version → perf/watt normalized to baseline
    normalized: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: case label → version → raw metrics
    raw: Dict[str, Dict[str, RunMetrics]] = field(default_factory=dict)

    @property
    def geomean(self) -> Dict[str, float]:
        return geomean_across(list(self.normalized.values()), list(self.versions))

    def render(self) -> str:
        data = dict(self.normalized)
        data[GM] = self.geomean
        return grouped_bars(
            [*self.normalized.keys(), GM],
            [version_label(v) for v in self.versions],
            {
                row: {version_label(v): values[v] for v in self.versions}
                for row, values in data.items()
            },
            title="Multi-application perf/watt normalized to baseline",
        )


def run_fig5_4(
    spec: Optional[PlatformSpec] = None,
    cases: Tuple[Tuple[str, str], ...] = CASES,
    versions: Tuple[str, ...] = MULTI_APP_VERSIONS,
    n_units: Optional[int] = None,
    seed: int = 0,
) -> MultiAppComparison:
    """Run the six-case, four-version multi-application grid."""
    spec = spec or odroid_xu3()
    comparison = MultiAppComparison(versions=versions)
    for index, pair in enumerate(cases):
        shapes = [
            RunShape(benchmark=name, n_units=n_units, seed=seed)
            for name in pair
        ]
        per_version: Dict[str, RunMetrics] = {}
        for version in versions:
            per_version[version] = run(
                version, shapes, RunConfig(spec=spec)
            ).metrics
        label = case_label(pair, index)
        comparison.raw[label] = per_version
        comparison.normalized[label] = normalize_to_baseline(per_version)
    return comparison
