"""Estimator-accuracy validation.

HARS's decisions are only as good as its two estimators, so a credible
reproduction should quantify their error against ground truth.  For a
sample of system states this module runs short measured simulations and
compares

* the **performance estimator**'s transferred rate prediction — rate at
  a reference state scaled by the modelled capacity ratio — against the
  measured rate, and
* the **power estimator**'s prediction (at the measured utilizations'
  modelled equivalents) against the sensor's measured CPU power,

reporting per-state relative errors and the MAPE.  The performance error
folds in everything the paper discusses: the fixed r0 assumption, the
equal-work-split assumption, and GTS-vs-pinned placement differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.power_estimator import PowerEstimator
from repro.core.schedulers import CHUNK, apply_assignment
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.cluster import BIG, LITTLE
from repro.platform.spec import PlatformSpec
from repro.platform.topology import first_n
from repro.sim.engine import Simulation
from repro.sim.process import SimApp

#: Default state sample: spread across both clusters and the freq range.
DEFAULT_SAMPLE: Tuple[SystemState, ...] = (
    SystemState(4, 4, 1600, 1300),
    SystemState(4, 0, 1200, 800),
    SystemState(2, 2, 1000, 1000),
    SystemState(0, 4, 800, 1100),
    SystemState(1, 4, 1400, 1200),
    SystemState(3, 1, 900, 900),
)


@dataclass(frozen=True)
class StateAccuracy:
    """Measured vs predicted at one state."""

    state: SystemState
    measured_rate: float
    predicted_rate: float
    measured_watts: float
    predicted_watts: float

    @property
    def rate_error(self) -> float:
        """Relative rate error (signed; positive = overprediction)."""
        return (self.predicted_rate - self.measured_rate) / self.measured_rate

    @property
    def power_error(self) -> float:
        return (self.predicted_watts - self.measured_watts) / self.measured_watts


@dataclass(frozen=True)
class AccuracyReport:
    """Per-state accuracies plus aggregate MAPE."""

    benchmark: str
    reference_state: SystemState
    rows: Tuple[StateAccuracy, ...]

    @property
    def rate_mape(self) -> float:
        return sum(abs(r.rate_error) for r in self.rows) / len(self.rows)

    @property
    def power_mape(self) -> float:
        return sum(abs(r.power_error) for r in self.rows) / len(self.rows)

    def render(self) -> str:
        lines = [
            f"estimator accuracy — {self.benchmark} "
            f"(reference {self.reference_state.describe()})",
            f"{'state':>16s} {'rate meas/pred':>18s} {'err':>7s} "
            f"{'watts meas/pred':>18s} {'err':>7s}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.state.describe():>16s} "
                f"{row.measured_rate:8.3f}/{row.predicted_rate:<8.3f} "
                f"{row.rate_error:+6.1%} "
                f"{row.measured_watts:8.2f}/{row.predicted_watts:<8.2f} "
                f"{row.power_error:+6.1%}"
            )
        lines.append(
            f"MAPE: rate {self.rate_mape:.1%}, power {self.power_mape:.1%}"
        )
        return "\n".join(lines)


def _measure_state(
    spec: PlatformSpec,
    model_factory,
    state: SystemState,
    perf_estimator: PerformanceEstimator,
    probe_units: int,
    seed: int,
    tick_s: float,
) -> Tuple[float, float]:
    """Measured (rate, CPU watts) with HARS-style pinning at ``state``."""
    model = model_factory()
    model.reset(seed)
    sim = Simulation(spec, tick_s=tick_s)
    app = sim.add_app(
        SimApp("probe", model, PerformanceTarget(1.0, 1.0, 1.0))
    )
    sim.dvfs.set_frequency(BIG, state.f_big_mhz)
    sim.dvfs.set_frequency(LITTLE, state.f_little_mhz)
    estimate = perf_estimator.estimate(state, app.n_threads)
    apply_assignment(
        app,
        estimate.assignment,
        first_n(spec, BIG, estimate.assignment.used_big),
        first_n(spec, LITTLE, estimate.assignment.used_little),
        CHUNK,
    )
    horizon = probe_units * 20.0 + 60.0
    # Skip any heartbeat-free startup phase (e.g. blackscholes' input
    # reading): the estimators model the steady heartbeat-emitting
    # region, so power is measured from the first heartbeat on.
    while len(app.log) == 0 and sim.clock.now_s < horizon:
        sim.step()
    sim.sensor.reset()
    sim.run(until_s=horizon)
    rate = app.log.overall_rate()
    if rate is None or rate <= 0:
        raise ConfigurationError(
            f"{state.describe()}: probe produced no measurable rate"
        )
    cpu_watts = sim.sensor.average_power_w(BIG) + sim.sensor.average_power_w(
        LITTLE
    )
    return rate, cpu_watts


def evaluate_accuracy(
    spec: PlatformSpec,
    model_factory,
    benchmark: str,
    perf_estimator: PerformanceEstimator,
    power_estimator: PowerEstimator,
    states: Sequence[SystemState] = DEFAULT_SAMPLE,
    reference: Optional[SystemState] = None,
    probe_units: int = 30,
    seed: int = 0,
    tick_s: float = 0.01,
) -> AccuracyReport:
    """Measure the sample states and compare against the estimators.

    ``model_factory`` must return a fresh workload (with at least
    ``probe_units`` heartbeats) per call.
    """
    if not states:
        raise ConfigurationError("need at least one state to evaluate")
    reference = reference or states[0]
    reference.validate(spec)
    ref_rate, _ = _measure_state(
        spec, model_factory, reference, perf_estimator, probe_units, seed, tick_s
    )
    rows: List[StateAccuracy] = []
    n_threads = model_factory().n_threads
    for state in states:
        state.validate(spec)
        measured_rate, measured_watts = _measure_state(
            spec, model_factory, state, perf_estimator, probe_units, seed, tick_s
        )
        predicted_rate = perf_estimator.estimate_rate(
            state, reference, ref_rate, n_threads
        )
        estimate = perf_estimator.estimate(state, n_threads)
        predicted_watts = power_estimator.estimate(state, estimate)
        rows.append(
            StateAccuracy(
                state=state,
                measured_rate=measured_rate,
                predicted_rate=predicted_rate,
                measured_watts=measured_watts,
                predicted_watts=predicted_watts,
            )
        )
    return AccuracyReport(
        benchmark=benchmark, reference_state=reference, rows=tuple(rows)
    )
