"""JSON serialization of experiment results.

Figures take minutes to regenerate; persisting their results lets the
CLI dump machine-readable outputs (``--json``) and lets downstream
analysis compare runs without re-simulation.  Only plain-data structures
are serialized — traces are flattened to per-column series.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List

from repro.core.power_estimator import LinearCoefficients, PowerEstimator
from repro.errors import ConfigurationError
from repro.experiments.fig5_1 import PerfWattComparison
from repro.experiments.fig5_3 import DistanceSweep
from repro.experiments.fig5_4 import MultiAppComparison
from repro.experiments.fig5_5_7 import BehaviourRun
from repro.experiments.metrics import AppRunMetrics, RunMetrics

_SCHEMA_VERSION = 1

#: Version of the controller-checkpoint payload schema
#: (:mod:`repro.supervision.checkpoint`).  Bumped whenever the body
#: layout changes; restore refuses payloads from another version.
CHECKPOINT_SCHEMA_VERSION = 1

_CHECKPOINT_KIND = "controller-checkpoint"


# -- field validators ---------------------------------------------------------
#
# Shared by every schema-checked payload in the codebase: the controller
# checkpoints below and the ACP wire frames (:mod:`repro.acp.wire`) both
# validate through these rather than growing separate schema layers.


def require_str(data: Dict[str, Any], key: str, context: str) -> str:
    """``data[key]`` as a non-empty string, or :class:`ConfigurationError`."""
    value = data.get(key)
    if not isinstance(value, str) or not value:
        raise ConfigurationError(f"{context}: missing a non-empty {key!r}")
    return value


def require_number(data: Dict[str, Any], key: str, context: str) -> float:
    """``data[key]`` as a number (bools rejected)."""
    value = data.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{context}: missing a numeric {key!r}")
    return float(value)


def require_int(data: Dict[str, Any], key: str, context: str) -> int:
    """``data[key]`` as an integer (bools rejected)."""
    value = data.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{context}: missing an integer {key!r}")
    return value


def require_dict(data: Dict[str, Any], key: str, context: str) -> Dict[str, Any]:
    """``data[key]`` as a dict (possibly empty)."""
    value = data.get(key)
    if not isinstance(value, dict):
        raise ConfigurationError(f"{context}: {key!r} must be a dict")
    return value


def require_list(data: Dict[str, Any], key: str, context: str) -> List[Any]:
    """``data[key]`` as a list (possibly empty)."""
    value = data.get(key)
    if not isinstance(value, list):
        raise ConfigurationError(f"{context}: {key!r} must be a list")
    return value


def checkpoint_payload(
    controller: str, time_s: float, body: Dict[str, Any]
) -> Dict[str, Any]:
    """Wrap one controller's knowledge snapshot in the versioned envelope.

    The envelope is what :class:`~repro.supervision.checkpoint.CheckpointStore`
    stores and what :func:`validate_checkpoint` checks on restore; the
    ``body`` layout is controller-specific (see ``docs/modelling.md``
    §11 for the per-controller schemas).
    """
    if not isinstance(controller, str) or not controller:
        raise ConfigurationError("checkpoint needs a controller id")
    if not isinstance(body, dict):
        raise ConfigurationError("checkpoint body must be a dict")
    return {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "kind": _CHECKPOINT_KIND,
        "controller": controller,
        "time_s": float(time_s),
        "body": body,
    }


def validate_checkpoint(data: Any) -> Dict[str, Any]:
    """Schema-check a checkpoint envelope; returns its ``body``.

    Raises :class:`~repro.errors.ConfigurationError` on anything that is
    not a well-formed, current-version checkpoint — a controller must
    fall back to a cold restart rather than restore garbage.
    """
    if not isinstance(data, dict):
        raise ConfigurationError("checkpoint payload is not a dict")
    if data.get("kind") != _CHECKPOINT_KIND:
        raise ConfigurationError(
            f"not a controller checkpoint (kind={data.get('kind')!r})"
        )
    if data.get("schema") != CHECKPOINT_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint schema {data.get('schema')!r} "
            f"(this build reads version {CHECKPOINT_SCHEMA_VERSION})"
        )
    require_str(data, "controller", "checkpoint")
    require_number(data, "time_s", "checkpoint")
    return require_dict(data, "body", "checkpoint")


def power_model_to_dict(estimator: Any) -> Dict[str, Any]:
    """Flatten a fitted power model to ``{"cluster@mhz": [α, β, r²]}``.

    Accepts anything exposing the :class:`PowerEstimator` read surface
    (``fitted_points`` / ``coefficients``), including the cached wrapper.
    """
    model: Dict[str, Any] = {}
    for cluster, freq in estimator.fitted_points:
        coeffs = estimator.coefficients(cluster, freq)
        model[f"{cluster}@{freq}"] = [
            coeffs.alpha,
            coeffs.beta,
            coeffs.r_squared,
        ]
    return model


def power_model_from_dict(data: Dict[str, Any]) -> PowerEstimator:
    """Inverse of :func:`power_model_to_dict`."""
    if not isinstance(data, dict) or not data:
        raise ConfigurationError("power model snapshot must be a non-empty dict")
    coefficients = {}
    for key, values in data.items():
        cluster, sep, freq = str(key).rpartition("@")
        try:
            if not sep or not cluster:
                raise ValueError(f"bad fit point key {key!r}")
            alpha, beta, r_squared = values
            coefficients[(cluster, int(freq))] = LinearCoefficients(
                alpha=float(alpha),
                beta=float(beta),
                r_squared=float(r_squared),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed power model entry {key!r}: {exc}"
            ) from None
    return PowerEstimator(coefficients)


def run_metrics_to_dict(metrics: RunMetrics) -> Dict[str, Any]:
    """Flatten one run's metrics."""
    return {
        "version": metrics.version,
        "elapsed_s": metrics.elapsed_s,
        "avg_power_w": metrics.avg_power_w,
        "perf_per_watt": metrics.perf_per_watt,
        "manager_overhead_s": metrics.manager_overhead_s,
        "final_state": metrics.final_state,
        "apps": [
            {
                "name": app.app_name,
                "heartbeats": app.heartbeats,
                "overall_rate": app.overall_rate,
                "mean_normalized_perf": app.mean_normalized_perf,
                "target": [app.target_min, app.target_avg, app.target_max],
            }
            for app in metrics.apps
        ],
    }


def run_metrics_from_dict(data: Dict[str, Any]) -> RunMetrics:
    """Inverse of :func:`run_metrics_to_dict`."""
    try:
        return RunMetrics(
            version=data["version"],
            elapsed_s=data["elapsed_s"],
            avg_power_w=data["avg_power_w"],
            manager_overhead_s=data.get("manager_overhead_s", 0.0),
            final_state=data.get("final_state", ""),
            apps=tuple(
                AppRunMetrics(
                    app_name=app["name"],
                    heartbeats=app["heartbeats"],
                    overall_rate=app["overall_rate"],
                    mean_normalized_perf=app["mean_normalized_perf"],
                    target_min=app["target"][0],
                    target_avg=app["target"][1],
                    target_max=app["target"][2],
                )
                for app in data["apps"]
            ),
        )
    except KeyError as missing:
        raise ConfigurationError(f"run-metrics dict missing {missing}") from None


def comparison_to_dict(comparison: PerfWattComparison) -> Dict[str, Any]:
    """Serialize a Figure 5.1/5.2 grid (normalized + raw)."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "perf-watt-comparison",
        "target_fraction": comparison.target_fraction,
        "versions": list(comparison.versions),
        "normalized": comparison.normalized,
        "geomean": comparison.geomean,
        "raw": {
            code: {
                version: run_metrics_to_dict(metrics)
                for version, metrics in per_version.items()
            }
            for code, per_version in comparison.raw.items()
        },
    }


def multi_comparison_to_dict(comparison: MultiAppComparison) -> Dict[str, Any]:
    """Serialize the Figure 5.4 grid."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "multi-app-comparison",
        "versions": list(comparison.versions),
        "normalized": comparison.normalized,
        "geomean": comparison.geomean,
        "raw": {
            label: {
                version: run_metrics_to_dict(metrics)
                for version, metrics in per_version.items()
            }
            for label, per_version in comparison.raw.items()
        },
    }


def sweep_to_dict(sweep: DistanceSweep) -> Dict[str, Any]:
    """Serialize the Figure 5.3 sweep."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "distance-sweep",
        "distances": list(sweep.distances),
        "efficiency": {
            str(target): values for target, values in sweep.efficiency.items()
        },
        "cpu_percent": {
            str(target): values
            for target, values in sweep.cpu_percent.items()
        },
    }


def behaviour_to_dict(run: BehaviourRun) -> Dict[str, Any]:
    """Serialize one behaviour trace (Figures 5.5–5.7)."""
    columns = run.trace.columns()
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "behaviour-run",
        "version": run.version,
        "apps": {
            app_name: {
                "target": [
                    run.targets[app_name].min_rate,
                    run.targets[app_name].avg_rate,
                    run.targets[app_name].max_rate,
                ],
                "series": {
                    column: run.trace.series(app_name, column)
                    for column in columns
                },
            }
            for app_name in run.app_names()
        },
    }


def dump_json(payload: Dict[str, Any], path: str) -> None:
    """Write a serialized result to disk."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def dump_json_atomic(payload: Dict[str, Any], path: str) -> None:
    """Write JSON so a crash mid-write never leaves a torn file.

    The payload goes to a temporary sibling first, is fsynced, and then
    atomically renamed over ``path`` (``os.replace``); finally the
    directory entry itself is fsynced so the rename survives a power
    cut.  Readers observe either the old complete file or the new one —
    never a prefix (the failure the ACP daemon's checkpoint persistence
    must rule out).
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def load_json(path: str) -> Dict[str, Any]:
    """Read a serialized result back."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "kind" not in data:
        raise ConfigurationError(f"{path}: not a serialized repro result")
    return data
