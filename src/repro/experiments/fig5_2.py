"""Figure 5.2: perf/watt at the high target (75 % ± 5 %).

Same grid as Figure 5.1 at a more demanding target.  The paper's
observation to reproduce: the efficiency gains of SO and HARS over the
baseline *shrink* versus the default target, because less slack remains
between the target and the maximum state.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.fig5_1 import PerfWattComparison, run_perf_watt_comparison
from repro.platform.spec import PlatformSpec

#: The high target fraction (75 % ± 5 % of maximum achievable).
HIGH_TARGET_FRACTION = 0.75


def run_fig5_2(
    spec: Optional[PlatformSpec] = None,
    n_units: Optional[int] = None,
    benchmarks: Optional[List[str]] = None,
) -> PerfWattComparison:
    """Figure 5.2: the high performance target."""
    return run_perf_watt_comparison(
        HIGH_TARGET_FRACTION, spec=spec, benchmarks=benchmarks, n_units=n_units
    )


def gain_compression(
    default_run: PerfWattComparison, high_run: PerfWattComparison
) -> dict:
    """Per-version ratio of high-target GM gain to default-target GM gain.

    Values below 1 confirm the paper's compression finding.
    """
    default_gm = default_run.geomean
    high_gm = high_run.geomean
    return {
        version: high_gm[version] / default_gm[version]
        for version in default_gm
        if version in high_gm and default_gm[version] > 0
    }
