"""Version registry: the comparison systems of the evaluation.

Single-application versions (Figures 5.1–5.3):

* ``baseline`` — Linux GTS at max cores/frequency
* ``so``       — static optimal from the offline oracle sweep
* ``hars-i``   — incremental HARS, chunk scheduler
* ``hars-e``   — exhaustive HARS (m=n=4, d=7), chunk scheduler
* ``hars-ei``  — exhaustive HARS, interleaving scheduler
* ``hars-d<k>`` — Figure 5.3 sweep: HARS-EI box with distance ``k``

Multi-application versions (Figure 5.4) are registered by
:mod:`repro.experiments.runner` through the same interface.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.baselines.baseline import BaselineController
from repro.baselines.static_optimal import (
    StaticOptimalController,
    find_static_optimal_measured,
)
from repro.core.calibration import calibrate
from repro.core.manager import HarsManager
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E, HARS_EI, HARS_I, sweep_policy  # noqa: F401
from repro.errors import ConfigurationError
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp

#: Figure 5.1 / 5.2 version order and display labels.
SINGLE_APP_VERSIONS: Tuple[str, ...] = (
    "baseline",
    "so",
    "hars-i",
    "hars-e",
    "hars-ei",
)

VERSION_LABELS: Dict[str, str] = {
    "baseline": "Baseline",
    "ondemand": "Ondemand",
    "so": "SO",
    "hars-i": "HARS-I",
    "hars-e": "HARS-E",
    "hars-ei": "HARS-EI",
}

_SWEEP_PATTERN = re.compile(r"^hars-d(\d+)$")

_POLICIES = {
    "hars-i": HARS_I,
    "hars-e": HARS_E,
    "hars-ei": HARS_EI,
}


def attach_single_app_version(
    sim: "Simulation",
    app: "SimApp",
    version: str,
    adapt_every: int = 5,
    cache_estimates: bool = True,
) -> List[Controller]:
    """Attach the controllers implementing ``version`` to a simulation.

    Returns the controllers added (the runner reads overhead and final
    state back from them).  ``cache_estimates=False`` disables the
    kernel's estimation cache (identical results, pre-refactor speed —
    only benchmarks use it).
    """
    if version == "baseline":
        return [sim.add_controller(BaselineController())]

    if version == "ondemand":
        # Beyond the paper: the Linux default governor as an extra
        # comparison point (GTS scheduling, utilization-driven DVFS).
        from repro.platform.governors import OndemandGovernor

        return [sim.add_controller(OndemandGovernor())]

    if version == "so":
        state = _static_optimal_state(sim.spec, app)
        controller = StaticOptimalController(app.name, state)
        return [sim.add_controller(controller)]

    policy = _POLICIES.get(version)
    if policy is None:
        match = _SWEEP_PATTERN.match(version)
        if match:
            policy = sweep_policy(int(match.group(1)))
        else:
            raise ConfigurationError(
                f"unknown version {version!r}; valid: "
                f"{sorted(_POLICIES) + ['baseline', 'so', 'hars-d<k>']}"
            )
    manager = HarsManager(
        app_name=app.name,
        policy=policy,
        perf_estimator=PerformanceEstimator(),
        power_estimator=calibrate(sim.spec),
        adapt_every=adapt_every,
        cache_estimates=cache_estimates,
    )
    return [sim.add_controller(manager)]


#: Figure 5.4 version order and display labels.
MULTI_APP_VERSIONS: Tuple[str, ...] = (
    "baseline",
    "cons-i",
    "mp-hars-i",
    "mp-hars-e",
)

MULTI_VERSION_LABELS: Dict[str, str] = {
    "baseline": "Baseline",
    "cons-i": "CONS-I",
    "mp-hars-i": "MP-HARS-I",
    "mp-hars-e": "MP-HARS-E",
    "mp-hars-ei": "MP-HARS-EI",
}


def attach_multi_app_version(
    sim: "Simulation",
    version: str,
    adapt_every: int = 5,
    cache_estimates: bool = True,
) -> List[Controller]:
    """Attach the multi-application controllers for ``version``."""
    from repro.mphars.consi import ConsIController
    from repro.mphars.manager import MpHarsManager

    if version == "baseline":
        return [sim.add_controller(BaselineController())]
    if version == "cons-i":
        return [sim.add_controller(ConsIController(adapt_every=adapt_every))]
    if version in ("mp-hars-i", "mp-hars-e", "mp-hars-ei"):
        policy = {
            "mp-hars-i": HARS_I,
            "mp-hars-e": HARS_E,
            "mp-hars-ei": HARS_EI,  # beyond the paper: interleaved MP
        }[version]
        manager = MpHarsManager(
            policy=policy,
            perf_estimator=PerformanceEstimator(),
            power_estimator=calibrate(sim.spec),
            adapt_every=adapt_every,
            cache_estimates=cache_estimates,
        )
        return [sim.add_controller(manager)]
    raise ConfigurationError(
        f"unknown multi-app version {version!r}; valid: {MULTI_APP_VERSIONS}"
    )


_SO_CACHE: Dict[Tuple, object] = {}


def _static_optimal_state(spec, app):
    """Memoized offline-simulation SO sweep for one (platform, app)."""
    from repro.workloads.parsec import make_benchmark, resolve_name

    bench = resolve_name(app.name)
    target = app.target
    key = (
        spec.name,
        bench,
        app.n_threads,
        round(target.min_rate, 6),
        round(target.avg_rate, 6),
        round(target.max_rate, 6),
    )
    if key not in _SO_CACHE:
        _SO_CACHE[key] = find_static_optimal_measured(
            spec,
            lambda: make_benchmark(bench, n_threads=app.n_threads),
            target,
        )
    return _SO_CACHE[key]


def version_label(version: str) -> str:
    """Display label for a version id."""
    if version in VERSION_LABELS:
        return VERSION_LABELS[version]
    if version in MULTI_VERSION_LABELS:
        return MULTI_VERSION_LABELS[version]
    match = _SWEEP_PATTERN.match(version)
    if match:
        return f"HARS-EI(d={match.group(1)})"
    return version
