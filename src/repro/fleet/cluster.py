"""Sharded fleet scheduler: hundreds of nodes behind one load balancer.

A :class:`FleetCluster` drives N independent :class:`~repro.fleet.node.
FleetNode` simulations in lock-step ticks.  Each tick:

1. the resilience layer (when attached) reboots due nodes, applies
   chaos velocity episodes, expires per-attempt timeouts and scans for
   hedges, then re-routes its backlog (crash re-queues, deferred
   arrivals, due retries, hedge twins) to the supervisor's routable
   set;
2. every arrival falling inside the tick is routed (the router sees
   nodes' *previous-tick* state — no node has stepped yet), subject to
   the admission controller's shed/brownout verdict;
3. the nodes step, shard by shard (node ``i`` belongs to shard
   ``i % shards`` — a deterministic interleave, so shard populations
   are stable as the fleet grows); DOWN and EVICTED nodes do not step;
4. completions are harvested in node-id order and aggregated into the
   fleet-wide SLO accounting and the telemetry registry (first
   completion wins for hedged requests; losers are cancelled);
5. the supervisor inspects every node post-step: crashed nodes go DOWN
   (stranded requests re-queued to survivors under failover, lost
   outright without it) and stalled nodes escalate one health state.

Because nodes share no simulation state, routing always precedes
stepping, and every resilience decision happens in the route or
harvest phase (never inside a shard loop), the shard count is pure
mechanical sympathy: results are bit-identical for every value of
``shards`` — with or without chaos (asserted by the determinism tests
and ``bench_fleet_chaos.py``).  With no chaos layer and no resilience
config the cluster takes exactly its original code paths, keeping the
zero-chaos run bit-identical to a fleet built before this layer
existed.

The run is open loop: the trace decides when requests arrive, the
horizon is the last arrival plus a drain window, and requests still
queued at the horizon are reported as unserved rather than waited for
— broken down by cause (``queued_at_horizon`` / ``shed`` /
``timed_out`` / ``lost_to_crash_then_requeued``).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError, SimulationError
from repro.fleet.chaos import (
    FleetFaultConfig,
    NodeChaosEvent,
    active_velocity_factor,
    compile_timelines,
    crash_fault_config,
)
from repro.fleet.config import FleetConfig
from repro.fleet.node import LANES, Completion, FleetNode
from repro.fleet.resilience import AdmissionController, ResilienceConfig
from repro.fleet.router import Router, _argmin_wait, make_router
from repro.fleet.slo import percentile
from repro.fleet.supervisor import FleetSupervisor, NodeHealth
from repro.fleet.trace import Request, make_trace
from repro.platform.sensor import CHANNELS
from repro.telemetry.registry import MetricsRegistry

#: Latency histogram buckets, as fractions of the deadline.
_BUCKET_FRACTIONS = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)

#: Safety cap on cluster ticks (per node; mirrors the engine's guard).
_MAX_FLEET_TICKS = 2_000_000

#: Slop for comparing scheduled times against tick boundaries.
_TIME_EPS = 1e-12

#: The unserved-cause buckets ``FleetResult.unserved_causes`` reports.
UNSERVED_CAUSES = (
    "queued_at_horizon",
    "shed",
    "timed_out",
    "lost_to_crash_then_requeued",
)


@dataclass
class _Attempt:
    """One live dispatch of a request onto a node (resilience layer)."""

    request: Request
    node: FleetNode
    node_index: int
    lane: str
    attempt_no: int
    is_hedge: bool


@dataclass
class FleetResult:
    """Outcome of one fleet run.

    ``summary()`` returns only deterministic fields — the dict two runs
    of the same config must match on bit-for-bit regardless of shard
    count.  The registry carries the full fleet telemetry (exporters
    consume it like any single-run registry).

    ``unserved_causes`` partitions ``unserved`` exactly:
    ``queued_at_horizon`` (still in some queue, or never admitted,
    when the run was cut off), ``shed`` (refused by the admission
    controller), ``timed_out`` (per-attempt retry budget exhausted)
    and ``lost_to_crash_then_requeued`` (stranded on a crashed or
    evicted node and not completed by any re-queue or hedge twin).
    ``resilience`` carries the integer event counters of the
    resilience layer (all zero without one).
    """

    router: str
    nodes: int
    shards: int
    requests: int
    completed: int
    unserved: int
    deadline_misses: int
    miss_ratio: float
    p50_s: float
    p95_s: float
    p99_s: float
    duration_s: float
    energy_j: float
    avg_power_w: float
    lane_completed: Dict[str, int]
    unserved_causes: Dict[str, int] = field(default_factory=dict)
    resilience: Dict[str, int] = field(default_factory=dict)
    registry: MetricsRegistry = field(repr=False, default_factory=MetricsRegistry)

    def summary(self) -> Dict[str, object]:
        """The deterministic cross-shard identity fingerprint."""
        return {
            "router": self.router,
            "nodes": self.nodes,
            "requests": self.requests,
            "completed": self.completed,
            "unserved": self.unserved,
            "deadline_misses": self.deadline_misses,
            "miss_ratio": self.miss_ratio,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "duration_s": self.duration_s,
            "energy_j": self.energy_j,
            "avg_power_w": self.avg_power_w,
            "lane_completed": dict(sorted(self.lane_completed.items())),
            "unserved_causes": dict(sorted(self.unserved_causes.items())),
            "resilience": dict(sorted(self.resilience.items())),
        }


class FleetCluster:
    """N nodes, one router, one shard scheduler (+ resilience layer)."""

    def __init__(
        self,
        config: FleetConfig,
        router: Union[Router, str] = "deadline-risk",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config
        self.router = make_router(router) if isinstance(router, str) else router
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = make_trace(config)
        self._horizon_s = (
            self.trace[-1].arrival_s if self.trace else 0.0
        ) + config.drain_s
        # A fully disabled chaos config is exactly no chaos config: the
        # off-path bit-identity guarantee hangs on this normalization.
        chaos = config.chaos
        if chaos is not None and not chaos.enabled:
            chaos = None
        self.chaos: Optional[FleetFaultConfig] = chaos
        if chaos is not None or config.resilience is not None:
            self.resilience: Optional[ResilienceConfig] = (
                config.resilience
                if config.resilience is not None
                else ResilienceConfig()
            )
            self.supervisor: Optional[FleetSupervisor] = FleetSupervisor(
                self.resilience, chaos, config.nodes
            )
        else:
            self.resilience = None
            self.supervisor = None
        self._timelines: Optional[List[Tuple[NodeChaosEvent, ...]]] = (
            compile_timelines(chaos, config.nodes, self._horizon_s)
            if chaos is not None
            else None
        )
        self.nodes = [
            self._build_node(i, 0.0) for i in range(config.nodes)
        ]
        # Deterministic interleave: node i -> shard i % shards.  Index
        # lists, not object lists — a restarted node is a fresh object
        # and object references held here would go stale.
        self.shards: List[List[int]] = [
            list(range(s, config.nodes, config.shards))
            for s in range(config.shards)
        ]
        self._latencies: List[float] = []
        #: (finish_s, missed) per counted completion, harvest order —
        #: the stream :func:`repro.fleet.slo.recovery_time_s` consumes.
        self.completion_log: List[Tuple[float, bool]] = []
        self._completions_by_lane = {lane: 0 for lane in LANES}
        self._misses = 0
        self._ran = False
        self._clock_s = 0.0
        # -- resilience-layer state (untouched on the off path) -----------
        self._tracking = (
            self.resilience is not None and self.resilience.tracking_enabled
        )
        self._terminal = 0  # requests with a final outcome (any cause)
        self._done: set = set()  # completed request indices
        self._shed: set = set()
        self._timed_out: set = set()
        self._crash_touched: set = set()
        self._deferred: Deque[Request] = deque()
        self._requeue: Deque[Tuple[Request, int]] = deque()
        self._attempts: Dict[int, Dict[int, _Attempt]] = {}
        self._attempt_seq = 0
        self._timeout_heap: List[Tuple[float, int, int]] = []
        self._retry_heap: List[Tuple[float, int, int, Request]] = []
        self._hedged: set = set()
        self._hedge_pending: List[Tuple[Request, int, str, int]] = []
        self._retired_energy: Dict[int, Dict[str, float]] = {}
        self._requeued = 0
        self._retries = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._hedge_cancelled = 0
        self._demoted = 0
        self._max_requeue_ticks = 0

    def _build_node(self, index: int, epoch_s: float) -> FleetNode:
        """One node incarnation booted at cluster time ``epoch_s``."""
        faults = None
        if self._timelines is not None:
            compiled = crash_fault_config(
                self._timelines[index], LANES, after_s=epoch_s
            )
            if compiled.enabled:
                faults = compiled
        return FleetNode(index, self.config, epoch_s=epoch_s, faults=faults)

    def run(self) -> FleetResult:
        """Route, step and aggregate until the trace drains (or horizon)."""
        if self._ran:
            raise SimulationError("a FleetCluster runs once; build a new one")
        self._ran = True
        config = self.config
        trace = self.trace
        max_ticks = min(
            int(math.ceil(self._horizon_s / config.tick_s)) + 1,
            _MAX_FLEET_TICKS,
        )
        routed = self.registry.counter(
            "fleet_requests_routed_total", "requests admitted, by lane/app"
        )
        self._routed_counter = routed
        completed_counter = self.registry.counter(
            "fleet_requests_completed_total", "completions, by lane"
        )
        missed_counter = self.registry.counter(
            "fleet_deadline_misses_total", "deadline misses, by lane"
        )
        buckets = tuple(
            f * config.deadline_s for f in _BUCKET_FRACTIONS
        )
        node_latency = self.registry.histogram(
            "fleet_node_latency_seconds",
            "per-node request latency",
            buckets=buckets,
        )
        sup = self.supervisor
        res = self.resilience
        res_on = sup is not None
        if res_on:
            self._make_resilience_counters()
        admission = (
            AdmissionController(res)
            if res_on and res.admission_enabled
            else None
        )
        self.admission = admission
        arrival_index = 0
        completed = 0
        per_node: List[List[Completion]] = [[] for _ in self.nodes]
        progressed: List[bool] = [False] * len(self.nodes)
        for tick in range(max_ticks):
            now_s = tick * config.tick_s
            tick_end_s = now_s + config.tick_s
            # 1. Resilience pre-phase + backlog routing, then this
            #    tick's arrivals — all against the pre-step snapshot.
            state = "normal"
            if res_on:
                self._begin_tick(tick, now_s)
                candidates = sup.routable(self.nodes)
                self._route_backlog(tick, now_s, candidates)
                if admission is not None and candidates:
                    depth = sum(
                        node.queue_len("hot") + node.queue_len("base")
                        for node in candidates
                    ) / len(candidates)
                    best_wait = min(
                        node.est_wait_s("base") for node in candidates
                    )
                    state = admission.update(depth, best_wait)
            else:
                candidates = self.nodes
            while (
                arrival_index < len(trace)
                and trace[arrival_index].arrival_s < tick_end_s
            ):
                request = trace[arrival_index]
                arrival_index += 1
                if state == "shed":
                    self._shed.add(request.index)
                    self._terminal += 1
                    self._shed_counter.inc(app=request.app)
                    continue
                if not candidates:
                    # Nobody routable this tick — hold the arrival.
                    self._deferred.append(request)
                    continue
                node_index, lane = self.router.route(
                    request, candidates, now_s
                )
                node = candidates[node_index]
                if state == "brownout" and lane == "hot":
                    lane = "base"
                    self._demoted += 1
                    self._demoted_counter.inc(app=request.app)
                node.enqueue(request, lane)
                routed.inc(lane=lane, app=request.app)
                if self._tracking:
                    self._track(request, node, lane, 1, False, now_s)
            # 2. Step, shard by shard (nodes are independent — order
            #    cannot change results, only cache behaviour).
            for shard in self.shards:
                for node_index in shard:
                    if res_on and not sup.is_stepping(node_index):
                        per_node[node_index] = []
                        continue
                    per_node[node_index] = self.nodes[node_index].step()
            self._clock_s += config.tick_s
            # 3. Aggregate in node-id order (shard-count invariant).
            for node_index in range(len(self.nodes)):
                completions = per_node[node_index]
                progressed[node_index] = bool(completions)
                for completion in completions:
                    if res_on:
                        index = completion.request.index
                        if index in self._done:
                            # A hedge twin already served this request.
                            continue
                        self._done.add(index)
                        self._resolve_attempts(completion, node_index)
                        self._terminal += 1
                    completed += 1
                    self._latencies.append(completion.latency_s)
                    self.completion_log.append(
                        (completion.finish_s, completion.missed)
                    )
                    self._completions_by_lane[completion.lane] += 1
                    completed_counter.inc(lane=completion.lane)
                    node_latency.observe(
                        completion.latency_s, node=f"node-{node_index}"
                    )
                    if completion.missed:
                        self._misses += 1
                        missed_counter.inc(lane=completion.lane)
                per_node[node_index] = []
            # 4. Post-step supervision: crashes down nodes, stalls
            #    escalate, stranded requests re-queue (node-id order).
            if res_on:
                self._post_step(tick, tick_end_s, progressed)
                if (
                    arrival_index >= len(trace)
                    and self._terminal >= len(trace)
                ):
                    break
            elif arrival_index >= len(trace) and completed >= len(trace):
                break
        return self._finalize(completed, self._clock_s)

    # -- resilience phases -------------------------------------------------

    def _make_resilience_counters(self) -> None:
        registry = self.registry
        self._shed_counter = registry.counter(
            "fleet_requests_shed_total", "arrivals refused by admission"
        )
        self._demoted_counter = registry.counter(
            "fleet_requests_demoted_total", "hot arrivals browned out to base"
        )
        self._requeued_counter = registry.counter(
            "fleet_requests_requeued_total", "crash-stranded requests re-queued"
        )
        self._retried_counter = registry.counter(
            "fleet_requests_retried_total", "attempt-timeout re-dispatches"
        )
        self._timeout_counter = registry.counter(
            "fleet_requests_timed_out_total", "requests out of attempt budget"
        )
        self._hedged_counter = registry.counter(
            "fleet_requests_hedged_total", "tail-latency hedge twins dispatched"
        )
        self._hedge_win_counter = registry.counter(
            "fleet_hedge_wins_total", "requests won by their hedge twin"
        )
        self._hedge_cancel_counter = registry.counter(
            "fleet_hedge_cancelled_total", "losing hedge attempts cancelled"
        )
        self._crash_counter = registry.counter(
            "fleet_node_crashes_total", "node crash events, by node"
        )
        self._restart_counter = registry.counter(
            "fleet_node_restarts_total", "node reboots, by node"
        )
        self._evict_counter = registry.counter(
            "fleet_node_evictions_total", "permanent node evictions, by node"
        )

    def _begin_tick(self, tick: int, now_s: float) -> None:
        """Reboots, probation, chaos episodes, timeouts, hedge scan."""
        sup = self.supervisor
        res = self.resilience
        for node_index in sup.restarts_due(now_s):
            self._restart_node(node_index, tick, now_s)
        sup.tick(now_s)
        if self.chaos is not None:
            for node_index in range(len(self.nodes)):
                if sup.is_stepping(node_index):
                    self.nodes[node_index].set_velocity_factor(
                        active_velocity_factor(
                            self._timelines[node_index], now_s
                        )
                    )
        if self._tracking and res.retry_enabled:
            self._expire_attempts(now_s)
        if self._tracking and res.hedge_enabled:
            self._scan_hedges(now_s)

    def _restart_node(self, node_index: int, tick: int, now_s: float) -> None:
        """Reboot one DOWN node as a fresh simulation (new epoch)."""
        old = self.nodes[node_index]
        bank = self._retired_energy.setdefault(
            node_index, {channel: 0.0 for channel in CHANNELS}
        )
        for channel in CHANNELS:
            bank[channel] += old.energy_j(channel)
        # Anything still pending belongs to the dead incarnation: under
        # failover the crash already stranded it; without failover the
        # routers kept feeding the corpse and those requests are lost.
        self._strand(old, tick)
        self.nodes[node_index] = self._build_node(node_index, now_s)
        self.supervisor.on_restarted(node_index, now_s)
        self._restart_counter.inc(node=old.name)

    def _expire_attempts(self, now_s: float) -> None:
        """Cancel attempts past their per-attempt timeout; retry or fail."""
        res = self.resilience
        heap = self._timeout_heap
        while heap and heap[0][0] <= now_s + _TIME_EPS:
            _, index, attempt_id = heapq.heappop(heap)
            if index in self._done:
                continue
            attempts = self._attempts.get(index)
            if attempts is None or attempt_id not in attempts:
                continue  # stale: attempt already resolved or stranded
            attempt = attempts.pop(attempt_id)
            attempt.node.cancel(index)
            if attempts:
                continue  # a hedge twin is still racing — let it finish
            del self._attempts[index]
            if attempt.attempt_no >= res.max_attempts:
                self._timed_out.add(index)
                self._terminal += 1
                self._timeout_counter.inc()
            else:
                heapq.heappush(
                    self._retry_heap,
                    (
                        now_s + res.backoff_s(attempt.attempt_no),
                        index,
                        attempt.attempt_no + 1,
                        attempt.request,
                    ),
                )

    def _scan_hedges(self, now_s: float) -> None:
        """Queue hedge twins for requests whose ETA threatens the deadline."""
        res = self.resilience
        for index in sorted(self._attempts):
            if index in self._hedged:
                continue
            attempts = self._attempts[index]
            if len(attempts) != 1:
                continue
            (attempt,) = attempts.values()
            request = attempt.request
            eta_s = now_s + attempt.node.est_wait_s(attempt.lane)
            threshold_s = (
                request.arrival_s + res.hedge_fraction * request.budget_s
            )
            if eta_s > threshold_s + _TIME_EPS:
                self._hedged.add(index)
                self._hedge_pending.append(
                    (request, attempt.node_index, attempt.lane,
                     attempt.attempt_no)
                )

    def _route_backlog(
        self, tick: int, now_s: float, candidates: List[FleetNode]
    ) -> None:
        """Dispatch re-queues, deferred arrivals, retries and hedges."""
        routed = self._routed_counter
        if self._requeue:
            batch = list(self._requeue)
            self._requeue.clear()
            for request, stranded_tick in batch:
                if not candidates:
                    self._requeue.append((request, stranded_tick))
                    continue
                node_index, lane = self.router.route(
                    request, candidates, now_s
                )
                node = candidates[node_index]
                node.enqueue(request, lane)
                routed.inc(lane=lane, app=request.app)
                wait_ticks = tick - stranded_tick
                if wait_ticks > self._max_requeue_ticks:
                    self._max_requeue_ticks = wait_ticks
                if self._tracking:
                    self._track(request, node, lane, 1, False, now_s)
        if self._deferred and candidates:
            batch = list(self._deferred)
            self._deferred.clear()
            for request in batch:
                node_index, lane = self.router.route(
                    request, candidates, now_s
                )
                node = candidates[node_index]
                node.enqueue(request, lane)
                routed.inc(lane=lane, app=request.app)
                if self._tracking:
                    self._track(request, node, lane, 1, False, now_s)
        while (
            self._retry_heap
            and self._retry_heap[0][0] <= now_s + _TIME_EPS
        ):
            if not candidates:
                break
            _, index, attempt_no, request = heapq.heappop(self._retry_heap)
            if index in self._done or index in self._timed_out:
                continue
            node_index, lane = self.router.route(request, candidates, now_s)
            node = candidates[node_index]
            node.enqueue(request, lane)
            routed.inc(lane=lane, app=request.app)
            self._retries += 1
            self._retried_counter.inc(attempt=str(attempt_no))
            self._track(request, node, lane, attempt_no, False, now_s)
        if self._hedge_pending:
            for request, primary_index, lane, attempt_no in self._hedge_pending:
                if request.index in self._done:
                    continue
                alternates = [
                    node for node in candidates
                    if node.index != primary_index
                ]
                if not alternates:
                    continue  # nowhere to hedge to this tick
                node = alternates[_argmin_wait(alternates, lane)]
                node.enqueue(request, lane)
                routed.inc(lane=lane, app=request.app)
                self._hedges += 1
                self._hedged_counter.inc()
                self._track(request, node, lane, attempt_no, True, now_s)
            self._hedge_pending.clear()

    def _track(
        self,
        request: Request,
        node: FleetNode,
        lane: str,
        attempt_no: int,
        is_hedge: bool,
        now_s: float,
    ) -> None:
        """Record one dispatch for the timeout/hedge machinery."""
        attempt_id = self._attempt_seq
        self._attempt_seq += 1
        self._attempts.setdefault(request.index, {})[attempt_id] = _Attempt(
            request=request,
            node=node,
            node_index=node.index,
            lane=lane,
            attempt_no=attempt_no,
            is_hedge=is_hedge,
        )
        res = self.resilience
        if res.retry_enabled:
            heapq.heappush(
                self._timeout_heap,
                (now_s + res.attempt_timeout_s, request.index, attempt_id),
            )

    def _resolve_attempts(
        self, completion: Completion, node_index: int
    ) -> None:
        """First completion wins: credit the winner, cancel the losers."""
        attempts = self._attempts.pop(completion.request.index, None)
        if attempts is None:
            return
        for attempt in attempts.values():
            if attempt.node_index == node_index:
                if attempt.is_hedge:
                    self._hedge_wins += 1
                    self._hedge_win_counter.inc()
                continue
            if attempt.node.cancel(completion.request.index):
                self._hedge_cancelled += 1
                self._hedge_cancel_counter.inc()

    def _post_step(
        self, tick: int, now_s: float, progressed: List[bool]
    ) -> None:
        """Detect crashes, escalate stalls, strand dead nodes' queues."""
        sup = self.supervisor
        for node_index in range(len(self.nodes)):
            if sup.health(node_index) in (NodeHealth.DOWN, NodeHealth.EVICTED):
                continue
            node = self.nodes[node_index]
            if self.chaos is not None and node.crashed:
                sup.on_crash(node_index, now_s)
                self._crash_counter.inc(node=node.name)
                if sup.health(node_index) is NodeHealth.EVICTED:
                    self._evict_counter.inc(node=node.name)
                self._strand(node, tick)
                continue
            verdict = sup.observe(
                node_index, now_s, progressed[node_index], node.pending
            )
            if verdict is NodeHealth.EVICTED:
                self._evict_counter.inc(node=node.name)
                self._strand(node, tick)

    def _strand(self, node: FleetNode, tick: int) -> None:
        """Pull a dead node's pending requests: re-queue or lose them."""
        requeue = self.resilience.failover
        for request, _ in sorted(
            node.stranded(), key=lambda entry: entry[0].index
        ):
            index = request.index
            self._crash_touched.add(index)
            if self._tracking:
                attempts = self._attempts.get(index)
                if attempts is not None:
                    for attempt_id in [
                        attempt_id
                        for attempt_id, attempt in attempts.items()
                        if attempt.node is node
                    ]:
                        del attempts[attempt_id]
                    if attempts:
                        continue  # a hedge twin survives elsewhere
                    del self._attempts[index]
            if requeue:
                self._requeue.append((request, tick))
                self._requeued += 1
                self._requeued_counter.inc()
            else:
                self._terminal += 1

    # -- finalization ------------------------------------------------------

    def _node_energy(self, node: FleetNode, channel: str) -> float:
        """Lifetime energy of a node slot, prior incarnations included."""
        energy = node.energy_j(channel)
        bank = self._retired_energy.get(node.index)
        if bank is not None:
            energy += bank[channel]
        return energy

    def _unserved_causes(self, completed: int) -> Dict[str, int]:
        """Partition the unserved count by cause (shard-invariant)."""
        unserved = len(self.trace) - completed
        if self.supervisor is None:
            shed = timed_out = lost = 0
        else:
            # Requests still sitting on a dead node (routed into it
            # while failover was off) are crash losses too.
            for node in self.nodes:
                if self.supervisor.health(node.index) in (
                    NodeHealth.DOWN,
                    NodeHealth.EVICTED,
                ):
                    for index in node.pending_indices():
                        self._crash_touched.add(index)
            shed = len(self._shed)
            timed_out = len(self._timed_out)
            lost = len(self._crash_touched - self._done - self._timed_out)
        return {
            "queued_at_horizon": unserved - shed - timed_out - lost,
            "shed": shed,
            "timed_out": timed_out,
            "lost_to_crash_then_requeued": lost,
        }

    def _resilience_counts(self) -> Dict[str, int]:
        sup = self.supervisor
        return {
            "crashes": sup.crashes if sup is not None else 0,
            "restarts": sup.restarts if sup is not None else 0,
            "evictions": sup.evictions if sup is not None else 0,
            "requeued": self._requeued,
            "max_requeue_ticks": self._max_requeue_ticks,
            "retries": self._retries,
            "timeouts": len(self._timed_out),
            "hedges": self._hedges,
            "hedge_wins": self._hedge_wins,
            "hedge_cancelled": self._hedge_cancelled,
            "shed": len(self._shed),
            "demoted": self._demoted,
        }

    def _finalize(self, completed: int, duration_s: float) -> FleetResult:
        config = self.config
        if completed and self._latencies:
            p50 = percentile(self._latencies, 50.0)
            p95 = percentile(self._latencies, 95.0)
            p99 = percentile(self._latencies, 99.0)
        else:
            p50 = p95 = p99 = 0.0
        energy = sum(self._node_energy(node, "total") for node in self.nodes)
        avg_power = energy / duration_s if duration_s > 0 else 0.0
        miss_ratio = self._misses / completed if completed else 0.0
        gauges = self.registry.gauge(
            "fleet_latency_seconds", "fleet-wide latency quantiles"
        )
        for quantile, value in (("0.5", p50), ("0.95", p95), ("0.99", p99)):
            gauges.set(value, quantile=quantile)
        self.registry.gauge(
            "fleet_deadline_miss_ratio", "misses / completions"
        ).set(miss_ratio)
        energy_gauge = self.registry.gauge(
            "fleet_energy_joules", "fleet energy, by rail"
        )
        power_gauge = self.registry.gauge(
            "fleet_power_watts", "fleet average power, by rail"
        )
        for channel in CHANNELS:
            rail_energy = sum(
                self._node_energy(node, channel) for node in self.nodes
            )
            energy_gauge.set(rail_energy, rail=channel)
            power_gauge.set(
                rail_energy / duration_s if duration_s > 0 else 0.0,
                rail=channel,
            )
        node_energy = self.registry.gauge(
            "fleet_node_energy_joules", "per-node total energy"
        )
        backlog_gauge = self.registry.gauge(
            "fleet_backlog_requests", "requests left unserved at the horizon"
        )
        for node in self.nodes:
            node_energy.set(self._node_energy(node, "total"), node=node.name)
        # Covers both requests stuck in queues at the horizon and
        # requests the horizon cut off before they were even routed.
        unserved = len(self.trace) - completed
        backlog_gauge.set(float(unserved))
        causes = self._unserved_causes(completed)
        causes_gauge = self.registry.gauge(
            "fleet_unserved_causes", "unserved requests, by cause"
        )
        for cause in UNSERVED_CAUSES:
            causes_gauge.set(float(causes[cause]), cause=cause)
        if self.supervisor is not None:
            health_gauge = self.registry.gauge(
                "fleet_node_health", "final node health (1 = in state)"
            )
            for node in self.nodes:
                health_gauge.set(
                    1.0,
                    node=node.name,
                    state=self.supervisor.health(node.index).value,
                )
        self.registry.gauge(
            "fleet_run_info", "run identity (labels carry the config)"
        ).set(
            1.0,
            router=self.router.name,
            trace=config.trace,
            nodes=str(config.nodes),
            app=config.app_id,
        )
        return FleetResult(
            router=self.router.name,
            nodes=config.nodes,
            shards=config.shards,
            requests=len(self.trace),
            completed=completed,
            unserved=unserved,
            deadline_misses=self._misses,
            miss_ratio=miss_ratio,
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            duration_s=duration_s,
            energy_j=energy,
            avg_power_w=avg_power,
            lane_completed=dict(self._completions_by_lane),
            unserved_causes=causes,
            resilience=self._resilience_counts(),
            registry=self.registry,
        )


def run_fleet(
    router: Union[Router, str],
    config: Optional[FleetConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> FleetResult:
    """Build and run one fleet (the ``repro.experiments.run`` backend)."""
    if config is None:
        config = FleetConfig()
    if not isinstance(config, FleetConfig):
        raise ConfigurationError(
            f"config must be a FleetConfig, got {type(config).__name__}"
        )
    return FleetCluster(config, router=router, registry=registry).run()
