"""Sharded fleet scheduler: hundreds of nodes behind one load balancer.

A :class:`FleetCluster` drives N independent :class:`~repro.fleet.node.
FleetNode` simulations in lock-step ticks.  Each tick:

1. every arrival falling inside the tick is routed (the router sees all
   nodes' *previous-tick* state — no node has stepped yet);
2. the nodes step, shard by shard (node ``i`` belongs to shard
   ``i % shards`` — a deterministic interleave, so shard populations
   are stable as the fleet grows);
3. completions are harvested in node-id order and aggregated into the
   fleet-wide SLO accounting and the telemetry registry.

Because nodes share no simulation state and routing always precedes
stepping, the shard count is pure mechanical sympathy: results are
bit-identical for every value of ``shards`` (asserted by the
determinism tests and ``bench_fleet.py``).

The run is open loop: the trace decides when requests arrive, the
horizon is the last arrival plus a drain window, and requests still
queued at the horizon are reported as unserved rather than waited for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import ConfigurationError, SimulationError
from repro.fleet.config import FleetConfig
from repro.fleet.node import LANES, Completion, FleetNode
from repro.fleet.router import Router, make_router
from repro.fleet.slo import percentile
from repro.fleet.trace import Request, make_trace
from repro.platform.sensor import CHANNELS
from repro.telemetry.registry import MetricsRegistry

#: Latency histogram buckets, as fractions of the deadline.
_BUCKET_FRACTIONS = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)

#: Safety cap on cluster ticks (per node; mirrors the engine's guard).
_MAX_FLEET_TICKS = 2_000_000


@dataclass
class FleetResult:
    """Outcome of one fleet run.

    ``summary()`` returns only deterministic fields — the dict two runs
    of the same config must match on bit-for-bit regardless of shard
    count.  The registry carries the full fleet telemetry (exporters
    consume it like any single-run registry).
    """

    router: str
    nodes: int
    shards: int
    requests: int
    completed: int
    unserved: int
    deadline_misses: int
    miss_ratio: float
    p50_s: float
    p95_s: float
    p99_s: float
    duration_s: float
    energy_j: float
    avg_power_w: float
    lane_completed: Dict[str, int]
    registry: MetricsRegistry = field(repr=False, default_factory=MetricsRegistry)

    def summary(self) -> Dict[str, object]:
        """The deterministic cross-shard identity fingerprint."""
        return {
            "router": self.router,
            "nodes": self.nodes,
            "requests": self.requests,
            "completed": self.completed,
            "unserved": self.unserved,
            "deadline_misses": self.deadline_misses,
            "miss_ratio": self.miss_ratio,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "duration_s": self.duration_s,
            "energy_j": self.energy_j,
            "avg_power_w": self.avg_power_w,
            "lane_completed": dict(sorted(self.lane_completed.items())),
        }


class FleetCluster:
    """N nodes, one router, one shard scheduler."""

    def __init__(
        self,
        config: FleetConfig,
        router: Union[Router, str] = "deadline-risk",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config
        self.router = make_router(router) if isinstance(router, str) else router
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = make_trace(config)
        self.nodes = [FleetNode(i, config) for i in range(config.nodes)]
        # Deterministic interleave: node i -> shard i % shards.
        self.shards: List[List[FleetNode]] = [
            self.nodes[s :: config.shards] for s in range(config.shards)
        ]
        self._latencies: List[float] = []
        self._completions_by_lane = {lane: 0 for lane in LANES}
        self._misses = 0
        self._ran = False

    def run(self) -> FleetResult:
        """Route, step and aggregate until the trace drains (or horizon)."""
        if self._ran:
            raise SimulationError("a FleetCluster runs once; build a new one")
        self._ran = True
        config = self.config
        trace = self.trace
        horizon_s = (trace[-1].arrival_s if trace else 0.0) + config.drain_s
        max_ticks = min(
            int(math.ceil(horizon_s / config.tick_s)) + 1, _MAX_FLEET_TICKS
        )
        routed = self.registry.counter(
            "fleet_requests_routed_total", "requests admitted, by lane/app"
        )
        completed_counter = self.registry.counter(
            "fleet_requests_completed_total", "completions, by lane"
        )
        missed_counter = self.registry.counter(
            "fleet_deadline_misses_total", "deadline misses, by lane"
        )
        buckets = tuple(
            f * config.deadline_s for f in _BUCKET_FRACTIONS
        )
        node_latency = self.registry.histogram(
            "fleet_node_latency_seconds",
            "per-node request latency",
            buckets=buckets,
        )
        arrival_index = 0
        completed = 0
        per_node: List[List[Completion]] = [[] for _ in self.nodes]
        for tick in range(max_ticks):
            now_s = tick * config.tick_s
            tick_end_s = now_s + config.tick_s
            # 1. Route this tick's arrivals against the pre-step snapshot.
            while (
                arrival_index < len(trace)
                and trace[arrival_index].arrival_s < tick_end_s
            ):
                request = trace[arrival_index]
                arrival_index += 1
                node_index, lane = self.router.route(
                    request, self.nodes, now_s
                )
                self.nodes[node_index].enqueue(request, lane)
                routed.inc(lane=lane, app=request.app)
            # 2. Step, shard by shard (nodes are independent — order
            #    cannot change results, only cache behaviour).
            for shard in self.shards:
                for node in shard:
                    per_node[node.index] = node.step()
            # 3. Aggregate in node-id order (shard-count invariant).
            for node_index in range(len(self.nodes)):
                for completion in per_node[node_index]:
                    completed += 1
                    self._latencies.append(completion.latency_s)
                    self._completions_by_lane[completion.lane] += 1
                    completed_counter.inc(lane=completion.lane)
                    node_latency.observe(
                        completion.latency_s, node=f"node-{node_index}"
                    )
                    if completion.missed:
                        self._misses += 1
                        missed_counter.inc(lane=completion.lane)
                per_node[node_index] = []
            if arrival_index >= len(trace) and completed >= len(trace):
                break
        duration_s = self.nodes[0].sim.clock.now_s if self.nodes else 0.0
        return self._finalize(completed, duration_s)

    def _finalize(self, completed: int, duration_s: float) -> FleetResult:
        config = self.config
        if completed and self._latencies:
            p50 = percentile(self._latencies, 50.0)
            p95 = percentile(self._latencies, 95.0)
            p99 = percentile(self._latencies, 99.0)
        else:
            p50 = p95 = p99 = 0.0
        energy = sum(node.energy_j("total") for node in self.nodes)
        avg_power = energy / duration_s if duration_s > 0 else 0.0
        miss_ratio = self._misses / completed if completed else 0.0
        gauges = self.registry.gauge(
            "fleet_latency_seconds", "fleet-wide latency quantiles"
        )
        for quantile, value in (("0.5", p50), ("0.95", p95), ("0.99", p99)):
            gauges.set(value, quantile=quantile)
        self.registry.gauge(
            "fleet_deadline_miss_ratio", "misses / completions"
        ).set(miss_ratio)
        energy_gauge = self.registry.gauge(
            "fleet_energy_joules", "fleet energy, by rail"
        )
        power_gauge = self.registry.gauge(
            "fleet_power_watts", "fleet average power, by rail"
        )
        for channel in CHANNELS:
            rail_energy = sum(node.energy_j(channel) for node in self.nodes)
            energy_gauge.set(rail_energy, rail=channel)
            power_gauge.set(
                rail_energy / duration_s if duration_s > 0 else 0.0,
                rail=channel,
            )
        node_energy = self.registry.gauge(
            "fleet_node_energy_joules", "per-node total energy"
        )
        backlog_gauge = self.registry.gauge(
            "fleet_backlog_requests", "requests left unserved at the horizon"
        )
        for node in self.nodes:
            node_energy.set(node.energy_j("total"), node=node.name)
        # Covers both requests stuck in queues at the horizon and
        # requests the horizon cut off before they were even routed.
        unserved = len(self.trace) - completed
        backlog_gauge.set(float(unserved))
        self.registry.gauge(
            "fleet_run_info", "run identity (labels carry the config)"
        ).set(
            1.0,
            router=self.router.name,
            trace=config.trace,
            nodes=str(config.nodes),
            app=config.app_id,
        )
        return FleetResult(
            router=self.router.name,
            nodes=config.nodes,
            shards=config.shards,
            requests=len(self.trace),
            completed=completed,
            unserved=unserved,
            deadline_misses=self._misses,
            miss_ratio=miss_ratio,
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            duration_s=duration_s,
            energy_j=energy,
            avg_power_w=avg_power,
            lane_completed=dict(self._completions_by_lane),
            registry=self.registry,
        )


def run_fleet(
    router: Union[Router, str],
    config: Optional[FleetConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> FleetResult:
    """Build and run one fleet (the ``repro.experiments.run`` backend)."""
    if config is None:
        config = FleetConfig()
    if not isinstance(config, FleetConfig):
        raise ConfigurationError(
            f"config must be a FleetConfig, got {type(config).__name__}"
        )
    return FleetCluster(config, router=router, registry=registry).run()
