"""Seeded fleet chaos: node crashes, hangs, slowdowns, restarts.

A :class:`FleetFaultConfig` is the fleet-level counterpart of
:class:`~repro.faults.config.FaultConfig`: it turns node mortality into
a configurable, exactly reproducible schedule.  Two sources feed the
schedule:

* **rates** — per-node, per-simulated-second hazards for crashes, hangs
  and slowdowns, sampled up front from *per-node, per-kind* RNG streams
  (``Random(f"{seed}:{kind}:{node}")``), so one node's fault history
  never depends on the fleet size, the shard count, or another node's
  draws — the shard bit-identity argument of :mod:`repro.fleet.cluster`
  extends to chaotic runs unchanged;
* **schedule** — explicit :class:`NodeChaosEvent` entries, the knob
  benchmarks use to pin a crash *wave* (10 % of the fleet at t = 2 s)
  to exact times.

Delivery reuses the machinery that already exists at each layer:

* a **crash** compiles into ``app_crash``
  :class:`~repro.faults.config.LifecycleEvent` entries for both serving
  lanes of the node's own :class:`~repro.sim.engine.Simulation` — the
  engine's PR-3 lifecycle injector halts the lanes, publishes
  ``FaultInjected``/``AppFinished`` on the node bus, and the node's
  MP-HARS reacts exactly as it would to a real abrupt exit.  The
  cluster detects the downed node post-step and handles stranding,
  restart (a rebooted board is a *fresh* simulation, entering
  supervision probation) and eventual eviction when
  ``max_restarts`` is exhausted;
* a **hang** or **slowdown** is a service-velocity episode: for its
  duration every lane's :class:`~repro.fleet.serving.ServerWorkload`
  progresses work at ``factor`` × normal speed (0 for a hang — threads
  blocked, queue frozen, heartbeats silent).  The queue survives, so a
  short hang resumes where it left off; a long one is quarantined and
  evicted by the :class:`~repro.fleet.supervisor.FleetSupervisor`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.config import FaultConfig, lane_crash_schedule

#: Node-level fault kinds a chaos schedule can carry.
NODE_FAULT_KINDS = ("node_crash", "node_hang", "node_slowdown")

#: Hazard-rate fields of :class:`FleetFaultConfig`, in draw order.
_RATE_FIELDS = ("node_crash_rate", "node_hang_rate", "node_slowdown_rate")


@dataclass(frozen=True)
class NodeChaosEvent:
    """One scheduled node fault.

    ``duration_s`` is the episode length for hangs and slowdowns and is
    ignored for crashes (a crashed node stays down until its restart,
    ``restart_delay_s`` later, or forever once ``max_restarts`` is
    spent).  ``factor`` is the service-velocity multiplier of a
    slowdown episode; hangs always run at factor 0.
    """

    kind: str
    node: int
    at_s: float
    duration_s: float = 0.0
    factor: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in NODE_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown node fault kind {self.kind!r}; "
                f"valid: {NODE_FAULT_KINDS}"
            )
        if self.node < 0:
            raise ConfigurationError("node index must be >= 0")
        if self.at_s < 0:
            raise ConfigurationError("event time must be >= 0")
        if self.kind != "node_crash" and self.duration_s <= 0:
            raise ConfigurationError(
                f"{self.kind} needs a positive duration_s"
            )
        if self.kind == "node_slowdown" and not 0.0 < self.factor < 1.0:
            raise ConfigurationError(
                "slowdown factor must be in (0, 1) — use node_hang for a "
                "full stop"
            )

    @property
    def velocity_factor(self) -> float:
        """Service velocity during the episode (hang = 0)."""
        return 0.0 if self.kind == "node_hang" else self.factor


@dataclass(frozen=True)
class FleetFaultConfig:
    """Node mortality model for one fleet run.

    Rates are per-node, per-simulated-second hazards; with every rate
    zero and an empty ``schedule`` the config is *disabled* and the
    cluster must be bit-identical to a run built without a chaos layer.

    Parameters
    ----------
    seed:
        Base seed of the per-node, per-kind RNG streams.
    node_crash_rate / node_hang_rate / node_slowdown_rate:
        Hazards of each episode kind, per node-second.
    hang_duration_s / slowdown_duration_s:
        Episode lengths for the rate-driven hangs and slowdowns
        (scheduled events carry their own).
    slowdown_factor:
        Service-velocity multiplier of rate-driven slowdowns.
    restart_delay_s:
        Downtime between a crash and the node's reboot (fresh
        simulation, supervision probation).
    max_restarts:
        Reboots each node is granted; the crash that exhausts the
        budget evicts the node permanently.
    schedule:
        Explicit :class:`NodeChaosEvent` entries, merged with the
        rate-driven draws (benchmarks pin crash waves here).
    """

    seed: int = 0
    node_crash_rate: float = 0.0
    node_hang_rate: float = 0.0
    node_slowdown_rate: float = 0.0
    hang_duration_s: float = 2.0
    slowdown_duration_s: float = 4.0
    slowdown_factor: float = 0.25
    restart_delay_s: float = 1.0
    max_restarts: int = 2
    schedule: Tuple[NodeChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if rate < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {rate!r}")
        for name in ("hang_duration_s", "slowdown_duration_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not 0.0 < self.slowdown_factor < 1.0:
            raise ConfigurationError("slowdown_factor must be in (0, 1)")
        if self.restart_delay_s < 0:
            raise ConfigurationError("restart_delay_s must be >= 0")
        if self.max_restarts < 0:
            raise ConfigurationError("max_restarts must be >= 0")
        for event in self.schedule:
            if not isinstance(event, NodeChaosEvent):
                raise ConfigurationError(
                    "schedule entries must be NodeChaosEvent instances"
                )

    @property
    def enabled(self) -> bool:
        """Whether any node fault can fire at all."""
        return bool(self.schedule) or any(
            getattr(self, name) > 0 for name in _RATE_FIELDS
        )


def compile_timelines(
    config: FleetFaultConfig, nodes: int, horizon_s: float
) -> List[Tuple[NodeChaosEvent, ...]]:
    """Per-node chaos timelines, deterministic in ``config`` alone.

    Each node's rate-driven events are drawn from its own seeded
    streams (one per fault kind) via exponential inter-event gaps, then
    merged with that node's share of the explicit ``schedule`` and
    sorted by time.  Events beyond ``horizon_s`` are dropped — they
    could never fire inside the run.
    """
    if nodes < 1:
        raise ConfigurationError("compile_timelines needs at least one node")
    if horizon_s < 0:
        raise ConfigurationError("horizon must be >= 0")
    per_node: List[List[NodeChaosEvent]] = [[] for _ in range(nodes)]
    for event in config.schedule:
        if event.node >= nodes:
            raise ConfigurationError(
                f"scheduled event targets node {event.node} but the fleet "
                f"has only {nodes} nodes"
            )
        if event.at_s <= horizon_s:
            per_node[event.node].append(event)
    shapes = {
        "node_crash": (config.node_crash_rate, 0.0, 1.0),
        "node_hang": (config.node_hang_rate, config.hang_duration_s, 1.0),
        "node_slowdown": (
            config.node_slowdown_rate,
            config.slowdown_duration_s,
            config.slowdown_factor,
        ),
    }
    for node in range(nodes):
        for kind in NODE_FAULT_KINDS:
            rate, duration, factor = shapes[kind]
            if rate <= 0:
                continue
            rng = random.Random(f"{config.seed}:{kind}:{node}")
            now = rng.expovariate(rate)
            while now <= horizon_s:
                per_node[node].append(
                    NodeChaosEvent(
                        kind=kind,
                        node=node,
                        at_s=now,
                        duration_s=duration,
                        factor=factor,
                    )
                )
                now += rng.expovariate(rate)
        per_node[node].sort(key=lambda e: (e.at_s, NODE_FAULT_KINDS.index(e.kind)))
    return [tuple(events) for events in per_node]


def crash_fault_config(
    timeline: Sequence[NodeChaosEvent],
    lanes: Sequence[str],
    after_s: float = 0.0,
) -> FaultConfig:
    """The node-simulation fault layer for a chaos timeline.

    Crashes are delivered through the existing lifecycle machinery:
    each ``node_crash`` event becomes one ``app_crash``
    :class:`~repro.faults.config.LifecycleEvent` per serving lane, at
    node-simulation-local time (``at_s - after_s`` — a rebooted node's
    clock restarts at zero).  Returns a disabled config when no crash
    remains, so a crash-free node attaches no fault layer at all.
    """
    times = [
        event.at_s - after_s
        for event in timeline
        if event.kind == "node_crash" and event.at_s > after_s
    ]
    if not times:
        return FaultConfig.disabled()
    return lane_crash_schedule(times, lanes)


def active_velocity_factor(
    timeline: Sequence[NodeChaosEvent], now_s: float
) -> float:
    """Combined service-velocity factor of the episodes covering ``now``.

    Overlapping episodes compound pessimistically (the minimum factor
    wins — a hang inside a slowdown is still a hang).
    """
    factor = 1.0
    for event in timeline:
        if event.kind == "node_crash":
            continue
        if event.at_s <= now_s < event.at_s + event.duration_s:
            factor = min(factor, event.velocity_factor)
    return factor


def crash_wave(
    nodes: int, fraction: float, at_s: float
) -> Tuple[NodeChaosEvent, ...]:
    """A simultaneous crash of ``fraction`` of the fleet at ``at_s``.

    Picks evenly-strided node indices (deterministic in the arguments
    alone) — the 10 %-crash-wave scenario ``bench_fleet_chaos.py`` and
    the CLI's ``--crash-frac`` expose.
    """
    if nodes < 1:
        raise ConfigurationError("crash_wave needs at least one node")
    if not 0 < fraction <= 1:
        raise ConfigurationError("crash fraction must be in (0, 1]")
    if at_s < 0:
        raise ConfigurationError("crash time must be >= 0")
    count = max(1, int(round(nodes * fraction)))
    stride = nodes / count
    picked = sorted({min(nodes - 1, int(i * stride)) for i in range(count)})
    return tuple(
        NodeChaosEvent(kind="node_crash", node=index, at_s=at_s)
        for index in picked
    )


def summarize_timelines(
    timelines: Sequence[Sequence[NodeChaosEvent]],
) -> Dict[str, int]:
    """``kind -> scheduled event count`` over the whole fleet."""
    counts = {kind: 0 for kind in NODE_FAULT_KINDS}
    for timeline in timelines:
        for event in timeline:
            counts[event.kind] += 1
    return counts
