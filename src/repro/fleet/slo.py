"""Sliding tail-latency windows — the fleet's replacement for rate windows.

Single-board HARS steers on heartbeat-*rate* windows; a serving fleet
steers on *latency percentiles* against a deadline.  :class:`SloWindow`
is the observation half of that: a bounded sliding window of request
latencies with exact percentile queries, plus cumulative completion and
deadline-miss counters.

The percentile uses the same linear interpolation as
``statistics.quantiles(data, n=100, method="inclusive")`` — rank
``(n - 1) * p / 100`` over the sorted window — so the property tests can
assert exactness against the standard library on random traces.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Sequence

from repro.errors import ConfigurationError


def percentile(data: Sequence[float], p: float) -> float:
    """Exact ``p``-th percentile of ``data`` (inclusive interpolation).

    Matches ``statistics.quantiles(data, n=100, method="inclusive")`` at
    integer percentiles; defined for any ``p`` in [0, 100] and any
    non-empty ``data`` (including a single sample, where every
    percentile is that sample).
    """
    if not data:
        raise ConfigurationError("percentile of an empty sample")
    if not 0.0 <= p <= 100.0:
        raise ConfigurationError(f"percentile {p} not in [0, 100]")
    ordered = sorted(data)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * p / 100.0
    lower = math.floor(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def recovery_time_s(
    completions: Sequence[tuple],
    event_s: float,
    window: int = 100,
    max_miss_ratio: float = 0.05,
) -> Optional[float]:
    """Time from ``event_s`` until the fleet's SLO recovers.

    ``completions`` is an iterable of ``(finish_s, missed)`` pairs (any
    order).  Scanning completions after the event in finish order, the
    SLO counts as recovered at the first completion whose trailing
    ``window`` completions miss at most ``max_miss_ratio`` — the metric
    ``bench_fleet_chaos.py`` reports for a crash wave.  Returns None
    when the stream never recovers (or has fewer than ``window``
    post-event completions).
    """
    if window < 1:
        raise ConfigurationError("recovery window must be >= 1")
    if not 0 <= max_miss_ratio <= 1:
        raise ConfigurationError("max_miss_ratio must be in [0, 1]")
    after = sorted(
        (pair for pair in completions if pair[0] >= event_s),
        key=lambda pair: pair[0],
    )
    trailing: Deque[bool] = deque(maxlen=window)
    for finish_s, missed in after:
        trailing.append(bool(missed))
        if len(trailing) == window:
            if sum(trailing) <= max_miss_ratio * window:
                return finish_s - event_s
    return None


class SloWindow:
    """Sliding window of request latencies with percentile queries.

    The window holds the most recent ``max_samples`` latencies (the
    control signal); ``observed_total`` / ``miss_total`` count the whole
    stream (the accounting signal).
    """

    def __init__(self, max_samples: int = 256):
        if max_samples < 2:
            raise ConfigurationError("SLO window needs at least 2 samples")
        self.max_samples = max_samples
        self._window: Deque[float] = deque(maxlen=max_samples)
        self.observed_total = 0
        self.miss_total = 0

    def observe(self, latency_s: float, missed: bool = False) -> None:
        """Record one completed request."""
        if latency_s < 0:
            raise ConfigurationError(f"negative latency {latency_s}")
        self._window.append(latency_s)
        self.observed_total += 1
        if missed:
            self.miss_total += 1

    def __len__(self) -> int:
        return len(self._window)

    def percentile(self, p: float) -> Optional[float]:
        """Windowed percentile, or ``None`` before the first sample."""
        if not self._window:
            return None
        return percentile(self._window, p)

    def quantile_summary(self) -> Optional[dict]:
        """The P50/P95/P99 triple dashboards plot, or ``None`` if empty."""
        if not self._window:
            return None
        ordered = sorted(self._window)
        return {
            "p50": percentile(ordered, 50.0),
            "p95": percentile(ordered, 95.0),
            "p99": percentile(ordered, 99.0),
        }

    @property
    def miss_ratio(self) -> float:
        """Deadline misses over all completions (0 before any)."""
        if self.observed_total == 0:
            return 0.0
        return self.miss_total / self.observed_total
