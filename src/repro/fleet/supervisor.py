"""Fleet health supervision: PR 3's state machine at node granularity.

The :class:`FleetSupervisor` watches every :class:`~repro.fleet.node.
FleetNode` the way the per-app :class:`~repro.supervision.supervisor.
Supervisor` watches applications, with node-level states::

    HEALTHY ──stall──▶ DEGRADED ──×quarantine_factor──▶ QUARANTINED
       ▲                  │                                  │
       └── completion ────┴────────── completion ────────────┤
                                                             │
     crash ──▶ DOWN ──restart_delay──▶ PROBATION             │
                │                         │    ×evict_factor ▼
                └── max_restarts spent ──▶└───────────▶ EVICTED

* A **stall** is a node with pending requests that has not completed
  one for ``stall_after_s`` — the signature of a hang or a deep
  slowdown episode.  Escalation is one state per tick; a single
  completion (or an empty queue) fully recovers the node, mirroring
  the per-app machine's single-late-beat recovery.
* A **crash** (every serving lane halted) takes the node DOWN and
  schedules a reboot ``restart_delay_s`` later if the restart budget
  allows, else evicts it permanently.  A rebooted node is a *fresh
  simulation* and serves a probation period before counting as fully
  healthy again.
* **Routing** prefers HEALTHY nodes, falls back to PROBATION, then
  DEGRADED, and returns nothing when even those are gone (the cluster
  defers arrivals a tick).  QUARANTINED nodes keep stepping — a
  recovering hang can still finish its backlog — but receive no new
  work; DOWN and EVICTED nodes do not step at all.

Every transition lands in a ledger of ``(time, node, from, to,
reason)`` rows, the audit trail the chaos tests and benchmark read.

With ``failover=False`` the supervisor still tracks health (the
eviction bookkeeping and counters stay meaningful) but ``routable``
returns the full node list unchanged — the ablation arm of
``bench_fleet_chaos.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fleet.chaos import FleetFaultConfig
from repro.fleet.node import FleetNode
from repro.fleet.resilience import ResilienceConfig

#: Small slop when comparing scheduled times against tick boundaries.
_TIME_EPS = 1e-12


class NodeHealth(enum.Enum):
    """Node-granularity health states."""

    HEALTHY = "healthy"
    PROBATION = "probation"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"
    DOWN = "down"
    EVICTED = "evicted"


#: States a node keeps stepping in (its simulation advances).
STEPPING_STATES = (
    NodeHealth.HEALTHY,
    NodeHealth.PROBATION,
    NodeHealth.DEGRADED,
    NodeHealth.QUARANTINED,
)

#: Routing preference tiers, best first.
_ROUTABLE_TIERS = (
    (NodeHealth.HEALTHY,),
    (NodeHealth.PROBATION,),
    (NodeHealth.DEGRADED,),
)


@dataclass
class NodeRecord:
    """Mutable supervision state of one node."""

    index: int
    health: NodeHealth = NodeHealth.HEALTHY
    #: Cluster time of the last completion (or last idle observation).
    last_progress_s: float = 0.0
    crashes: int = 0
    restarts_used: int = 0
    restart_due_s: Optional[float] = None
    probation_until_s: Optional[float] = None
    #: Current stall-escalation rung (0 = none), advanced one per tick.
    stall_rung: int = 0


class FleetSupervisor:
    """Health bookkeeping + routable-set policy for one fleet run."""

    def __init__(
        self,
        config: ResilienceConfig,
        chaos: Optional[FleetFaultConfig],
        nodes: int,
    ):
        if nodes < 1:
            raise ConfigurationError("FleetSupervisor needs at least one node")
        self.config = config
        self.chaos = chaos
        self.records = [NodeRecord(i) for i in range(nodes)]
        #: (time_s, node, from_state, to_state, reason) audit rows.
        self.ledger: List[Tuple[float, int, str, str, str]] = []
        self.crashes = 0
        self.restarts = 0
        self.evictions = 0

    # -- queries ----------------------------------------------------------

    def health(self, index: int) -> NodeHealth:
        return self.records[index].health

    def is_stepping(self, index: int) -> bool:
        """Whether the node's simulation advances this tick."""
        return self.records[index].health in STEPPING_STATES

    def routable(self, nodes: Sequence[FleetNode]) -> List[FleetNode]:
        """The nodes routers may pick from, best health tier first.

        With failover off this is the unfiltered node list — routers
        keep feeding dead nodes, which is the point of the ablation.
        """
        if not self.config.failover:
            return list(nodes)
        for tier in _ROUTABLE_TIERS:
            picked = [
                node for node in nodes if self.records[node.index].health in tier
            ]
            if picked:
                return picked
        return []

    def counts(self) -> Dict[str, int]:
        """``state value -> node count`` snapshot."""
        out = {state.value: 0 for state in NodeHealth}
        for record in self.records:
            out[record.health.value] += 1
        return out

    # -- tick lifecycle ---------------------------------------------------

    def restarts_due(self, now_s: float) -> List[int]:
        """Nodes whose reboot lands at or before ``now``, id order."""
        return [
            record.index
            for record in self.records
            if record.health is NodeHealth.DOWN
            and record.restart_due_s is not None
            and record.restart_due_s <= now_s + _TIME_EPS
        ]

    def tick(self, now_s: float) -> None:
        """Expire probation periods (call after restarts are applied)."""
        for record in self.records:
            if (
                record.health is NodeHealth.PROBATION
                and record.probation_until_s is not None
                and now_s + _TIME_EPS >= record.probation_until_s
            ):
                self._transition(record, NodeHealth.HEALTHY, now_s, "probation-served")
                record.probation_until_s = None

    def on_crash(self, index: int, now_s: float) -> NodeHealth:
        """A node's lanes all halted: go DOWN (reboot pending) or evict."""
        record = self.records[index]
        record.crashes += 1
        self.crashes += 1
        budget = self.chaos.max_restarts if self.chaos is not None else 0
        if record.restarts_used < budget:
            record.restarts_used += 1
            delay = self.chaos.restart_delay_s if self.chaos is not None else 0.0
            record.restart_due_s = now_s + delay
            self._transition(record, NodeHealth.DOWN, now_s, "crash")
        else:
            self.evictions += 1
            record.restart_due_s = None
            self._transition(record, NodeHealth.EVICTED, now_s, "crash-budget-spent")
        record.stall_rung = 0
        return record.health

    def on_restarted(self, index: int, now_s: float) -> None:
        """The cluster rebooted the node (fresh simulation): probation."""
        record = self.records[index]
        record.restart_due_s = None
        record.probation_until_s = now_s + self.config.probation_s
        record.last_progress_s = now_s
        record.stall_rung = 0
        self.restarts += 1
        self._transition(record, NodeHealth.PROBATION, now_s, "restart")

    def observe(
        self, index: int, now_s: float, progressed: bool, pending: int
    ) -> NodeHealth:
        """Post-step health update from one node's tick outcome.

        ``progressed`` is whether the node completed a request this
        tick.  Returns the node's (possibly escalated) health; the
        cluster strands the pending queue when the return value is
        EVICTED.
        """
        record = self.records[index]
        if record.health in (NodeHealth.DOWN, NodeHealth.EVICTED):
            return record.health
        if progressed or pending == 0:
            record.last_progress_s = now_s
            record.stall_rung = 0
            if record.health in (NodeHealth.DEGRADED, NodeHealth.QUARANTINED):
                self._transition(record, NodeHealth.HEALTHY, now_s, "recovered")
            return record.health
        stall_s = now_s - record.last_progress_s
        c = self.config
        if stall_s <= c.stall_after_s + _TIME_EPS:
            return record.health
        # One escalation rung per tick, however deep the stall already is.
        rung = 1
        if stall_s > c.stall_after_s * c.quarantine_factor + _TIME_EPS:
            rung = 2
        if stall_s > c.stall_after_s * c.evict_factor + _TIME_EPS:
            rung = 3
        rung = min(rung, record.stall_rung + 1)
        record.stall_rung = rung
        if rung >= 3 and record.health is NodeHealth.QUARANTINED:
            self.evictions += 1
            self._transition(record, NodeHealth.EVICTED, now_s, "stall-evicted")
        elif rung >= 2 and record.health in (
            NodeHealth.DEGRADED,
            NodeHealth.PROBATION,
        ):
            self._transition(record, NodeHealth.QUARANTINED, now_s, "stall")
        elif record.health in (NodeHealth.HEALTHY, NodeHealth.PROBATION):
            self._transition(record, NodeHealth.DEGRADED, now_s, "stall")
        return record.health

    # -- internals --------------------------------------------------------

    def _transition(
        self, record: NodeRecord, to: NodeHealth, now_s: float, reason: str
    ) -> None:
        if record.health is to:
            return
        self.ledger.append(
            (now_s, record.index, record.health.value, to.value, reason)
        )
        record.health = to
