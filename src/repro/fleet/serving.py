"""Request-serving workload model: the open queue behind one lane.

A :class:`ServerWorkload` is the fleet's stand-in for a request-serving
process: a FIFO queue of requests, each thread working on one request at
a time.  Completing a request emits exactly one heartbeat tagged with
the request index — that is how :mod:`repro.fleet.node` maps heartbeat
timestamps back onto per-request latencies, and it means the existing
MP-HARS controller observes a serving lane through the same Application
Heartbeats channel it uses for PARSEC workloads, unchanged.

Like the microbenchmark, the model is endless (``total_heartbeats() ==
0``): a serving process never "finishes", runs are bounded by the
cluster's horizon.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.workloads.base import AdvanceResult, WorkloadModel, WorkloadTraits

#: Remaining-work threshold below which a request counts as complete
#: (guards float dust from repeated grant subtraction).
_DONE_EPS = 1e-12

#: Default traits of the serving workload: memory-light request handling
#: with a real big-core advantage — the reason a hot lane exists.
SERVING_TRAITS = WorkloadTraits(
    name="serving",
    unit_scale=1.0,
    big_little_ratio=1.8,
    mem_intensity=0.15,
    activity_factor=0.9,
)


class ServerWorkload(WorkloadModel):
    """FIFO request queue served by ``n_threads`` workers."""

    def __init__(
        self,
        lane: str,
        n_threads: int,
        traits: Optional[WorkloadTraits] = None,
    ):
        if not lane:
            raise ConfigurationError("serving lane needs a name")
        super().__init__(traits or SERVING_TRAITS, n_threads)
        self.lane = lane
        #: Queued (request index, remaining units) pairs, FIFO.
        self._queue: Deque[List] = deque()
        #: thread index -> [request index, remaining units].
        self._active: Dict[int, List] = {}
        self._queued_units = 0.0
        #: Service-velocity multiplier of the current chaos episode:
        #: 1.0 nominal, (0, 1) during a slowdown, 0.0 during a hang
        #: (threads hold their grants but progress nothing — the queue
        #: freezes and heartbeats go silent).
        self.velocity_factor = 1.0

    def reset(self, seed: int = 0) -> None:
        self._queue.clear()
        self._active.clear()
        self._queued_units = 0.0
        self.velocity_factor = 1.0

    def submit(self, request_index: int, service_units: float) -> None:
        """Enqueue one request (the router calls this via the node)."""
        if service_units <= 0:
            raise ConfigurationError(
                f"request {request_index}: non-positive size {service_units}"
            )
        self._queue.append([request_index, service_units])
        self._queued_units += service_units

    def wants_cpu(self, thread_index: int) -> bool:
        if not 0 <= thread_index < self.n_threads:
            raise ConfigurationError(
                f"thread index {thread_index} out of range"
            )
        return thread_index in self._active or bool(self._queue)

    def advance(self, grants: Dict[int, float]) -> AdvanceResult:
        consumed: Dict[int, float] = {}
        tags: List[str] = []
        # Threads drain in index order so the dispatch of queued
        # requests to workers is deterministic.
        factor = self.velocity_factor
        for thread_index in sorted(grants):
            budget = grants[thread_index]
            if factor != 1.0:
                budget *= factor
            used = 0.0
            while budget > _DONE_EPS:
                active = self._active.get(thread_index)
                if active is None:
                    if not self._queue:
                        break
                    active = self._queue.popleft()
                    self._queued_units -= active[1]
                    self._active[thread_index] = active
                take = min(budget, active[1])
                active[1] -= take
                budget -= take
                used += take
                if active[1] <= _DONE_EPS:
                    tags.append(str(active[0]))
                    del self._active[thread_index]
            consumed[thread_index] = used
        return AdvanceResult(
            consumed=consumed,
            heartbeats=len(tags),
            heartbeat_tags=tuple(tags),
        )

    def is_done(self) -> bool:
        return False

    def total_heartbeats(self) -> int:
        return 0

    def cancel(self, request_index: int) -> bool:
        """Remove a request from the lane, wherever it sits.

        The resilience layer cancels the losing attempt of a hedged
        request and attempts that blow their per-attempt timeout.  A
        queued request is deleted in place; an in-service one frees its
        worker for the next queued request on the following tick.
        Returns whether the request was found (False means it already
        completed or was never here).
        """
        for position, entry in enumerate(self._queue):
            if entry[0] == request_index:
                self._queued_units -= entry[1]
                del self._queue[position]
                return True
        for thread_index, entry in self._active.items():
            if entry[0] == request_index:
                del self._active[thread_index]
                return True
        return False

    # -- queue introspection (routing signals) ------------------------------

    @property
    def queue_len(self) -> int:
        """Requests waiting for a worker (excludes in-service ones)."""
        return len(self._queue)

    @property
    def in_service(self) -> int:
        """Requests currently held by a worker thread."""
        return len(self._active)

    @property
    def backlog_units(self) -> float:
        """Work units queued plus remaining on in-service requests."""
        return self._queued_units + sum(
            entry[1] for entry in self._active.values()
        )
