"""Fleet configuration: one frozen object describing a whole cluster run.

A :class:`FleetConfig` plays the same role for :mod:`repro.fleet` that
:class:`~repro.experiments.runner.RunShape` plays for single-board runs:
everything that defines the experiment apart from the routing policy.
It rides inside :class:`~repro.experiments.runner.RunConfig` (the
``fleet`` field) so the unified ``repro.experiments.run()`` entry point
dispatches fleet runs too.

The module is deliberately dependency-light — ``RunConfig`` imports it
eagerly, and pulling the whole simulation stack in at import time would
slow every ``import repro``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.fleet.chaos import FleetFaultConfig
from repro.fleet.resilience import ResilienceConfig

#: Arrival-trace shapes :func:`repro.fleet.trace.make_trace` understands.
TRACES = ("poisson", "diurnal", "burst")

#: Mirror of :data:`repro.sim.engine.PROFILES` — duplicated here rather
#: than imported so this module stays import-light (a sync test pins the
#: two tuples together).
_PROFILES = ("fast", "legacy", "vector")


@dataclass(frozen=True)
class FleetConfig:
    """Everything that defines a fleet run apart from the router.

    Parameters
    ----------
    nodes:
        Number of simulated big.LITTLE boards behind the load balancer.
    shards:
        How many shards the cluster scheduler steps per tick.  Nodes are
        interleaved (node ``i`` belongs to shard ``i % shards``); results
        are bit-identical for every shard count — the determinism tests
        and ``bench_fleet.py`` assert it.
    seed:
        Seed for the arrival trace (service sizes, gaps, deadlines).
    tick_s:
        Simulation tick of every node (coarser than the single-board
        default: a fleet steps ``nodes`` engines per tick).
    profile:
        Engine profile per node; ``"vector"`` runs every node's MP-HARS
        Plan stage on the tensorized batch planner.
    trace:
        Arrival-trace shape: ``"poisson"``, ``"diurnal"`` or ``"burst"``.
    requests:
        Total requests in the trace (fleet-wide, open loop).
    per_node_rps:
        Mean fleet arrival rate expressed per node; the trace generator
        uses ``per_node_rps * nodes`` as its base rate.
    deadline_s:
        Per-request latency deadline (arrival-relative).
    service_units:
        Mean request size in work units (one unit ≈ one little-core
        second at the baseline frequency).
    heavy_fraction:
        Fraction of requests drawn from the heavy mode of the bimodal
        service-size distribution — the head-of-line blockers that make
        deadline-aware routing matter.
    heavy_scale:
        Size multiplier of the heavy mode.
    diurnal_period_s / diurnal_depth:
        Sinusoidal modulation of the arrival rate (``"diurnal"`` trace).
    burst_period_s / burst_duty / burst_scale:
        On/off modulation (``"burst"`` trace): for ``burst_duty`` of each
        period the rate is scaled by ``burst_scale``, otherwise damped so
        the long-run mean stays near the base rate.
    lane_threads:
        Threads per serving lane (each node runs a ``hot`` and a ``base``
        lane; see :mod:`repro.fleet.node`).
    adapt_every:
        MP-HARS adaptation period (heartbeats) on every node.
    percentile:
        Tail percentile the per-lane deadline targets steer on.
    slo_window:
        Sliding-window size (samples) of the per-lane SLO windows.
    slack:
        Headroom fraction of the deadline the controller aims below:
        the comfort point is ``(1 - slack) * deadline_s``.
    rate_span_s:
        Span of the timed rate window feeding the deadline targets.
    drain_s:
        Extra horizon after the last arrival before the run is cut off
        (unfinished requests are reported, not waited for).
    app_id:
        Application label stamped on every request (telemetry label).
    chaos:
        Node mortality model (:class:`~repro.fleet.chaos.
        FleetFaultConfig`): seeded crash/hang/slowdown schedules.  None
        (or a fully disabled config) leaves the run bit-identical to a
        fleet built without a chaos layer.
    resilience:
        Request-lifecycle policy (:class:`~repro.fleet.resilience.
        ResilienceConfig`): failover routing, per-attempt retries,
        hedging, admission control.  None means defaults when chaos is
        on (failover only) and *no resilience layer at all* otherwise.
    node_telemetry:
        Attach a full per-node :class:`~repro.telemetry.hub.TelemetryHub`
        (expensive at fleet scale; the cluster-level registry is always
        populated regardless).
    """

    nodes: int = 50
    shards: int = 1
    seed: int = 0
    tick_s: float = 0.02
    profile: str = "vector"
    trace: str = "poisson"
    requests: int = 10_000
    per_node_rps: float = 8.0
    deadline_s: float = 0.5
    service_units: float = 0.05
    heavy_fraction: float = 0.15
    heavy_scale: float = 6.0
    diurnal_period_s: float = 20.0
    diurnal_depth: float = 0.8
    burst_period_s: float = 4.0
    burst_duty: float = 0.3
    burst_scale: float = 3.0
    lane_threads: int = 2
    adapt_every: int = 5
    percentile: float = 95.0
    slo_window: int = 256
    slack: float = 0.4
    rate_span_s: float = 2.0
    drain_s: float = 20.0
    app_id: str = "search"
    node_telemetry: bool = False
    chaos: Optional[FleetFaultConfig] = None
    resilience: Optional[ResilienceConfig] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError("a fleet needs at least one node")
        if not 1 <= self.shards <= self.nodes:
            raise ConfigurationError(
                f"shards must be in [1, nodes], got {self.shards}"
            )
        if self.trace not in TRACES:
            raise ConfigurationError(
                f"unknown trace {self.trace!r}; valid: {TRACES}"
            )
        if self.profile not in _PROFILES:
            raise ConfigurationError(
                f"unknown profile {self.profile!r}; valid: {_PROFILES}"
            )
        if self.requests < 1:
            raise ConfigurationError("need at least one request")
        if self.per_node_rps <= 0:
            raise ConfigurationError("per_node_rps must be positive")
        if self.tick_s <= 0:
            raise ConfigurationError("tick must be positive")
        if self.deadline_s <= 0:
            raise ConfigurationError("deadline must be positive")
        if self.service_units <= 0:
            raise ConfigurationError("service_units must be positive")
        if not 0 <= self.heavy_fraction < 1:
            raise ConfigurationError("heavy_fraction must be in [0, 1)")
        if self.heavy_scale < 1:
            raise ConfigurationError("heavy_scale must be >= 1")
        if self.lane_threads < 1:
            raise ConfigurationError("lane_threads must be >= 1")
        if not 0 < self.percentile <= 100:
            raise ConfigurationError("percentile must be in (0, 100]")
        if self.slo_window < 2:
            raise ConfigurationError("slo_window must be >= 2")
        if not 0 < self.slack < 1:
            raise ConfigurationError("slack must be in (0, 1)")
        if self.rate_span_s <= 0:
            raise ConfigurationError("rate_span_s must be positive")
        if self.drain_s < 0:
            raise ConfigurationError("drain_s cannot be negative")
        if self.chaos is not None and not isinstance(
            self.chaos, FleetFaultConfig
        ):
            raise ConfigurationError(
                f"chaos must be a FleetFaultConfig, got "
                f"{type(self.chaos).__name__}"
            )
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceConfig
        ):
            raise ConfigurationError(
                f"resilience must be a ResilienceConfig, got "
                f"{type(self.resilience).__name__}"
            )

    @property
    def arrival_rps(self) -> float:
        """Fleet-wide mean arrival rate the trace generator targets."""
        return self.per_node_rps * self.nodes
