"""Resilience policy for fleet serving: failover, retry, hedge, shed.

A :class:`ResilienceConfig` is the request-lifecycle counterpart of
:class:`~repro.fleet.chaos.FleetFaultConfig`: chaos decides how nodes
fail, resilience decides what the serving tier does about it.  Four
knobs, each independently switchable:

* **failover** — routers only see nodes the
  :class:`~repro.fleet.supervisor.FleetSupervisor` reports routable
  (HEALTHY, falling back to PROBATION, then DEGRADED), and requests
  stranded on a crashed node are re-queued to survivors with their
  original deadlines.  Off, the fleet behaves like PR 7 with faults:
  routers keep feeding dead nodes and stranded requests are lost
  outright — the ablation ``bench_fleet_chaos.py`` measures.
* **per-attempt timeouts + retry** — an attempt that has not completed
  ``attempt_timeout_s`` after dispatch is cancelled and re-dispatched
  with exponential backoff (``retry_backoff_s`` doubling per attempt,
  capped at ``backoff_cap_s``), up to ``max_attempts``; the attempt
  that exhausts the budget marks the request *timed out*.
* **hedging** — a request whose estimated completion time exceeds
  ``hedge_fraction`` of its deadline budget is duplicated onto the
  best *other* routable node ("Hurry-up"-style tail insurance).  First
  completion wins; the losing attempt is cancelled and counted.
* **admission control** — when averaged per-node queue depth or the
  best base-lane wait exceed configured limits the
  :class:`AdmissionController` browns out (new hot-lane traffic is
  demoted to base) or sheds (new arrivals are refused) until the
  signals fall below ``release_fraction`` of the trip level — the
  hysteresis that keeps the controller from flapping at the limit.

With every knob at its default (and no chaos layer attached) the
cluster takes its original code paths and stays bit-identical to a run
built without a resilience layer at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

#: Admission-controller states, in escalation order.
ADMISSION_STATES = ("normal", "brownout", "shed")


@dataclass(frozen=True)
class ResilienceConfig:
    """Request-lifecycle policy for one fleet run.

    Parameters
    ----------
    failover:
        Route around non-routable nodes and re-queue crash-stranded
        requests to survivors (original deadlines preserved).
    stall_after_s:
        A node with pending requests and no completion for this long
        counts as stalled; the supervisor starts escalating.
    quarantine_factor / evict_factor:
        Stall multiples at which a node reaches QUARANTINED / EVICTED
        (escalation is one state per tick, mirroring PR 3).
    probation_s:
        Time a restarted node spends in PROBATION before it counts as
        HEALTHY again (it is routable during probation only when no
        HEALTHY node exists).
    attempt_timeout_s:
        Per-attempt completion deadline measured from dispatch; None
        disables timeouts and retries entirely.
    max_attempts:
        Total dispatch budget per request (first attempt included).
    retry_backoff_s / backoff_cap_s:
        Exponential backoff between attempts:
        ``min(backoff_cap_s, retry_backoff_s * 2**(attempt-1))``.
    hedge_fraction:
        Fraction of the deadline budget the estimated completion time
        may consume before the request is hedged to a second node;
        None disables hedging.
    shed_queue_depth / brownout_queue_depth:
        Mean per-routable-node queued requests beyond which arrivals
        are shed / hot-lane arrivals are demoted to base.  None
        disables the respective trigger.
    shed_wait_s:
        Best base-lane estimated wait beyond which arrivals are shed
        (the predicted-tail trigger).  None disables it.
    release_fraction:
        Signals must fall below ``release_fraction`` x the trip level
        before the admission state steps back down (hysteresis).
    """

    failover: bool = True

    # -- node health thresholds (FleetSupervisor) ------------------------
    stall_after_s: float = 2.0
    quarantine_factor: float = 2.0
    evict_factor: float = 4.0
    probation_s: float = 1.0

    # -- per-attempt timeout + retry -------------------------------------
    attempt_timeout_s: Optional[float] = None
    max_attempts: int = 3
    retry_backoff_s: float = 0.05
    backoff_cap_s: float = 0.4

    # -- tail-latency hedging --------------------------------------------
    hedge_fraction: Optional[float] = None

    # -- overload protection (AdmissionController) -----------------------
    shed_queue_depth: Optional[float] = None
    brownout_queue_depth: Optional[float] = None
    shed_wait_s: Optional[float] = None
    release_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.stall_after_s <= 0:
            raise ConfigurationError("stall_after_s must be positive")
        if self.quarantine_factor < 1:
            raise ConfigurationError("quarantine_factor must be >= 1")
        if self.evict_factor < self.quarantine_factor:
            raise ConfigurationError(
                "evict_factor must be >= quarantine_factor"
            )
        if self.probation_s < 0:
            raise ConfigurationError("probation_s must be >= 0")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ConfigurationError("attempt_timeout_s must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s must be >= 0")
        if self.backoff_cap_s < self.retry_backoff_s:
            raise ConfigurationError(
                "backoff_cap_s must be >= retry_backoff_s"
            )
        if self.hedge_fraction is not None and not 0 < self.hedge_fraction <= 1:
            raise ConfigurationError("hedge_fraction must be in (0, 1]")
        for name in ("shed_queue_depth", "brownout_queue_depth", "shed_wait_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not 0 < self.release_fraction < 1:
            raise ConfigurationError("release_fraction must be in (0, 1)")

    # -- enablement queries ----------------------------------------------

    @property
    def retry_enabled(self) -> bool:
        """Whether per-attempt timeouts (and so retries) are active."""
        return self.attempt_timeout_s is not None

    @property
    def hedge_enabled(self) -> bool:
        return self.hedge_fraction is not None

    @property
    def admission_enabled(self) -> bool:
        """Whether any overload trigger is configured."""
        return (
            self.shed_queue_depth is not None
            or self.brownout_queue_depth is not None
            or self.shed_wait_s is not None
        )

    @property
    def tracking_enabled(self) -> bool:
        """Whether the cluster must track per-request attempts."""
        return self.retry_enabled or self.hedge_enabled

    def backoff_s(self, attempt: int) -> float:
        """Delay before dispatching attempt ``attempt + 1``."""
        if attempt < 1:
            raise ConfigurationError("backoff is defined for attempts >= 1")
        return min(self.backoff_cap_s, self.retry_backoff_s * 2 ** (attempt - 1))


class AdmissionController:
    """Overload state machine with hysteresis: normal/brownout/shed.

    ``update`` is called once per tick with the fleet's routing-time
    load signals (mean queued requests per routable node, best
    base-lane estimated wait) and returns the admission state applied
    to that tick's *new arrivals* — retries, hedges and crash re-queues
    are never shed, they are already admitted work.
    """

    def __init__(self, config: ResilienceConfig):
        self.config = config
        self.state = "normal"
        #: state -> ticks spent there (telemetry / tests).
        self.ticks = {state: 0 for state in ADMISSION_STATES}

    def update(self, queue_depth: float, best_wait_s: float) -> str:
        c = self.config
        shed_trip = (
            c.shed_queue_depth is not None and queue_depth > c.shed_queue_depth
        ) or (c.shed_wait_s is not None and best_wait_s > c.shed_wait_s)
        shed_clear = (
            c.shed_queue_depth is None
            or queue_depth < c.shed_queue_depth * c.release_fraction
        ) and (
            c.shed_wait_s is None
            or best_wait_s < c.shed_wait_s * c.release_fraction
        )
        brown_trip = (
            c.brownout_queue_depth is not None
            and queue_depth > c.brownout_queue_depth
        )
        brown_clear = (
            c.brownout_queue_depth is None
            or queue_depth < c.brownout_queue_depth * c.release_fraction
        )
        if self.state == "shed":
            if shed_clear:
                self.state = "normal" if brown_clear else "brownout"
        elif shed_trip:
            self.state = "shed"
        elif self.state == "brownout":
            if brown_clear:
                self.state = "normal"
        elif brown_trip:
            self.state = "brownout"
        self.ticks[self.state] += 1
        return self.state
