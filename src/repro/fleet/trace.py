"""Seeded open-loop arrival traces.

A fleet run is driven by a pre-generated request trace — open loop, the
way production load arrives: requests show up on their own schedule
whether or not the cluster keeps up (closed-loop heartbeat targets, by
contrast, only ever see the work the system admits).  Generating the
whole trace up front, from one seeded :class:`random.Random`, is what
makes the sharded cluster deterministic: the trace depends only on the
:class:`~repro.fleet.config.FleetConfig`, never on how the nodes are
stepped.

Three shapes:

* ``poisson`` — stationary Poisson arrivals at the configured rate;
* ``diurnal`` — a non-homogeneous Poisson process whose rate follows a
  sinusoid (the classic day/night traffic curve, compressed to
  simulation scale);
* ``burst``  — on/off modulation: short windows at ``burst_scale`` times
  the base rate, damped in between so the long-run mean stays put.

Service sizes are bimodal: most requests are small, a configurable
fraction is ``heavy_scale`` times larger.  The heavy tail is what makes
deadline-aware routing interesting — small requests stuck behind a heavy
one in FIFO order are exactly the deadline misses the Hurry-up router
exists to prevent.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.fleet.config import FleetConfig

#: Uniform jitter applied to every service size (± half of this range).
_SIZE_JITTER = (0.5, 1.5)

#: Off-window damping of the burst trace (keeps the long-run mean rate
#: close to the configured base rate for typical duty/scale settings).
_BURST_OFF_FACTOR = 0.4


@dataclass(frozen=True)
class Request:
    """One request of the open-loop trace.

    ``deadline_s`` is absolute simulated time (arrival + deadline
    budget); ``service_units`` is the work the serving lane must grant
    (one unit ≈ one little-core second at the baseline frequency).
    ``heavy`` marks the large mode of the bimodal size distribution.
    """

    index: int
    app: str
    arrival_s: float
    service_units: float
    deadline_s: float
    heavy: bool = False

    @property
    def budget_s(self) -> float:
        """Deadline budget relative to arrival."""
        return self.deadline_s - self.arrival_s


def make_trace(config: FleetConfig) -> Tuple[Request, ...]:
    """Generate the full arrival trace for one fleet run.

    Deterministic in ``config`` alone; arrivals are non-decreasing in
    time and indices follow arrival order.
    """
    rng = random.Random(config.seed)
    rate_fn = _RATE_SHAPES.get(config.trace)
    if rate_fn is None:
        raise ConfigurationError(f"unknown trace shape {config.trace!r}")
    base = config.arrival_rps
    requests = []
    now = 0.0
    for index in range(config.requests):
        rate = rate_fn(config, base, now)
        now += rng.expovariate(rate)
        heavy = rng.random() < config.heavy_fraction
        units = config.service_units * rng.uniform(*_SIZE_JITTER)
        if heavy:
            units *= config.heavy_scale
        requests.append(
            Request(
                index=index,
                app=config.app_id,
                arrival_s=now,
                service_units=units,
                deadline_s=now + config.deadline_s,
                heavy=heavy,
            )
        )
    return tuple(requests)


def _poisson_rate(config: FleetConfig, base: float, now_s: float) -> float:
    return base


def _diurnal_rate(config: FleetConfig, base: float, now_s: float) -> float:
    """Sinusoidal day/night curve; floored so the process never stalls."""
    phase = 2.0 * math.pi * now_s / config.diurnal_period_s
    return max(base * (1.0 + config.diurnal_depth * math.sin(phase)), base * 0.05)


def _burst_rate(config: FleetConfig, base: float, now_s: float) -> float:
    """On/off traffic: the first ``burst_duty`` of each period burns hot."""
    position = math.fmod(now_s, config.burst_period_s) / config.burst_period_s
    if position < config.burst_duty:
        return base * config.burst_scale
    return base * _BURST_OFF_FACTOR


_RATE_SHAPES = {
    "poisson": _poisson_rate,
    "diurnal": _diurnal_rate,
    "burst": _burst_rate,
}
