"""One fleet node: a big.LITTLE board serving requests under MP-HARS.

A :class:`FleetNode` wraps one :class:`~repro.sim.engine.Simulation`
(its own ODROID-XU3 spec, clock, power model and scheduler) running two
serving lanes, each a :class:`~repro.fleet.serving.ServerWorkload`
behind a :class:`~repro.heartbeats.targets.DeadlineTarget`:

* ``hot``  — the lane deadline-risk requests are routed to; its
  big-core affinity emerges from MP-HARS itself (an underperforming
  lane grows into the fast cluster first — the Hurry-up split without
  hard-coding it);
* ``base`` — everything else.

The node's only coupling to the rest of the fleet is request enqueue
and read-only load snapshots — nodes never share simulation state,
which is what makes the sharded cluster bit-identical across shard
counts.

Completion mapping: every request completion emits one heartbeat tagged
with the request index; after each tick the node drains the new tail of
each lane's heartbeat log, joins tags back to pending requests, and
turns heartbeat timestamps into latencies for the SLO windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.calibration import calibrate
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_I
from repro.errors import ConfigurationError
from repro.faults.config import FaultConfig
from repro.fleet.config import FleetConfig
from repro.fleet.serving import ServerWorkload
from repro.fleet.slo import SloWindow
from repro.fleet.trace import Request
from repro.heartbeats.targets import DeadlineTarget
from repro.mphars.manager import MpHarsManager
from repro.platform.cluster import BIG, LITTLE
from repro.platform.spec import odroid_xu3
from repro.sim.engine import Simulation
from repro.sim.process import SimApp

#: The serving lanes every node runs, in deterministic order.
LANES = ("hot", "base")

#: EWMA gain of the per-lane service-velocity estimate the routers use.
VELOCITY_ALPHA = 0.05

#: Floor (fraction of nominal single-thread capacity) under which the
#: velocity estimate is clamped when computing wait estimates, so a
#: momentarily idle lane does not report infinite waits.
_VELOCITY_FLOOR = 0.1


@dataclass(frozen=True)
class Completion:
    """One finished request, as the cluster aggregates it."""

    request: Request
    node: int
    lane: str
    finish_s: float
    latency_s: float
    missed: bool


class FleetNode:
    """One simulated board + its local MP-HARS controller."""

    def __init__(
        self,
        index: int,
        config: FleetConfig,
        epoch_s: float = 0.0,
        faults: Optional[FaultConfig] = None,
    ):
        self.index = index
        self.name = f"node-{index}"
        self.config = config
        #: Cluster time at which this incarnation booted.  The node's
        #: own simulation clock restarts at zero on every reboot;
        #: completion times are reported as ``epoch_s + local time`` so
        #: latencies stay arrival-relative across restarts.  0.0 for a
        #: never-restarted node, which keeps ``0.0 + t == t`` bit-exact.
        self.epoch_s = epoch_s
        #: Node-local fault layer — the chaos compiler delivers node
        #: crashes through it (see :mod:`repro.fleet.chaos`).
        self.faults = faults
        spec = odroid_xu3()
        self.sim = Simulation(
            spec, tick_s=config.tick_s, profile=config.profile, faults=faults
        )
        self.models: Dict[str, ServerWorkload] = {}
        self.apps: Dict[str, SimApp] = {}
        self.targets: Dict[str, DeadlineTarget] = {}
        self.slo: Dict[str, SloWindow] = {}
        self._cursor: Dict[str, int] = {}
        self._velocity: Dict[str, float] = {}
        self._nominal: Dict[str, float] = {}
        for lane in LANES:
            model = ServerWorkload(lane, config.lane_threads)
            target = DeadlineTarget(
                deadline_s=config.deadline_s,
                percentile=config.percentile,
                slack=config.slack,
            )
            self.models[lane] = model
            self.targets[lane] = target
            self.apps[lane] = self.sim.add_app(SimApp(lane, model, target))
            self.slo[lane] = SloWindow(config.slo_window)
            self._cursor[lane] = 0
            cluster = spec.big if lane == "hot" else spec.little
            cluster_name = BIG if lane == "hot" else LITTLE
            nominal = (
                model.thread_speed(
                    cluster_name, cluster.core_type, cluster.max_freq_mhz
                )
                * config.lane_threads
            )
            self._nominal[lane] = nominal
            self._velocity[lane] = nominal
        self.manager = MpHarsManager(
            policy=HARS_I,
            perf_estimator=PerformanceEstimator(),
            power_estimator=calibrate(spec),
            adapt_every=config.adapt_every,
        )
        self.sim.add_controller(self.manager)
        #: request index -> (Request, lane), for completion join and
        #: for cancellation/stranding (the resilience layer needs to
        #: know which lane holds a request to pull it back out).
        self._pending: Dict[int, Tuple[Request, str]] = {}

    # -- load balancer interface ---------------------------------------------

    def enqueue(self, request: Request, lane: str) -> None:
        """Admit one request into a lane's queue."""
        if lane not in self.models:
            raise ConfigurationError(f"{self.name}: unknown lane {lane!r}")
        if request.index in self._pending:
            raise ConfigurationError(
                f"{self.name}: request {request.index} routed twice"
            )
        self._pending[request.index] = (request, lane)
        self.models[lane].submit(request.index, request.service_units)

    def cancel(self, request_index: int) -> bool:
        """Withdraw a pending request (hedge loser / attempt timeout)."""
        entry = self._pending.pop(request_index, None)
        if entry is None:
            return False
        self.models[entry[1]].cancel(request_index)
        return True

    def stranded(self) -> List[Tuple[Request, str]]:
        """Drain and return every pending request (crash/evict path)."""
        entries = list(self._pending.values())
        self._pending.clear()
        return entries

    def pending_indices(self) -> Tuple[int, ...]:
        """Indices of admitted-but-unfinished requests, routing order."""
        return tuple(self._pending)

    # -- chaos hooks ----------------------------------------------------------

    def set_velocity_factor(self, factor: float) -> None:
        """Apply a hang/slowdown episode's service-velocity factor."""
        for lane in LANES:
            self.models[lane].velocity_factor = factor

    @property
    def crashed(self) -> bool:
        """Whether the node's serving lanes have all halted (node down)."""
        return all(app.halted for app in self.apps.values())

    def backlog_units(self, lane: str) -> float:
        """Outstanding work units in a lane (queued + in service)."""
        return self.models[lane].backlog_units

    def queue_len(self, lane: str) -> int:
        return self.models[lane].queue_len

    def est_wait_s(self, lane: str) -> float:
        """Estimated queueing delay for a request joining ``lane`` now."""
        velocity = max(
            self._velocity[lane], self._nominal[lane] * _VELOCITY_FLOOR
        )
        return self.models[lane].backlog_units / velocity

    def nominal_rate(self, lane: str) -> float:
        """Units/s the lane's threads deliver at max frequency."""
        return self._nominal[lane]

    @property
    def pending(self) -> int:
        """Requests admitted but not yet completed."""
        return len(self._pending)

    # -- stepping --------------------------------------------------------------

    def step(self) -> List[Completion]:
        """Advance one tick; return the requests that completed in it."""
        self.sim.step()
        now_s = self.sim.clock.now_s
        completions: List[Completion] = []
        for lane in LANES:
            app = self.apps[lane]
            log = app.log
            window = self.slo[lane]
            done_units = 0.0
            while self._cursor[lane] < len(log):
                beat = log.beat(self._cursor[lane])
                self._cursor[lane] += 1
                request, _ = self._pending.pop(int(beat.tag))
                finish_s = self.epoch_s + beat.time_s
                latency = finish_s - request.arrival_s
                missed = finish_s > request.deadline_s + 1e-9
                window.observe(latency, missed)
                done_units += request.service_units
                completions.append(
                    Completion(
                        request=request,
                        node=self.index,
                        lane=lane,
                        finish_s=finish_s,
                        latency_s=latency,
                        missed=missed,
                    )
                )
            # Service-velocity EWMA: the routers' wait estimates.
            self._velocity[lane] += VELOCITY_ALPHA * (
                done_units / self.sim.tick_s - self._velocity[lane]
            )
            # Re-center the lane's deadline target from the SLO window
            # and the timed completion rate (elapsed-span corrected, so
            # a lane is not misread as slow right after it warms up).
            self.targets[lane].update(
                app.monitor.timed_rate(now_s, self.config.rate_span_s),
                window.percentile(self.config.percentile),
            )
        return completions

    # -- accounting -------------------------------------------------------------

    def energy_j(self, channel: str = "total") -> float:
        return self.sim.sensor.energy_j(channel)

    def average_power_w(self, channel: str = "total") -> float:
        return self.sim.sensor.average_power_w(channel)
