"""Pluggable request routing: the fleet's load balancer policies.

Routers are pure decision functions over the *previous tick's* node
state — the cluster routes a tick's arrivals before stepping any shard,
so every router sees the same snapshot no matter how the nodes are
sharded.  That ordering, plus node-local simulation state, is the whole
determinism argument.

Three policies:

* ``round-robin``   — the classic baseline: next node, base lane.
* ``least-loaded``  — join the shortest (estimated-wait) base queue.
* ``deadline-risk`` — the Hurry-up policy ("Hurry-up: Scaling Web
  Search on Big/Little Multi-core Architectures"): estimate the
  request's completion time on the best base lane; if it threatens the
  deadline, promote the request to a hot lane — which MP-HARS grows
  onto the big cores — otherwise keep it on the energy-efficient base
  lane.
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence, Tuple, Type

from repro.errors import ConfigurationError
from repro.fleet.node import FleetNode
from repro.fleet.trace import Request


class Router(abc.ABC):
    """One routing policy; ``route`` returns ``(node_index, lane)``."""

    name: str = ""

    @abc.abstractmethod
    def route(
        self, request: Request, nodes: Sequence[FleetNode], now_s: float
    ) -> Tuple[int, str]:
        """Pick the node and lane for one arriving request.

        ``nodes`` may be a filtered subset of the fleet (the supervisor
        hides unhealthy nodes under failover); the returned index is
        into *that sequence*, and an empty sequence raises
        :class:`~repro.errors.ConfigurationError` — callers defer the
        request instead of routing it into nothing.
        """


class RoundRobinRouter(Router):
    """Cycle through the nodes; everything rides the base lane."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(
        self, request: Request, nodes: Sequence[FleetNode], now_s: float
    ) -> Tuple[int, str]:
        if not nodes:
            raise ConfigurationError(
                "round-robin router asked to route with no nodes"
            )
        # The counter is reduced against the *current* candidate count,
        # never stored pre-reduced: the node list shrinks and grows as
        # the supervisor quarantines and revives nodes, and a raw index
        # held across ticks would go stale (or divide by zero above).
        index = self._next % len(nodes)
        self._next = index + 1
        return index, "base"


class LeastLoadedRouter(Router):
    """Join the base lane with the smallest estimated wait."""

    name = "least-loaded"

    def route(
        self, request: Request, nodes: Sequence[FleetNode], now_s: float
    ) -> Tuple[int, str]:
        return _argmin_wait(nodes, "base"), "base"


class DeadlineRiskRouter(Router):
    """Hurry-up routing: deadline-risk requests go to the hot lane.

    ``margin`` is the fraction of the remaining deadline budget the
    estimated completion time may consume before the request counts as
    at-risk (lower = more eager promotion to big cores).
    """

    name = "deadline-risk"

    def __init__(self, margin: float = 0.6):
        if not 0 < margin <= 1:
            raise ConfigurationError("margin must be in (0, 1]")
        self.margin = margin

    def route(
        self, request: Request, nodes: Sequence[FleetNode], now_s: float
    ) -> Tuple[int, str]:
        base_index = _argmin_wait(nodes, "base")
        base_node = nodes[base_index]
        service_s = request.service_units / base_node.nominal_rate("base") * (
            base_node.config.lane_threads
        )
        eta_s = base_node.est_wait_s("base") + service_s
        budget_s = request.deadline_s - now_s
        if eta_s <= self.margin * budget_s:
            return base_index, "base"
        return _argmin_wait(nodes, "hot"), "hot"


def _argmin_wait(nodes: Sequence[FleetNode], lane: str) -> int:
    """Node with the smallest estimated wait (ties: lowest index)."""
    if not nodes:
        raise ConfigurationError(
            f"no routable nodes for lane {lane!r} — the supervisor filters "
            "unhealthy nodes out; an empty candidate set must be handled "
            "(deferred) by the caller, not routed"
        )
    best = 0
    best_wait = nodes[0].est_wait_s(lane)
    for index in range(1, len(nodes)):
        wait = nodes[index].est_wait_s(lane)
        if wait < best_wait:
            best = index
            best_wait = wait
    return best


ROUTERS: Dict[str, Type[Router]] = {
    router.name: router
    for router in (RoundRobinRouter, LeastLoadedRouter, DeadlineRiskRouter)
}


def make_router(name: str) -> Router:
    """Instantiate a router by policy name."""
    cls = ROUTERS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown router {name!r}; valid: {tuple(sorted(ROUTERS))}"
        )
    return cls()
