"""Fleet-scale request-driven serving on big.LITTLE nodes.

``repro.fleet`` scales the single-board MP-HARS runtime out to a
cluster: hundreds of independent node simulations behind a load
balancer, driven by open-loop arrival traces with per-request
deadlines, steered on tail-latency SLO windows instead of heartbeat
rate windows (the Hurry-up serving model — big cores for deadline-risk
requests, little cores for the rest).

:class:`FleetConfig` is imported eagerly (it is the light configuration
object :class:`~repro.experiments.runner.RunConfig` embeds); the
simulation stack behind :func:`run_fleet` loads lazily on first use.
"""

from repro.fleet.chaos import FleetFaultConfig, NodeChaosEvent, crash_wave
from repro.fleet.config import TRACES, FleetConfig
from repro.fleet.resilience import AdmissionController, ResilienceConfig

__all__ = [
    "AdmissionController",
    "FleetCluster",
    "FleetConfig",
    "FleetFaultConfig",
    "FleetResult",
    "FleetSupervisor",
    "NodeChaosEvent",
    "NodeHealth",
    "ROUTERS",
    "Request",
    "ResilienceConfig",
    "SloWindow",
    "TRACES",
    "crash_wave",
    "make_router",
    "make_trace",
    "run_fleet",
]

#: name -> "module:attribute" for the lazily-imported surface.
_LAZY = {
    "FleetCluster": ("repro.fleet.cluster", "FleetCluster"),
    "FleetResult": ("repro.fleet.cluster", "FleetResult"),
    "run_fleet": ("repro.fleet.cluster", "run_fleet"),
    "ROUTERS": ("repro.fleet.router", "ROUTERS"),
    "make_router": ("repro.fleet.router", "make_router"),
    "Request": ("repro.fleet.trace", "Request"),
    "make_trace": ("repro.fleet.trace", "make_trace"),
    "SloWindow": ("repro.fleet.slo", "SloWindow"),
    "FleetSupervisor": ("repro.fleet.supervisor", "FleetSupervisor"),
    "NodeHealth": ("repro.fleet.supervisor", "NodeHealth"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.fleet' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value
    return value
