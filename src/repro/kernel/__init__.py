"""Layered runtime kernel.

The kernel splits the runtime into four narrow layers:

1. :mod:`repro.kernel.bus` — a typed event bus the engine publishes on
   (``TickStart``, ``HeartbeatEmitted``, ``StateApplied``,
   ``PowerSample``, ``AppFinished``); controllers attach to the engine
   only through bus subscriptions.
2. :mod:`repro.kernel.mape` — the MAPE-K control plane: Monitor,
   Analyzer, Planner and Executor stages over a shared
   :class:`~repro.kernel.mape.Knowledge` store.  HARS-I/E/EI, MP-HARS
   and the Kalman/escape/ratio-learning extensions are all plugins of
   these stages.
3. :mod:`repro.kernel.estimation` — a caching layer over the
   performance and power estimators; Algorithm 2 re-evaluates the same
   candidates every adaptation period, so this is the hottest
   decision-side path.  :mod:`repro.kernel.batchplan` sits beside it:
   the vectorized planner backend that runs Algorithm 2 as array ops
   over precomputed state-space tensors (``RunConfig(profile="vector")``),
   bit-identical to the scalar sweep.
4. :mod:`repro.kernel.actuation` — the actuation façade; Execute
   stages act on DVFS and thread placement only through it, and every
   application of a system state is announced as ``StateApplied``.
"""

from repro.kernel.actuation import Actuator
from repro.kernel.bus import (
    AppFinished,
    Event,
    EventBus,
    HeartbeatEmitted,
    PowerSample,
    StateApplied,
    TickStart,
)

#: Estimation and MAPE-K names resolved lazily (PEP 562): those modules
#: sit above repro.core in the layer stack, while the bus and actuator
#: sit below it — importing them eagerly here would make
#: ``sim.controller → kernel.bus`` circular.
_LAZY = {
    "CachedPerformanceEstimator": "repro.kernel.estimation",
    "CachedPowerEstimator": "repro.kernel.estimation",
    "EstimationLayer": "repro.kernel.estimation",
    "CandidateBox": "repro.kernel.batchplan",
    "PlanRequest": "repro.kernel.batchplan",
    "PlanService": "repro.kernel.batchplan",
    "StateSpaceTensor": "repro.kernel.batchplan",
    "batch_next_sys_state": "repro.kernel.batchplan",
    "Analysis": "repro.kernel.mape",
    "Analyzer": "repro.kernel.mape",
    "CycleContext": "repro.kernel.mape",
    "Executor": "repro.kernel.mape",
    "Knowledge": "repro.kernel.mape",
    "MapeLoop": "repro.kernel.mape",
    "Monitor": "repro.kernel.mape",
    "Observation": "repro.kernel.mape",
    "PlanResult": "repro.kernel.mape",
    "SearchPlanner": "repro.kernel.mape",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value

__all__ = [
    "Actuator",
    "Analysis",
    "Analyzer",
    "AppFinished",
    "CachedPerformanceEstimator",
    "CachedPowerEstimator",
    "CandidateBox",
    "CycleContext",
    "PlanRequest",
    "PlanService",
    "StateSpaceTensor",
    "batch_next_sys_state",
    "EstimationLayer",
    "Event",
    "EventBus",
    "Executor",
    "HeartbeatEmitted",
    "Knowledge",
    "MapeLoop",
    "Monitor",
    "Observation",
    "PlanResult",
    "PowerSample",
    "SearchPlanner",
    "StateApplied",
    "TickStart",
]
