"""Vectorized batch planning engine: Algorithm 2 as tensor operations.

The HARS state space is tiny (at most a few thousand ``(C_B, C_L, f_B,
f_L)`` points per application), yet the scalar planner walks it one
Python call at a time through :func:`repro.core.search.get_next_sys_state`
every adaptation period.  This module precomputes the *full* state-space
tensor per performance/power model — dense numpy arrays indexed by
``(C_B, C_L, i_fB, i_fL)`` holding predicted capacity, used cores,
utilizations and power — and reimplements the bounded sweep, the
Manhattan-distance prune, the structural ``candidate_filter``, the
guardrail ``guard_filter`` veto, the feasibility test and the
``_better`` tie-breaking as boolean-mask and argmax array ops.

**Parity contract.**  The vector backend is bit-identical to the scalar
oracle: the selected state, every ``SearchResult`` counter
(``states_explored``, ``pruned``, ``filtered``, ``estimation_failures``,
``forced_fallback``) and the winner's floats match the scalar sweep on
every input.  Three properties make this exact rather than approximate:

1. *Tensor floats are scalar floats.*  Tensor cells are produced by the
   same per-state estimator calls the scalar path makes (capacity and
   utilizations), and the power plane is combined with elementwise
   float64 ops in the same association order as
   :meth:`~repro.core.power_estimator.LinearCoefficients.predict`
   (``(α·C)·U + β``, summed big-then-little) — IEEE-754 doubles either
   way.
2. *Feasible selection is a first-argmax.*  The scalar fold keeps the
   incumbent on ties (strict ``>``), which over candidates in sweep
   order is exactly ``argmax`` (numpy returns the first maximum) of
   perf/watt over the feasible subset; any feasible candidate beats
   every infeasible one.
3. *The infeasible banded fold shortlists exactly.*  ``_better``'s
   banded comparison (win above ``rate·(1+1e-9)``, lose below
   ``rate·(1−1e-9)``, perf/watt tie-break inside the band) is not a
   total order, so it is replayed, not argmax'd: a prefix running
   maximum ``PM`` shortlists every candidate with
   ``rate ≥ PM·(1−(N+4)·1e-9)`` and the exact scalar fold runs over the
   (tiny) shortlist.  A dropped candidate can never beat the fold's
   incumbent — the incumbent's rate is always within ``(N+2)·1e-9`` of
   ``PM`` (it either holds the prefix maximum, beat it, or tied it
   through at most ``N`` band steps of relative width ``1e-9``), so a
   candidate more than ``(N+4)·1e-9`` below ``PM`` loses outright; the
   margin dwarfs float rounding by six orders of magnitude.

The winner is then re-evaluated through the scalar
:func:`~repro.core.search.evaluate_state` (via the memoizing estimation
layer), so the returned :class:`~repro.core.search.EvaluatedState` is
the very object the scalar path would have produced.

**Filter protocol.**  Structural and guardrail filters stay ordinary
``(candidate, current) -> bool`` callables; a filter may *additionally*
expose ``box_mask(box)`` returning a boolean array over a
:class:`CandidateBox` to be applied vectorized
(:class:`~repro.guardrails.layer.BudgetVeto` and MP-HARS's partition
filter do).  Filters without a mask fall back to per-candidate Python
calls in sweep order, preserving side-effect order.

**Scope.**  Parity assumes the stock estimator contract: estimates are
pure functions of their inputs that either return positive
capacity/power or raise :class:`~repro.errors.EstimationError`.  A
non-conforming estimator that *returns* a non-positive power instead of
raising is treated as an estimation failure here (the scalar fold's
behaviour for that case depends on encounter order and is not
reproducible from a tensor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

import numpy as np

from repro.core.perf_estimator import tabulate_performance
from repro.core.search import SearchResult, evaluate_state
from repro.core.state import SystemState, _clamped_range, from_indices
from repro.errors import ConfigurationError, EstimationError
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.spec import PlatformSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.policy import SearchSpace
    from repro.kernel.estimation import EstimationLayer

#: Relative half-width of the ``_better`` tie band (mirrors core.search).
_BAND = 1e-9


class StateSpaceTensor:
    """Dense per-model tensors over the full ``(C_B, C_L, i_fB, i_fL)`` grid.

    ``capacity``/``util_big``/``util_little`` come from the performance
    model (NaN where it fails), ``used_big``/``used_little`` from the
    thread assignment, ``power`` from the power model (NaN where either
    model fails), ``perf_valid``/``valid`` are the failure masks.  The
    tensor belongs to one ``(performance model, power model, n_threads)``
    triple; the owning :class:`~repro.kernel.estimation.EstimationLayer`
    drops it whenever a model is swapped or invalidated.
    """

    __slots__ = (
        "spec_name",
        "n_threads",
        "capacity",
        "used_big",
        "used_little",
        "util_big",
        "util_little",
        "power",
        "perf_valid",
        "valid",
        "big_freqs",
        "little_freqs",
    )

    def __init__(
        self,
        spec_name: str,
        n_threads: int,
        capacity: np.ndarray,
        used_big: np.ndarray,
        used_little: np.ndarray,
        util_big: np.ndarray,
        util_little: np.ndarray,
        power: np.ndarray,
        perf_valid: np.ndarray,
        valid: np.ndarray,
        big_freqs: np.ndarray,
        little_freqs: np.ndarray,
    ):
        self.spec_name = spec_name
        self.n_threads = n_threads
        self.capacity = capacity
        self.used_big = used_big
        self.used_little = used_little
        self.util_big = util_big
        self.util_little = util_little
        self.power = power
        self.perf_valid = perf_valid
        self.valid = valid
        self.big_freqs = big_freqs
        self.little_freqs = little_freqs

    @classmethod
    def build(
        cls, spec: PlatformSpec, n_threads: int, perf: Any, power: Any
    ) -> "StateSpaceTensor":
        """Tabulate both models over the full grid.

        ``perf``/``power`` are whatever the estimation layer holds — the
        memoizing wrappers (whose ``tabulate`` routes per-state calls
        through the cache) or raw estimators.  Estimators without a
        ``tabulate`` are swept per state through their ``estimate``.
        """
        tab = getattr(perf, "tabulate", None)
        if tab is not None:
            tables = tab(spec, n_threads)
        else:
            tables = tabulate_performance(spec, n_threads, perf.estimate)
        perf_valid = tables["valid"]
        ptab = getattr(power, "tabulate", None)
        if ptab is not None:
            power_grid, power_ok = _combine_power(ptab(spec), tables)
        else:
            power_grid, power_ok = _sweep_power(
                spec, n_threads, perf, power, perf_valid
            )
        return cls(
            spec_name=spec.name,
            n_threads=n_threads,
            capacity=tables["capacity"],
            used_big=tables["used_big"],
            used_little=tables["used_little"],
            util_big=tables["util_big"],
            util_little=tables["util_little"],
            power=power_grid,
            perf_valid=perf_valid,
            valid=perf_valid & power_ok,
            big_freqs=np.asarray(spec.big.frequencies_mhz, dtype=np.int64),
            little_freqs=np.asarray(
                spec.little.frequencies_mhz, dtype=np.int64
            ),
        )


def _combine_power(ptables: dict, tables: dict) -> tuple:
    """Vectorized power plane from per-frequency linear coefficients.

    Reproduces ``LinearCoefficients.predict`` + ``PowerEstimator.estimate``
    cellwise in the same float association order:
    ``((α_B·C_B,U)·U_B + β_B) + ((α_L·C_L,U)·U_L + β_L)``.
    """
    alpha_big = ptables["alpha_big"][None, None, :, None]
    beta_big = ptables["beta_big"][None, None, :, None]
    ok_big = ptables["ok_big"][None, None, :, None]
    alpha_little = ptables["alpha_little"][None, None, None, :]
    beta_little = ptables["beta_little"][None, None, None, :]
    ok_little = ptables["ok_little"][None, None, None, :]
    util_big = tables["util_big"]
    util_little = tables["util_little"]
    p_big = (alpha_big * tables["used_big"]) * util_big + beta_big
    p_little = (alpha_little * tables["used_little"]) * util_little
    p_little = p_little + beta_little
    total = p_big + p_little
    # predict() raises outside [0, 1]; NaN utils compare False on both
    # sides, so perf-invalid cells drop out here as well.
    util_ok = (
        (util_big >= 0.0)
        & (util_big <= 1.0)
        & (util_little >= 0.0)
        & (util_little <= 1.0)
    )
    ok = tables["valid"] & ok_big & ok_little & util_ok & (total > 0.0)
    return np.where(ok, total, np.nan), ok


def _sweep_power(
    spec: PlatformSpec,
    n_threads: int,
    perf: Any,
    power: Any,
    perf_valid: np.ndarray,
) -> tuple:
    """Per-state fallback for power models without a ``tabulate``."""
    power_grid = np.full(perf_valid.shape, np.nan)
    ok = np.zeros(perf_valid.shape, dtype=bool)
    big_freqs = spec.big.frequencies_mhz
    little_freqs = spec.little.frequencies_mhz
    for cb in range(perf_valid.shape[0]):
        for cl in range(perf_valid.shape[1]):
            for ifb, fb in enumerate(big_freqs):
                for ifl, fl in enumerate(little_freqs):
                    if not perf_valid[cb, cl, ifb, ifl]:
                        continue
                    state = SystemState(cb, cl, fb, fl)
                    try:
                        estimate = perf.estimate(state, n_threads)
                        watts = power.estimate(state, estimate)
                    except EstimationError:
                        continue
                    if watts <= 0:
                        continue
                    power_grid[cb, cl, ifb, ifl] = watts
                    ok[cb, cl, ifb, ifl] = True
    return power_grid, ok


class CandidateBox:
    """One sweep box, flattened in the scalar loop's C order.

    Exposes the per-candidate coordinate arrays (``c_big``, ``c_little``,
    ``i_fb``, ``i_fl``, ``f_big_mhz``, ``f_little_mhz``), the tensor
    planes restricted to the box (``capacity``, ``power``, ``valid``)
    and the sweep's ``current`` state — everything a filter's
    ``box_mask`` needs.  Index ``i`` of every array is the ``i``-th
    candidate the scalar nested loops would visit.
    """

    __slots__ = (
        "spec",
        "current",
        "c_big",
        "c_little",
        "i_fb",
        "i_fl",
        "f_big_mhz",
        "f_little_mhz",
        "capacity",
        "power",
        "valid",
    )

    def __init__(
        self,
        spec: PlatformSpec,
        current: SystemState,
        tensor: StateSpaceTensor,
        cb_idx: np.ndarray,
        cl_idx: np.ndarray,
        fb_idx: np.ndarray,
        fl_idx: np.ndarray,
    ):
        self.spec = spec
        self.current = current
        grid = np.ix_(cb_idx, cl_idx, fb_idx, fl_idx)
        self.capacity = tensor.capacity[grid].ravel()
        self.power = tensor.power[grid].ravel()
        self.valid = tensor.valid[grid].ravel()
        cb, cl, ifb, ifl = np.meshgrid(
            cb_idx, cl_idx, fb_idx, fl_idx, indexing="ij"
        )
        self.c_big = cb.ravel()
        self.c_little = cl.ravel()
        self.i_fb = ifb.ravel()
        self.i_fl = ifl.ravel()
        self.f_big_mhz = tensor.big_freqs[self.i_fb]
        self.f_little_mhz = tensor.little_freqs[self.i_fl]

    def __len__(self) -> int:
        return int(self.c_big.size)

    def state_at(self, i: int) -> SystemState:
        """The ``i``-th candidate as a validated :class:`SystemState`."""
        return from_indices(
            self.spec,
            int(self.c_big[i]),
            int(self.c_little[i]),
            int(self.i_fb[i]),
            int(self.i_fl[i]),
        )


def batch_next_sys_state(
    spec: PlatformSpec,
    current: SystemState,
    observed_rate: float,
    n_threads: int,
    target: PerformanceTarget,
    space: "SearchSpace",
    estimation: "EstimationLayer",
    candidate_filter: Optional[Callable[[SystemState, SystemState], bool]] = None,
    guard_filter: Optional[Callable[[SystemState, SystemState], bool]] = None,
) -> SearchResult:
    """Algorithm 2 over the state-space tensor — the vector backend.

    Bit-identical to :func:`repro.core.search.get_next_sys_state` (see
    the module docstring for the parity argument), including the counter
    semantics: ``pruned`` counts distance-pruned box states outside the
    zero-core row, structural rejections are uncounted, guard vetoes are
    ``filtered`` only among structurally-admissible candidates, and an
    estimation failure is any admitted candidate whose own estimates —
    or the current state's capacity — are unavailable.
    """
    if observed_rate <= 0:
        raise EstimationError("search needs a positive observed rate")
    m, n, d = space.m, space.n, space.d
    if m < 0 or n < 0:
        raise ConfigurationError("m and n must be non-negative")
    if d <= 0:
        raise ConfigurationError("d must be positive")
    tensor = estimation.tensor(spec, n_threads)
    cb0, cl0, ifb0, ifl0 = current.indices(spec)
    cb_idx = np.asarray(_clamped_range(cb0, m, n, 0, spec.big.n_cores))
    cl_idx = np.asarray(_clamped_range(cl0, m, n, 0, spec.little.n_cores))
    fb_idx = np.asarray(
        _clamped_range(ifb0, m, n, 0, len(spec.big.frequencies_mhz) - 1)
    )
    fl_idx = np.asarray(
        _clamped_range(ifl0, m, n, 0, len(spec.little.frequencies_mhz) - 1)
    )
    box = CandidateBox(spec, current, tensor, cb_idx, cl_idx, fb_idx, fl_idx)

    dist = (
        np.abs(box.c_big - cb0)
        + np.abs(box.c_little - cl0)
        + np.abs(box.i_fb - ifb0)
        + np.abs(box.i_fl - ifl0)
    )
    # The scalar sweep skips the zero-core row before the distance
    # check, so those states are neither candidates nor "pruned".
    allocates = (box.c_big + box.c_little) > 0
    within = dist <= d
    pruned = int(np.count_nonzero(allocates & ~within))
    admitted = allocates & within

    if candidate_filter is not None:
        mask_fn = getattr(candidate_filter, "box_mask", None)
        if mask_fn is not None:
            admitted = admitted & np.asarray(mask_fn(box), dtype=bool)
        else:
            keep = admitted.copy()
            for i in np.flatnonzero(admitted):
                if not candidate_filter(box.state_at(int(i)), current):
                    keep[i] = False
            admitted = keep

    filtered = 0
    if guard_filter is not None:
        mask_fn = getattr(guard_filter, "box_mask", None)
        if mask_fn is not None:
            allowed = np.asarray(mask_fn(box), dtype=bool)
        else:
            allowed = np.ones(len(box), dtype=bool)
            for i in np.flatnonzero(admitted):
                if not guard_filter(box.state_at(int(i)), current):
                    allowed[i] = False
        filtered = int(np.count_nonzero(admitted & ~allowed))
        admitted = admitted & allowed

    # evaluate_state needs the current state's capacity for every
    # candidate's rate transfer: an invalid current fails them all.
    current_valid = bool(tensor.perf_valid[cb0, cl0, ifb0, ifl0])
    if current_valid:
        evaluable = admitted & box.valid
    else:
        evaluable = np.zeros(len(box), dtype=bool)
    explored = int(np.count_nonzero(evaluable))
    estimation_failures = int(np.count_nonzero(admitted)) - explored

    if explored == 0:
        # Forced hold, exactly like the scalar path: evaluated only to
        # fill in the result (and may itself raise EstimationError).
        best = evaluate_state(
            current,
            current,
            observed_rate,
            n_threads,
            target,
            estimation.perf,
            estimation.power,
        )
        return SearchResult(
            best=best,
            states_explored=0,
            forced_fallback=True,
            estimation_failures=estimation_failures,
            pruned=pruned,
            filtered=filtered,
        )

    idxs = np.flatnonzero(evaluable)
    cap_current = float(tensor.capacity[cb0, cl0, ifb0, ifl0])
    est_rate = (observed_rate * box.capacity[idxs]) / cap_current
    avg = target.avg_rate
    norm_perf = np.minimum(avg, est_rate) / avg
    ppw = norm_perf / box.power[idxs]
    feasible = est_rate >= target.min_rate
    if feasible.any():
        winner = int(idxs[int(np.argmax(np.where(feasible, ppw, -np.inf)))])
    else:
        winner = int(idxs[_banded_argbest(est_rate, ppw)])
    best = evaluate_state(
        box.state_at(winner),
        current,
        observed_rate,
        n_threads,
        target,
        estimation.perf,
        estimation.power,
    )
    return SearchResult(
        best=best,
        states_explored=explored,
        estimation_failures=estimation_failures,
        pruned=pruned,
        filtered=filtered,
    )


def _banded_argbest(est_rate: np.ndarray, ppw: np.ndarray) -> int:
    """Replay the all-infeasible ``_better`` fold exactly.

    Shortlists candidates within ``(N+4)·1e-9`` (relative) of the prefix
    running maximum — a superset of every state the scalar incumbent
    chain can visit (module docstring, property 3) — then runs the
    literal scalar comparisons over the shortlist in sweep order.
    """
    prefix_max = np.maximum.accumulate(est_rate)
    slack = (est_rate.size + 4) * _BAND
    shortlist = np.flatnonzero(est_rate >= prefix_max * (1.0 - slack))
    best = int(shortlist[0])  # index 0 always holds its own prefix max
    for j in shortlist[1:]:
        j = int(j)
        rate_c = float(est_rate[j])
        rate_i = float(est_rate[best])
        if rate_c > rate_i * (1.0 + _BAND):
            best = j
        elif rate_c < rate_i * (1.0 - _BAND):
            continue
        elif float(ppw[j]) > float(ppw[best]):
            best = j
    return best


@dataclass
class PlanRequest:
    """One application's (or MP-HARS partition's) planning inputs."""

    spec: PlatformSpec
    current: SystemState
    observed_rate: float
    n_threads: int
    target: PerformanceTarget
    space: "SearchSpace"
    estimation: "EstimationLayer"
    candidate_filter: Optional[Callable[[SystemState, SystemState], bool]] = None
    guard_filter: Optional[Callable[[SystemState, SystemState], bool]] = None


@dataclass
class PlanService:
    """The engine's batch-plan hook (``Simulation.plan_service``).

    Managers route vector-backend plans through the service so batch
    sizes are metered for telemetry (``planner_batch_apps``);
    :meth:`plan_many` plans a whole roster of apps/partitions in one
    call against their shared tensors.  Requests are processed in
    submission order: each plan's result is independent of the others
    (planning never mutates shared state — actuation does, between
    cycles), so the batch is bit-identical to sequential calls.
    """

    plans: int = 0
    batch_sizes: List[int] = field(default_factory=list)

    def plan(self, **kwargs: Any) -> SearchResult:
        """Plan a single app (a batch of one)."""
        self.plans += 1
        self.batch_sizes.append(1)
        return batch_next_sys_state(**kwargs)

    def plan_many(self, requests: Sequence[PlanRequest]) -> List[SearchResult]:
        """Plan every request against the shared tensor store."""
        if not requests:
            return []
        self.plans += len(requests)
        self.batch_sizes.append(len(requests))
        return [
            batch_next_sys_state(
                spec=request.spec,
                current=request.current,
                observed_rate=request.observed_rate,
                n_threads=request.n_threads,
                target=request.target,
                space=request.space,
                estimation=request.estimation,
                candidate_filter=request.candidate_filter,
                guard_filter=request.guard_filter,
            )
            for request in requests
        ]
