"""Actuation façade.

Execute stages act on the platform only through this object — cluster
DVFS, per-app cpusets, and thread placement.  Besides giving every
manager one narrow write-path (instead of reaching into ``sim.dvfs``
and ``apply_assignment`` directly), the façade is where applied states
are announced on the kernel bus as
:class:`~repro.kernel.bus.StateApplied`, which is what feeds the trace
recorder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Optional, Sequence

from repro.kernel.bus import StateApplied

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.assignment import ThreadAssignment
    from repro.core.state import SystemState
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp


class Actuator:
    """The kernel's write-path to DVFS and thread placement."""

    def __init__(self, sim: "Simulation"):
        self._sim = sim

    # -- DVFS ----------------------------------------------------------------

    def set_frequency(self, cluster_name: str, freq_mhz: int) -> None:
        """Set one cluster's frequency (must be an operating point)."""
        self._sim.dvfs.set_frequency(cluster_name, freq_mhz)

    def set_max_frequencies(self) -> None:
        """Pin both clusters to their maximum operating point."""
        self._sim.dvfs.set_max()

    def set_min_frequencies(self) -> None:
        """Pin both clusters to their minimum operating point."""
        self._sim.dvfs.set_min()

    # -- thread placement ----------------------------------------------------

    def set_cpuset(
        self, app: "SimApp", cpuset: Optional[FrozenSet[int]]
    ) -> None:
        """Restrict an app to a core set (``None`` = all cores)."""
        app.set_cpuset(cpuset)

    def clear_affinities(self, app: "SimApp") -> None:
        """Unpin all of an app's threads (back to pure GTS)."""
        app.clear_affinities()

    def place(
        self,
        app: "SimApp",
        assignment: "ThreadAssignment",
        big_core_ids: Sequence[int],
        little_core_ids: Sequence[int],
        policy: str,
    ) -> None:
        """Pin an app's threads per a Table 3.1 assignment."""
        # Imported here: the kernel sits below repro.core in the layer
        # stack, and a module-level import would be circular.
        from repro.core.schedulers import apply_assignment

        apply_assignment(app, assignment, big_core_ids, little_core_ids, policy)

    def place_stage_aware(
        self,
        app: "SimApp",
        assignment: "ThreadAssignment",
        big_core_ids: Sequence[int],
        little_core_ids: Sequence[int],
    ) -> None:
        """Pin an app's threads splitting each pipeline stage T_B:T_L."""
        from repro.extensions.stage_aware import apply_stage_aware_assignment

        apply_stage_aware_assignment(
            app, app.model, assignment, big_core_ids, little_core_ids
        )

    # -- announcements -------------------------------------------------------

    def announce(
        self,
        app_name: str,
        state: SystemState,
        big_cores: int,
        little_cores: int,
    ) -> None:
        """Publish ``StateApplied`` for an allocation just applied."""
        self._sim.bus.publish(
            StateApplied(
                app_name=app_name,
                state=state,
                big_cores=big_cores,
                little_cores=little_cores,
            )
        )
