"""Actuation façade.

Execute stages act on the platform only through this object — cluster
DVFS, per-app cpusets, and thread placement.  Besides giving every
manager one narrow write-path (instead of reaching into ``sim.dvfs``
and ``apply_assignment`` directly), the façade is where applied states
are announced on the kernel bus as
:class:`~repro.kernel.bus.StateApplied`, which is what feeds the trace
recorder.

It is also where actuation faults are *handled*: when a fault injector
is attached, every DVFS write and affinity call runs under a
retry-with-backoff policy.  A write that keeps failing is abandoned for
an exponentially-growing backoff window instead of raised — the
managers keep running with the platform in its last good state, and the
injector announces every failure/recovery on the bus.  Without an
injector the façade is a zero-overhead pass-through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from repro.kernel.bus import StateApplied

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.assignment import ThreadAssignment
    from repro.core.state import SystemState
    from repro.faults.injector import FaultInjector
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp

#: Immediate retries after a failed platform write.
DEFAULT_MAX_RETRIES = 3

#: Base backoff window (simulated seconds) after retries are exhausted;
#: doubles per consecutive exhausted episode on the same target.
DEFAULT_BACKOFF_S = 0.5

#: Cap on the backoff doubling exponent.
_MAX_BACKOFF_LEVEL = 8


class Actuator:
    """The kernel's write-path to DVFS and thread placement."""

    def __init__(
        self,
        sim: "Simulation",
        faults: Optional["FaultInjector"] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
    ):
        self._sim = sim
        self._faults = faults
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        #: Actuations that exhausted their retries (state held instead).
        self.failed_actuations = 0
        #: Actuations that succeeded only after at least one retry.
        self.retried_actuations = 0
        #: Actuations skipped because the target was in backoff.
        self.skipped_actuations = 0
        self._backoff_until: Dict[Tuple[str, str], float] = {}
        self._backoff_level: Dict[Tuple[str, str], int] = {}

    # -- fault-tolerant write path -------------------------------------------

    def _with_retries(
        self, kind: str, target: str, op: Callable[[], bool]
    ) -> bool:
        """Run ``op`` (returns success) under retry-with-backoff.

        Without an injector (or with the channel's rate at zero) this is
        a single straight call.
        """
        injector = self._faults
        if injector is None or not injector.actuation_enabled(kind):
            return bool(op())
        now = self._sim.clock.now_s
        key = (kind, target)
        if now + 1e-12 < self._backoff_until.get(key, 0.0):
            self.skipped_actuations += 1
            return False
        for attempt in range(1 + self.max_retries):
            if op():
                if attempt:
                    self.retried_actuations += 1
                    injector.note_recovered(
                        kind, target, now, f"succeeded after {attempt} retries"
                    )
                elif key in self._backoff_level:
                    injector.note_recovered(
                        kind, target, now, "recovered after backoff"
                    )
                self._backoff_level.pop(key, None)
                self._backoff_until.pop(key, None)
                return True
            injector.note_injected(
                kind, target, now, f"attempt {attempt + 1} failed"
            )
        level = self._backoff_level.get(key, 0)
        self._backoff_until[key] = now + self.backoff_s * (2.0 ** level)
        self._backoff_level[key] = min(level + 1, _MAX_BACKOFF_LEVEL)
        self.failed_actuations += 1
        return False

    def _affinity_ok(self, app_name: str) -> bool:
        return self._faults is None or self._faults.affinity_write_ok(app_name)

    # -- DVFS ----------------------------------------------------------------

    def set_frequency(self, cluster_name: str, freq_mhz: int) -> bool:
        """Set one cluster's frequency (must be an operating point).

        Returns whether the write took effect; under injected DVFS
        faults a failed write leaves the cluster at its previous
        frequency.
        """
        return self._with_retries(
            "dvfs",
            cluster_name,
            lambda: self._sim.dvfs.try_set_frequency(cluster_name, freq_mhz),
        )

    def set_max_frequencies(self) -> None:
        """Pin both clusters to their maximum operating point."""
        self._sim.dvfs.set_max()

    def set_min_frequencies(self) -> None:
        """Pin both clusters to their minimum operating point."""
        self._sim.dvfs.set_min()

    # -- thread placement ----------------------------------------------------

    def set_cpuset(
        self, app: "SimApp", cpuset: Optional[FrozenSet[int]]
    ) -> bool:
        """Restrict an app to a core set (``None`` = all cores)."""

        def op() -> bool:
            if not self._affinity_ok(app.name):
                return False
            app.set_cpuset(cpuset)
            return True

        return self._with_retries("affinity", app.name, op)

    def clear_affinities(self, app: "SimApp") -> bool:
        """Unpin all of an app's threads (back to pure GTS)."""

        def op() -> bool:
            if not self._affinity_ok(app.name):
                return False
            app.clear_affinities()
            return True

        return self._with_retries("affinity", app.name, op)

    def place(
        self,
        app: "SimApp",
        assignment: "ThreadAssignment",
        big_core_ids: Sequence[int],
        little_core_ids: Sequence[int],
        policy: str,
    ) -> bool:
        """Pin an app's threads per a Table 3.1 assignment."""
        # Imported here: the kernel sits below repro.core in the layer
        # stack, and a module-level import would be circular.
        from repro.core.schedulers import apply_assignment

        def op() -> bool:
            if not self._affinity_ok(app.name):
                return False
            apply_assignment(
                app, assignment, big_core_ids, little_core_ids, policy
            )
            return True

        return self._with_retries("affinity", app.name, op)

    def place_stage_aware(
        self,
        app: "SimApp",
        assignment: "ThreadAssignment",
        big_core_ids: Sequence[int],
        little_core_ids: Sequence[int],
    ) -> bool:
        """Pin an app's threads splitting each pipeline stage T_B:T_L."""
        from repro.extensions.stage_aware import apply_stage_aware_assignment

        def op() -> bool:
            if not self._affinity_ok(app.name):
                return False
            apply_stage_aware_assignment(
                app, app.model, assignment, big_core_ids, little_core_ids
            )
            return True

        return self._with_retries("affinity", app.name, op)

    # -- announcements -------------------------------------------------------

    def announce(
        self,
        app_name: str,
        state: SystemState,
        big_cores: int,
        little_cores: int,
    ) -> None:
        """Publish ``StateApplied`` for an allocation just applied."""
        self._sim.bus.publish(
            StateApplied(
                app_name=app_name,
                state=state,
                big_cores=big_cores,
                little_cores=little_cores,
            )
        )
