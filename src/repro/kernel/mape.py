"""MAPE-K control plane.

One adaptation cycle of every HARS-family manager decomposes into the
classic Monitor → Analyze → Plan → Execute stages over a shared
:class:`Knowledge` store:

* **Monitor** — polls the heartbeat stream, samples the windowed rate
  at adaptation-period boundaries, and optionally filters it (the
  Kalman :class:`~repro.extensions.kalman.RatePredictor` plugs in
  here).
* **Analyze** — classifies the rate against the app's target window.
* **Plan** — Algorithm 2 neighbourhood search over the cached
  estimation layer.  Policies (HARS-I/E/EI search spaces), the
  local-optimum escape detector, and MP-HARS's partition/freeze
  candidate filter are all Plan-stage plugins.
* **Execute** — applies the planned state through the actuation
  façade; the concrete apply function is supplied by the manager
  (chunk/interleaved placement, stage-aware placement, or MP-HARS's
  partitioned placement).

The **K** — :class:`Knowledge` — holds what stages share: the platform
spec, the estimation layer, per-app applied states/assignments, and the
exploration/adaptation counters.  Managers remain thin façades that
keep their public constructors and attributes, delegating the loop to
:class:`MapeLoop`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.search import get_next_sys_state
from repro.core.state import SystemState
from repro.heartbeats.record import Heartbeat
from repro.heartbeats.targets import Satisfaction
from repro.kernel.estimation import EstimationLayer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.assignment import ThreadAssignment
    from repro.core.policy import HarsPolicy, SearchSpace
    from repro.platform.spec import PlatformSpec
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp


class Knowledge:
    """The K of MAPE-K: state the four stages share."""

    def __init__(self, estimation: EstimationLayer):
        self.spec: Optional["PlatformSpec"] = None
        self.estimation = estimation
        self.states_explored = 0
        self.adaptations = 0
        #: Candidates skipped on estimation errors across all cycles.
        self.estimation_failures = 0
        #: Box candidates rejected by the Manhattan-distance prune
        #: across all cycles (telemetry's ``search_pruned_total``).
        self.states_pruned = 0
        #: Candidates vetoed by a guardrail filter across all cycles
        #: (telemetry's ``search_filtered_total``).
        self.states_filtered = 0
        #: Manager-specific knowledge (MP-HARS keeps its per-app
        #: partition data and per-cluster bookkeeping here).
        self.domain: Dict[str, Any] = {}
        self._states: Dict[str, SystemState] = {}
        self._assignments: Dict[str, "ThreadAssignment"] = {}

    def bind(self, spec: "PlatformSpec") -> None:
        """Attach the platform spec (known once the sim starts)."""
        self.spec = spec

    def state_of(self, app_name: str) -> Optional[SystemState]:
        return self._states.get(app_name)

    def set_state(self, app_name: str, state: Optional[SystemState]) -> None:
        if state is None:
            self._states.pop(app_name, None)
        else:
            self._states[app_name] = state

    def assignment_of(self, app_name: str) -> Optional["ThreadAssignment"]:
        return self._assignments.get(app_name)

    def set_assignment(
        self, app_name: str, assignment: Optional["ThreadAssignment"]
    ) -> None:
        if assignment is None:
            self._assignments.pop(app_name, None)
        else:
            self._assignments[app_name] = assignment


@dataclass(frozen=True)
class Observation:
    """Monitor output: one adaptation-boundary rate sample."""

    app_name: str
    heartbeat_index: int
    raw_rate: float
    rate: float  # filtered (== raw_rate without a rate filter)


@dataclass(frozen=True)
class Analysis:
    """Analyzer output: the rate classified against the target."""

    satisfaction: Satisfaction
    out_of_window: bool


@dataclass(frozen=True)
class PlanResult:
    """Planner output: the chosen state plus search accounting."""

    state: SystemState
    states_explored: int
    escaped: bool = False
    #: Candidates the Algorithm 2 sweep skipped on estimation errors.
    estimation_failures: int = 0
    #: Box candidates the Manhattan-distance prune rejected.
    pruned: int = 0
    #: Candidates a guardrail filter vetoed (budget caps).
    filtered: int = 0
    #: The winning candidate with its estimates
    #: (:class:`~repro.core.search.EvaluatedState`) — what the
    #: misprediction watchdog compares the next observation against.
    evaluated: Optional[Any] = None


@dataclass
class CycleContext:
    """Everything one MAPE cycle accumulates; handed to Execute."""

    app: "SimApp"
    current: SystemState
    observation: Observation
    analysis: Analysis
    plan: Optional[PlanResult] = None
    adapted: bool = False
    #: Scratch space plan-stage plugins use to pass data to Execute
    #: (e.g. MP-HARS's per-cluster frequency decisions).
    notes: Dict[str, Any] = field(default_factory=dict)


class Monitor:
    """M: heartbeat polling and boundary-rate sampling.

    ``sensors`` run on *every* heartbeat (MP-HARS drains freeze counts
    and records last-seen rates here); ``rate_filter`` smooths the
    boundary sample (the Kalman predictor).
    """

    def __init__(
        self,
        adapt_every: int,
        rate_filter: Optional[Any] = None,
        sensors: Sequence[Callable[["SimApp", Heartbeat], None]] = (),
    ):
        self.adapt_every = adapt_every
        self.rate_filter = rate_filter
        self.sensors = list(sensors)
        self.polled = 0

    def observe(
        self, app: "SimApp", heartbeat: Heartbeat, force: bool = False
    ) -> Optional[Observation]:
        """Sample the boundary rate (every heartbeat with ``force``).

        ``force`` skips the adaptation-period boundary check — the
        supervisor uses it to trigger an immediate repartition after an
        eviction instead of waiting for the next boundary.
        """
        for sensor in self.sensors:
            sensor(app, heartbeat)
        self.polled += 1
        if not force and (
            heartbeat.index == 0 or heartbeat.index % self.adapt_every != 0
        ):
            return None
        raw = app.monitor.current_rate()
        if raw is None:
            return None
        rate = self.rate_filter.observe(raw) if self.rate_filter else raw
        return Observation(
            app_name=app.name,
            heartbeat_index=heartbeat.index,
            raw_rate=raw,
            rate=rate,
        )


class Analyzer:
    """A: classify an observed rate against the performance target."""

    def analyze(self, rate: float, target: Any) -> Analysis:
        return Analysis(
            satisfaction=target.classify(rate),
            out_of_window=target.out_of_window(rate),
        )


class SearchPlanner:
    """P: Algorithm 2 over the cached estimation layer.

    Plugins:

    * ``policy`` — supplies the over/underperformance search spaces
      (HARS-I/E/EI are just different policies).
    * ``escape`` — an object with ``note_in_window(state)`` /
      ``note_out_of_window(state) -> bool``; when the latter trips,
      the search widens to ``escape_space(spec)``.
    * ``constraint`` — called with the cycle context, returns a
      candidate filter (MP-HARS's partition/freeze gating).
    * ``guard`` — an optional guardrail hook
      (:class:`~repro.guardrails.layer.GuardrailLayer`) installed after
      construction, exactly like the loop's ``telemetry`` observer.  It
      may narrow the search space (``adjust_space`` — the watchdog's
      incremental safe mode) and veto candidates (``candidate_veto`` —
      the budget cap); ``None`` (the default) costs nothing and the
      plan is identical to an unguarded one.
    """

    def __init__(
        self,
        policy: "HarsPolicy",
        escape: Optional[Any] = None,
        escape_space: Optional[Callable[["PlatformSpec"], "SearchSpace"]] = None,
        constraint: Optional[
            Callable[[CycleContext], Callable[[SystemState, SystemState], bool]]
        ] = None,
    ):
        self.policy = policy
        self.escape = escape
        self.escape_space = escape_space
        self.constraint = constraint
        self.escapes = 0
        #: Optional guardrail hook; installed by the guardrail layer,
        #: never by the planner itself.
        self.guard: Optional[Any] = None
        #: Planner backend: ``"scalar"`` (the Algorithm 2 oracle loop)
        #: or ``"vector"`` (:mod:`repro.kernel.batchplan`, bit-identical
        #: results).  Managers set it at ``on_start`` from the engine's
        #: ``RunConfig.profile``, so it is an attribute rather than a
        #: constructor parameter (subclasses override ``_build_planner``
        #: with their own signatures).
        self.backend: str = "scalar"
        #: The engine's batch-plan hook (``Simulation.plan_service``),
        #: installed alongside ``backend`` — meters batch sizes and
        #: serves multi-app ``plan_many`` batches.
        self.plan_service: Optional[Any] = None

    def notify_in_window(self, current: SystemState) -> None:
        if self.escape is not None:
            self.escape.note_in_window(current)

    def plan(self, knowledge: Knowledge, ctx: CycleContext) -> PlanResult:
        space = self.policy.space_for(ctx.analysis.satisfaction)
        escaped = False
        if (
            self.escape is not None
            and self.escape.note_out_of_window(ctx.current)
            and self.escape_space is not None
        ):
            space = self.escape_space(knowledge.spec)
            escaped = True
            self.escapes += 1
        candidate_filter = (
            self.constraint(ctx) if self.constraint is not None else None
        )
        guard = self.guard
        guard_filter = None
        if guard is not None:
            space = guard.adjust_space(ctx, space)
            guard_filter = guard.candidate_veto(knowledge, ctx)
        if self.backend == "vector":
            # Imported lazily: the scalar path must not depend on numpy.
            from repro.kernel.batchplan import batch_next_sys_state

            plan_kwargs = dict(
                spec=knowledge.spec,
                current=ctx.current,
                observed_rate=ctx.observation.rate,
                n_threads=ctx.app.n_threads,
                target=ctx.app.target,
                space=space,
                estimation=knowledge.estimation,
                candidate_filter=candidate_filter,
                guard_filter=guard_filter,
            )
            service = self.plan_service
            result = (
                service.plan(**plan_kwargs)
                if service is not None
                else batch_next_sys_state(**plan_kwargs)
            )
        else:
            result = get_next_sys_state(
                spec=knowledge.spec,
                current=ctx.current,
                observed_rate=ctx.observation.rate,
                n_threads=ctx.app.n_threads,
                target=ctx.app.target,
                space=space,
                perf_estimator=knowledge.estimation.perf,
                power_estimator=knowledge.estimation.power,
                candidate_filter=candidate_filter,
                guard_filter=guard_filter,
            )
        return PlanResult(
            state=result.state,
            states_explored=result.states_explored,
            escaped=escaped,
            estimation_failures=result.estimation_failures,
            pruned=result.pruned,
            filtered=result.filtered,
            evaluated=result.best,
        )


class Executor:
    """E: hand the planned state to the manager's apply function.

    The apply function receives ``(sim, ctx, state)`` and is expected
    to act only through ``sim.actuator``.
    """

    def __init__(
        self,
        apply_fn: Callable[["Simulation", CycleContext, SystemState], None],
    ):
        self.apply_fn = apply_fn

    def execute(
        self, sim: "Simulation", ctx: CycleContext, state: SystemState
    ) -> None:
        self.apply_fn(sim, ctx, state)


class MapeLoop:
    """Orchestrates one Monitor → Analyze → Plan → Execute cycle.

    ``updaters`` run between Monitor and Analyze on every boundary
    observation and may rewrite Knowledge (online ratio learning swaps
    the performance estimator here).  ``current_state_fn`` overrides
    where the cycle's notion of "current state" comes from (MP-HARS
    derives it from partition ownership); the default reads the
    Knowledge store.  With ``always_execute`` the Execute stage runs
    even when the plan equals the current state (MP-HARS re-applies to
    refresh partitions); ``count_adaptations`` controls whether the
    loop increments ``knowledge.adaptations`` on a state change
    (managers that meter adaptation themselves switch it off).

    ``telemetry`` is an optional per-phase observer (the telemetry
    hub's :class:`~repro.telemetry.hub.MapeTelemetry`) installed after
    construction; it is read-only — with or without one the cycle's
    decisions are identical — and ``None`` (the default) costs nothing.

    ``guard`` is the same pattern for the guardrail layer, but it is
    *not* read-only: ``on_observation`` feeds the misprediction
    watchdog, ``adjust_plan`` lets the oscillation damper override the
    planned state (hysteresis holds), and ``note_cycle`` records the
    decision for the sliding thrash window.  ``None`` (the default)
    costs nothing and the loop behaves exactly as before the layer
    existed.
    """

    def __init__(
        self,
        knowledge: Knowledge,
        monitor: Monitor,
        analyzer: Analyzer,
        planner: SearchPlanner,
        executor: Executor,
        updaters: Iterable[Any] = (),
        current_state_fn: Optional[
            Callable[["Simulation", "SimApp"], Optional[SystemState]]
        ] = None,
        always_execute: bool = False,
        count_adaptations: bool = True,
        stale_after_s: Optional[float] = None,
    ):
        self.knowledge = knowledge
        self.monitor = monitor
        self.analyzer = analyzer
        self.planner = planner
        self.executor = executor
        self.updaters = list(updaters)
        self.current_state_fn = current_state_fn
        self.always_execute = always_execute
        self.count_adaptations = count_adaptations
        #: Observations older than this (delivery stalled) are not acted
        #: on; ``None`` disables the staleness guard.
        self.stale_after_s = stale_after_s
        #: Cycles where the loop held the last good state because the
        #: observation channel was degraded (non-positive, non-finite,
        #: or stale rate) — the graceful-degradation counter.
        self.held_cycles = 0
        #: Optional MAPE-phase observer (``MapeTelemetry``); installed
        #: by the telemetry hub, never by the loop itself.
        self.telemetry: Optional[Any] = None
        #: Optional guardrail hook (``GuardrailLayer``); installed by
        #: the guardrail layer, never by the loop itself.
        self.guard: Optional[Any] = None

    def on_heartbeat(
        self,
        sim: "Simulation",
        app: "SimApp",
        heartbeat: Heartbeat,
        force: bool = False,
    ) -> Optional[CycleContext]:
        """Run one cycle; returns the context if Plan ran, else None.

        ``force`` runs a full cycle off-boundary and even when the rate
        is inside the target window — used for the immediate
        repartition after a supervisor eviction frees cores.  The
        degraded-observation guards (non-positive, non-finite, stale
        rates) still hold the last good state.
        """
        telemetry = self.telemetry
        observation = self.monitor.observe(app, heartbeat, force=force)
        if telemetry is not None:
            telemetry.on_monitor(observation)
        if observation is None:
            return None
        if observation.rate <= 0 or not math.isfinite(observation.rate):
            # The observation channel is lying (sensor fault, degenerate
            # rate filter): planning on it would crash the search or
            # thrash the platform.  Hold the last good state instead.
            self.held_cycles += 1
            if telemetry is not None:
                telemetry.on_held()
            return None
        if (
            self.stale_after_s is not None
            and sim.clock.now_s - heartbeat.time_s > self.stale_after_s
        ):
            # The heartbeat's delivery stalled long enough that the rate
            # no longer describes the present: hold the last good state.
            self.held_cycles += 1
            if telemetry is not None:
                telemetry.on_held()
            return None
        if self.current_state_fn is not None:
            current = self.current_state_fn(sim, app)
        else:
            current = self.knowledge.state_of(app.name)
        if current is None:
            return None
        guard = self.guard
        if guard is not None:
            guard.on_observation(sim, app, current, observation)
        for updater in self.updaters:
            updater.update(self.knowledge, app, current, observation)
        analysis = self.analyzer.analyze(observation.rate, app.target)
        if telemetry is not None:
            telemetry.on_analysis(analysis)
        if not analysis.out_of_window and not force:
            self.planner.notify_in_window(current)
            # The guard can demand a cycle even inside the target window:
            # a rate that satisfies the application tells nothing about a
            # violated power budget, and only a planned (vetoed) search
            # can shrink the allocation back under the cap.
            if guard is None or not guard.wants_cycle(sim, app):
                return None
        ctx = CycleContext(
            app=app,
            current=current,
            observation=observation,
            analysis=analysis,
        )
        plan = self.planner.plan(self.knowledge, ctx)
        if guard is not None:
            plan = guard.adjust_plan(sim, self.knowledge, ctx, plan)
        ctx.plan = plan
        if telemetry is not None:
            telemetry.on_plan(plan)
        self.knowledge.states_explored += plan.states_explored
        self.knowledge.estimation_failures += plan.estimation_failures
        self.knowledge.states_pruned += plan.pruned
        self.knowledge.states_filtered += plan.filtered
        ctx.adapted = plan.state != current
        if ctx.adapted and self.count_adaptations:
            self.knowledge.adaptations += 1
        if ctx.adapted or self.always_execute:
            self.executor.execute(sim, ctx, plan.state)
            if telemetry is not None:
                telemetry.on_execute(ctx.adapted)
            if guard is not None:
                guard.note_cycle(sim, ctx, executed=True)
        elif guard is not None:
            guard.note_cycle(sim, ctx, executed=False)
        return ctx
