"""Typed kernel event bus.

The engine publishes a small set of typed events; everything else —
runtime managers, governors, the trace recorder, benchmarks — attaches
through subscriptions.  This replaces the hand-rolled
``Controller.on_tick``/``on_heartbeat`` fan-out loops the engine used to
run itself.

Dispatch is deterministic: handlers for an event type run in ascending
``(priority, subscription order)``.  The default priority is 0;
subscribers that must observe the effects of every other handler (the
trace recorder) use a larger priority.  Publishing is reentrant — a
handler may publish further events (a manager applying a state mid
heartbeat publishes ``StateApplied``) — but subscribing while a
dispatch is in flight only takes effect for subsequent events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.state import SystemState
    from repro.heartbeats.record import Heartbeat
    from repro.sim.process import SimApp


@dataclass(frozen=True)
class Event:
    """Base class of every bus event."""


@dataclass(frozen=True)
class TickStart(Event):
    """A simulation tick is about to execute (controllers adapt here)."""

    time_s: float


@dataclass(frozen=True)
class HeartbeatEmitted(Event):
    """An application emitted a heartbeat during the current tick."""

    app: "SimApp"
    heartbeat: "Heartbeat"


@dataclass(frozen=True)
class StateApplied(Event):
    """An Execute stage applied a system state to an application.

    ``big_cores``/``little_cores`` are the allocation the applying
    manager reports for the app — used cores for single-app HARS,
    owned partition slots for MP-HARS — i.e. exactly what its
    ``current_allocation`` would answer.
    """

    app_name: str
    state: "SystemState"
    big_cores: int
    little_cores: int


@dataclass(frozen=True)
class PowerSample(Event):
    """The ground-truth power model was integrated over one tick."""

    time_s: float
    watts: Mapping[str, float]


@dataclass(frozen=True)
class AppFinished(Event):
    """An application consumed its last work unit this tick."""

    app_name: str
    time_s: float


@dataclass(frozen=True)
class FaultInjected(Event):
    """The fault-injection layer degraded an observation or actuation.

    ``kind`` names the fault channel (``sensor-dropout``,
    ``sensor-noise``, ``sensor-stuck``, ``heartbeat-stall``,
    ``heartbeat-jitter``, ``dvfs``, ``affinity``); ``target`` names what
    was hit (a power rail, an app, a cluster).
    """

    kind: str
    target: str
    time_s: float
    detail: str = ""


@dataclass(frozen=True)
class AppSuspected(Event):
    """The supervisor marked an app suspect (first deadline trip).

    ``kind`` is the suspected failure class (``crashed``, ``hung``,
    ``runaway``); the app keeps its resources while suspect and returns
    to healthy if evidence clears (a heartbeat arrives, the rate drops
    back below the runaway threshold).
    """

    app_name: str
    kind: str
    time_s: float
    detail: str = ""


@dataclass(frozen=True)
class AppQuarantined(Event):
    """The supervisor quarantined an app (evidence persisted).

    Quarantine is still reversible — a recovered app (late heartbeat,
    rate back in range) transitions back to healthy; otherwise the next
    deadline evicts it.
    """

    app_name: str
    kind: str
    time_s: float
    detail: str = ""


@dataclass(frozen=True)
class AppEvicted(Event):
    """The supervisor evicted an app: its resources were reclaimed.

    The app is unregistered from the heartbeat registry, its
    affinity/cpuset is cleared through the actuation façade, and the
    managers repartition so survivors absorb the freed cores.
    """

    app_name: str
    kind: str
    time_s: float
    detail: str = ""


@dataclass(frozen=True)
class ControllerRestored(Event):
    """A controller came back from a simulated crash+restart.

    ``warm`` tells whether knowledge was restored from a checkpoint
    (``checkpoint_time_s`` is the snapshot's timestamp) or the
    controller had to re-converge from its cold initial state.
    """

    controller: str
    time_s: float
    warm: bool
    checkpoint_time_s: Optional[float] = None


@dataclass(frozen=True)
class GuardrailTripped(Event):
    """A runtime guardrail engaged a protective action.

    ``guard`` names the tripping guardrail (``budget`` — the power cap
    was exceeded at the sensor and an emergency down-throttle fired;
    ``thermal`` — the modelled thermal state crossed its threshold and
    the effective cap tightened; ``damper`` — A↔B state thrashing was
    detected and the cheaper state is being held; ``watchdog`` — the
    estimator residuals crossed the misprediction threshold and the
    manager degraded to incremental safe mode).  ``app_name`` is ``"*"``
    for run-wide guards (the budget/thermal pair watch the board rail,
    not one app).
    """

    guard: str
    app_name: str
    time_s: float
    detail: str = ""


@dataclass(frozen=True)
class GuardrailReleased(Event):
    """A previously-tripped guardrail disengaged.

    Paired with :class:`GuardrailTripped` by ``guard``/``app_name``:
    power back under the cap, thermal state cooled below threshold, a
    damper hold expired, watchdog residuals recovered.
    """

    guard: str
    app_name: str
    time_s: float
    detail: str = ""


@dataclass(frozen=True)
class PolicySwapped(Event):
    """A controller's search policy was hot-swapped on a live session.

    Published by the adaptation control plane (:mod:`repro.acp`) when a
    ``swap`` request retargets a running manager — the next MAPE cycle
    plans under ``new_policy``, so the swap takes effect within one
    adaptation period.  ``controller`` is the manager's checkpoint id.
    """

    controller: str
    time_s: float
    old_policy: str
    new_policy: str
    detail: str = ""


@dataclass(frozen=True)
class FaultRecovered(Event):
    """A previously-degraded channel produced a good result again.

    Paired with :class:`FaultInjected` by ``kind``/``target``: a retry
    that succeeded, a stalled heartbeat finally delivered, a sensor
    reading clean again after a dropout or stuck episode.
    """

    kind: str
    target: str
    time_s: float
    detail: str = ""


Handler = Callable[[Event], None]

#: Priority for subscribers that must run after every default-priority
#: handler of the same event (e.g. the trace recorder, which needs the
#: allocations managers applied *during* the heartbeat).
LATE = 100


class EventBus:
    """Deterministic publish/subscribe hub for kernel events."""

    def __init__(self) -> None:
        self._handlers: Dict[Type[Event], List[Tuple[int, int, Handler]]] = {}
        self._seq = 0

    def subscribe(
        self,
        event_type: Type[Event],
        handler: Handler,
        priority: int = 0,
    ) -> Handler:
        """Register ``handler`` for events of exactly ``event_type``.

        Returns the handler so callers can keep it for
        :meth:`unsubscribe`.
        """
        entries = self._handlers.setdefault(event_type, [])
        entries.append((priority, self._seq, handler))
        self._seq += 1
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return handler

    def unsubscribe(self, event_type: Type[Event], handler: Handler) -> None:
        """Remove a previously-registered handler (no-op if absent)."""
        entries = self._handlers.get(event_type, [])
        self._handlers[event_type] = [
            entry for entry in entries if entry[2] is not handler
        ]

    def publish(self, event: Event) -> None:
        """Dispatch ``event`` to its subscribers in priority order."""
        entries = self._handlers.get(type(event))
        if not entries:
            return
        for _, _, handler in tuple(entries):
            handler(event)

    def subscriber_count(self, event_type: Type[Event]) -> int:
        """How many handlers are registered for an event type."""
        return len(self._handlers.get(event_type, ()))
