"""Cached estimation layer.

Algorithm 2 sweeps a neighbourhood of candidate states every adaptation
period, and consecutive periods sweep heavily-overlapping
neighbourhoods, so the same ``(state, n_threads)`` estimates are
recomputed over and over.  This layer memoizes them.

Caching is *exact*: the wrappers store the object the inner estimator
returned, so a cached lookup yields bit-identical floats to an uncached
call — determinism of every experiment metric is preserved.  The one
reformulation is ``estimate_rate``, which is recomputed from the two
cached capacities with the same expression the inner estimator uses
(``observed · cap_candidate / cap_current``), again bit-identical.

Swapping an estimator (online ratio learning refits r0; a recalibration
refits the power coefficients) invalidates the corresponding cache.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.perf_estimator import PerformanceEstimate, PerformanceEstimator
from repro.core.power_estimator import PowerEstimator
from repro.core.state import SystemState
from repro.errors import EstimationError


class CachedPerformanceEstimator:
    """Memoizing wrapper around a :class:`PerformanceEstimator`."""

    def __init__(self, inner: PerformanceEstimator):
        self.inner = inner
        self._cache: Dict[Tuple[SystemState, int], PerformanceEstimate] = {}
        self.hits = 0
        self.misses = 0

    def estimate(
        self, state: SystemState, n_threads: int
    ) -> PerformanceEstimate:
        key = (state, n_threads)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.inner.estimate(state, n_threads)
        self._cache[key] = result
        return result

    def estimate_rate(
        self,
        candidate: SystemState,
        current: SystemState,
        observed_rate: float,
        n_threads: int,
    ) -> float:
        if observed_rate <= 0:
            raise EstimationError("observed rate must be positive")
        cap_candidate = self.estimate(candidate, n_threads).capacity
        cap_current = self.estimate(current, n_threads).capacity
        return observed_rate * cap_candidate / cap_current

    def tabulate(self, spec, n_threads: int) -> dict:
        """Full-grid tables routed through the memo cache.

        The vector planner's tensor build reuses whatever prior sweeps
        cached and leaves every grid state warm, so the scalar fallback
        paths (forced holds, winner re-evaluation, guard probes) are
        pure cache hits afterwards.
        """
        from repro.core.perf_estimator import tabulate_performance

        return tabulate_performance(spec, n_threads, self.estimate)

    def clear(self) -> None:
        self._cache.clear()

    def __getattr__(self, name: str) -> Any:
        # Everything else (r0, per_core_speeds, …) passes through.
        return getattr(self.inner, name)


class CachedPowerEstimator:
    """Memoizing wrapper around a :class:`PowerEstimator`.

    The power estimate depends on the state and on the performance
    estimate's used-core counts and utilizations, so the key captures
    exactly those inputs.
    """

    def __init__(self, inner: PowerEstimator):
        self.inner = inner
        self._cache: Dict[Tuple, float] = {}
        self.hits = 0
        self.misses = 0

    def estimate(self, state: SystemState, perf: PerformanceEstimate) -> float:
        key = (
            state,
            perf.assignment.used_big,
            perf.assignment.used_little,
            perf.util_big,
            perf.util_little,
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.inner.estimate(state, perf)
        self._cache[key] = result
        return result

    def clear(self) -> None:
        self._cache.clear()

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class EstimationLayer:
    """The kernel's estimation layer: both cached estimators plus the
    swap/invalidation protocol the Knowledge-update plugins use."""

    def __init__(
        self,
        perf_estimator: PerformanceEstimator,
        power_estimator: PowerEstimator,
        cached: bool = True,
    ):
        #: ``cached=False`` exposes the raw estimators — the
        #: pre-refactor behaviour, kept for overhead benchmarking.
        self.cached = cached
        self.perf = (
            CachedPerformanceEstimator(perf_estimator)
            if cached
            else perf_estimator
        )
        self.power = (
            CachedPowerEstimator(power_estimator) if cached else power_estimator
        )
        # Hit/miss totals retired by estimator swaps: stats() reports
        # layer-lifetime counts, so a run that swaps models every
        # adaptation period (online ratio learning) still accounts for
        # every estimate it paid for.
        self._retired: Dict[str, int] = {
            "perf_hits": 0,
            "perf_misses": 0,
            "power_hits": 0,
            "power_misses": 0,
        }
        # State-space tensors for the vector planner, keyed by
        # (spec name, n_threads).  They describe the *current* model
        # pair, so every swap/invalidation below drops them.  Build and
        # reuse counts are layer-lifetime, like the retired hit/miss
        # totals: the vector path mostly bypasses the per-state memo,
        # and these counters are what stats() reports for it instead.
        self._tensors: Dict[Tuple[str, int], Any] = {}
        self.tensor_builds = 0
        self.tensor_reuses = 0

    def tensor(self, spec, n_threads: int):
        """The state-space tensor for the current models (built lazily)."""
        key = (spec.name, n_threads)
        cached = self._tensors.get(key)
        if cached is not None:
            self.tensor_reuses += 1
            return cached
        from repro.kernel.batchplan import StateSpaceTensor

        tensor = StateSpaceTensor.build(spec, n_threads, self.perf, self.power)
        self._tensors[key] = tensor
        self.tensor_builds += 1
        return tensor

    def set_perf_estimator(self, estimator: PerformanceEstimator) -> None:
        """Replace the performance model (e.g. a refit r0) — the old
        cache entries no longer describe it, so they are dropped."""
        self._retired["perf_hits"] += getattr(self.perf, "hits", 0)
        self._retired["perf_misses"] += getattr(self.perf, "misses", 0)
        self.perf = (
            CachedPerformanceEstimator(estimator) if self.cached else estimator
        )
        self._tensors.clear()

    def set_power_estimator(self, estimator: PowerEstimator) -> None:
        """Replace the power model (e.g. after recalibration)."""
        self._retired["power_hits"] += getattr(self.power, "hits", 0)
        self._retired["power_misses"] += getattr(self.power, "misses", 0)
        self.power = (
            CachedPowerEstimator(estimator) if self.cached else estimator
        )
        self._tensors.clear()

    def invalidate(self) -> None:
        """Drop every cached estimate, keeping the current models."""
        if self.cached:
            self.perf.clear()
            self.power.clear()
        self._tensors.clear()

    def stats(self) -> Dict[str, int]:
        """Layer-lifetime counts, surviving estimator swaps.

        ``tensor_builds``/``tensor_reuses`` meter the vector planner's
        state-space tensors — its per-plan lookups do not touch the
        per-state memo, so without these the vector path would look
        free in the cache accounting.
        """
        return {
            "perf_hits": self._retired["perf_hits"]
            + getattr(self.perf, "hits", 0),
            "perf_misses": self._retired["perf_misses"]
            + getattr(self.perf, "misses", 0),
            "power_hits": self._retired["power_hits"]
            + getattr(self.power, "hits", 0),
            "power_misses": self._retired["power_misses"]
            + getattr(self.power, "misses", 0),
            "tensor_builds": self.tensor_builds,
            "tensor_reuses": self.tensor_reuses,
        }
