"""Interference-aware adaptation: the frozen-state machinery (Table 4.3).

Cluster frequency is shared: when one application lowers it, co-runners'
performance data goes stale and their next adaptation would act on bad
inputs.  MP-HARS therefore:

* sets each affected application's *freezing count* (heartbeats to wait
  until its measurements are trustworthy again) whenever a cluster's
  frequency is decreased, and
* marks a cluster *frozen* while any user's count is nonzero — frozen
  clusters may not have their frequency decreased again.

Table 4.3 maps (application-in-period satisfaction, worst satisfaction
among the other users of the cluster, frozen state) to a *state decision*
— the direction the in-period application may push the shared frequency —
and a *freeze decision* updating the frozen flag.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.heartbeats.targets import Satisfaction


class StateDecision(enum.Enum):
    """Allowed shared-frequency direction for the adapting application."""

    INC = "inc"  # may only raise the cluster frequency
    DEC = "dec"  # may lower it (sets a freeze)
    KEEP = "keep"  # must leave it unchanged


class FreezeDecision(enum.Enum):
    """What happens to the cluster's frozen flag."""

    FREEZE = "freeze"
    UNFREEZE = "unfreeze"
    KEEP = "keep"


#: Table 4.3, verbatim.  Keys: (app satisfaction, worst other
#: satisfaction, frozen?) → (state decision, freeze decision).
_TABLE: Dict[Tuple[Satisfaction, Satisfaction, bool], Tuple[StateDecision, FreezeDecision]] = {}


def _fill_table() -> None:
    under, achieve, over = (
        Satisfaction.UNDERPERF,
        Satisfaction.ACHIEVE,
        Satisfaction.OVERPERF,
    )
    # Underperforming app: always allowed to increase; a frozen cluster
    # unfreezes because raising frequency invalidates no one's data.
    for others in (under, achieve, over):
        _TABLE[(under, others, True)] = (StateDecision.INC, FreezeDecision.UNFREEZE)
        _TABLE[(under, others, False)] = (StateDecision.INC, FreezeDecision.KEEP)
    # Achieving app: leave the shared frequency alone.
    for others in (under, achieve, over):
        for frozen in (True, False):
            _TABLE[(achieve, others, frozen)] = (
                StateDecision.KEEP,
                FreezeDecision.KEEP,
            )
    # Overperforming app: may lower the shared frequency only when every
    # other user also overperforms and the cluster is not frozen; a
    # frozen cluster may still be *raised* (escape hatch).
    for others in (under, achieve, over):
        _TABLE[(over, others, True)] = (StateDecision.INC, FreezeDecision.KEEP)
    _TABLE[(over, under, False)] = (StateDecision.KEEP, FreezeDecision.KEEP)
    _TABLE[(over, achieve, False)] = (StateDecision.KEEP, FreezeDecision.KEEP)
    _TABLE[(over, over, False)] = (StateDecision.DEC, FreezeDecision.FREEZE)


_fill_table()


def decide(
    app_satisfaction: Satisfaction,
    others_satisfaction: Satisfaction,
    frozen: bool,
) -> Tuple[StateDecision, FreezeDecision]:
    """Look up Table 4.3.

    ``others_satisfaction`` is the *worst case* (minimum) satisfaction
    among the other applications using the cluster; pass
    ``Satisfaction.OVERPERF`` when there are none (sole user — but in
    that case callers normally bypass the table entirely).
    """
    key = (app_satisfaction, others_satisfaction, frozen)
    if key not in _TABLE:  # pragma: no cover - table is total
        raise ConfigurationError(f"no decision for {key}")
    return _TABLE[key]


def worst_satisfaction(values) -> Satisfaction:
    """Most constraining satisfaction among co-runners.

    Order: UNDERPERF < ACHIEVE < OVERPERF.  An underperformer anywhere
    blocks every decrease.
    """
    order = {
        Satisfaction.UNDERPERF: 0,
        Satisfaction.ACHIEVE: 1,
        Satisfaction.OVERPERF: 2,
    }
    items = list(values)
    if not items:
        return Satisfaction.OVERPERF
    return min(items, key=lambda s: order[s])
