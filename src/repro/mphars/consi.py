"""CONS-I: the conservative incremental naive adaptation model.

The multi-application baseline of Section 5.2.1: every application shares
all enabled cores (Linux GTS places threads) and one *global* system
state is adjusted incrementally along the ``perfScore``-sorted list —
no performance or power estimation, just the nearest-score step:

* an underperforming application steps the system *up* unconditionally
  ("no restriction on increasing system performance");
* an overperforming application steps the system *down* only when no
  other application would be hurt — every co-runner must itself be
  overperforming and no freeze may be pending;
* after any decrease, adaptation pauses until every application has
  collected fresh performance data on the new state (the
  interference-aware freeze).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.perf_estimator import DEFAULT_R0
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.heartbeats.record import Heartbeat
from repro.heartbeats.targets import Satisfaction
from repro.mphars.freeze import worst_satisfaction
from repro.mphars.perfscore import ScoreOrderedStates, incremental_step
from repro.platform.cluster import BIG, LITTLE
from repro.platform.topology import first_n
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp

#: Heartbeats each app must observe after a decrease before adapting.
DEFAULT_FREEZE_BEATS = 5


class ConsIController(Controller):
    """Global conservative-incremental adaptation over shared resources."""

    def __init__(
        self,
        adapt_every: int = 5,
        freeze_beats: int = DEFAULT_FREEZE_BEATS,
        r0: float = DEFAULT_R0,
    ):
        if adapt_every < 1 or freeze_beats < 1:
            raise ConfigurationError("periods must be >= 1")
        self.adapt_every = adapt_every
        self.freeze_beats = freeze_beats
        self.r0 = r0
        self._states: Optional[ScoreOrderedStates] = None
        self._current: Optional[SystemState] = None
        self._freeze_left: Dict[str, int] = {}
        self._last_rate: Dict[str, Optional[float]] = {}
        self.adaptations = 0

    # -- Controller hooks ---------------------------------------------------

    def on_start(self, sim: "Simulation") -> None:
        self._states = ScoreOrderedStates(sim.spec, r0=self.r0)
        for app in sim.apps:
            sim.actuator.clear_affinities(app)
            self._freeze_left[app.name] = 0
            self._last_rate[app.name] = None
        self._apply(sim, self._states.top)

    def on_heartbeat(
        self, sim: "Simulation", app: "SimApp", heartbeat: Heartbeat
    ) -> None:
        if app.name not in self._freeze_left:
            return
        if self._freeze_left[app.name] > 0:
            self._freeze_left[app.name] -= 1
        rate = app.monitor.current_rate()
        if rate is not None:
            self._last_rate[app.name] = rate
        if heartbeat.index == 0 or heartbeat.index % self.adapt_every != 0:
            return
        if rate is None or not app.target.out_of_window(rate):
            return
        assert self._states is not None and self._current is not None
        satisfaction = app.target.classify(rate)
        if satisfaction is Satisfaction.UNDERPERF:
            next_state = incremental_step(
                sim.spec, self._current, increase=True, r0=self.r0
            )
        else:  # OVERPERF
            if not self._may_decrease(sim, app):
                return
            next_state = incremental_step(
                sim.spec, self._current, increase=False, r0=self.r0
            )
            # The freeze exists to let apps re-measure after a *frequency*
            # decrease (Section 4.1.4); core-count decreases are visible
            # immediately and do not stall adaptation.
            if next_state is not None and (
                next_state.f_big_mhz < self._current.f_big_mhz
                or next_state.f_little_mhz < self._current.f_little_mhz
            ):
                self._start_freeze(sim)
        if next_state is not None and next_state != self._current:
            self.adaptations += 1
            self._apply(sim, next_state)

    def current_allocation(self, app_name: str) -> Optional[Tuple[int, int]]:
        if self._current is None or app_name not in self._freeze_left:
            return None
        return (self._current.c_big, self._current.c_little)

    @property
    def state(self) -> Optional[SystemState]:
        """The current global system state."""
        return self._current

    # -- internals -------------------------------------------------------------

    def _may_decrease(self, sim: "Simulation", app: "SimApp") -> bool:
        """Conservative rule: decrease only if nobody could be hurt."""
        # Pending freezes only matter for apps that are still running —
        # a finished app will never re-measure, and one that has not yet
        # produced heartbeats has no measurements to invalidate.
        for other in sim.apps:
            if other.is_done():
                continue
            if self._last_rate.get(other.name) is None:
                continue
            if self._freeze_left.get(other.name, 0) > 0:
                return False  # frozen: still collecting post-decrease data
        others = [
            other
            for other in sim.apps
            if other.name != app.name and not other.is_done()
        ]
        satisfactions = []
        for other in others:
            rate = self._last_rate.get(other.name)
            if rate is None:
                # No data yet (e.g. a serial startup phase): the paper's
                # conservative model has nothing to protect, so it does
                # not block the decrease.
                continue
            satisfactions.append(other.target.classify(rate))
        if not satisfactions:
            return True
        return worst_satisfaction(satisfactions) is Satisfaction.OVERPERF

    def _start_freeze(self, sim: "Simulation") -> None:
        for app in sim.apps:
            # Only apps with performance data to re-collect are frozen;
            # an app still in a heartbeat-free phase (e.g. blackscholes'
            # input reading) has nothing to invalidate.
            if not app.is_done() and self._last_rate.get(app.name) is not None:
                self._freeze_left[app.name] = self.freeze_beats

    def _apply(self, sim: "Simulation", state: SystemState) -> None:
        state.validate(sim.spec)
        actuator = sim.actuator
        actuator.set_frequency(BIG, state.f_big_mhz)
        actuator.set_frequency(LITTLE, state.f_little_mhz)
        enabled = frozenset(
            first_n(sim.spec, BIG, state.c_big)
            + first_n(sim.spec, LITTLE, state.c_little)
        )
        for app in sim.apps:
            actuator.set_cpuset(app, enabled)
            actuator.announce(app.name, state, state.c_big, state.c_little)
        self._current = state
