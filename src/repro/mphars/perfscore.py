"""Performance-score ordering for the naive (CONS-I) adaptation model.

The naive model (Section 4.1.1) keeps the full system-state list sorted
by a scalar performance score::

    perfScore = C_B · r0 · (f_B / f0) + C_L · (f_L / f0)

and adapts *incrementally along that order*: underperform → step to the
state with the nearest higher score, overperform → nearest lower score.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.perf_estimator import DEFAULT_R0
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.platform.core_types import BASELINE_FREQ_MHZ
from repro.platform.spec import PlatformSpec


def perf_score(
    state: SystemState,
    r0: float = DEFAULT_R0,
    f0_mhz: int = BASELINE_FREQ_MHZ,
) -> float:
    """The naive model's scalar performance score."""
    if r0 <= 0 or f0_mhz <= 0:
        raise ConfigurationError("r0 and f0 must be positive")
    return (
        state.c_big * r0 * state.f_big_mhz / f0_mhz
        + state.c_little * state.f_little_mhz / f0_mhz
    )


class ScoreOrderedStates:
    """The sorted configuration list with nearest-step navigation."""

    def __init__(
        self,
        spec: PlatformSpec,
        r0: float = DEFAULT_R0,
        f0_mhz: int = BASELINE_FREQ_MHZ,
    ):
        self.spec = spec
        self.r0 = r0
        self.f0_mhz = f0_mhz
        scored: List[Tuple[float, SystemState]] = []
        for c_big, c_little, f_big, f_little in spec.iter_states():
            state = SystemState(c_big, c_little, f_big, f_little)
            scored.append((perf_score(state, r0, f0_mhz), state))
        # Deterministic order: by score, then by state tuple.
        scored.sort(
            key=lambda pair: (
                pair[0],
                pair[1].c_big,
                pair[1].c_little,
                pair[1].f_big_mhz,
                pair[1].f_little_mhz,
            )
        )
        self._states = [state for _, state in scored]
        self._scores = [score for score, _ in scored]

    def __len__(self) -> int:
        return len(self._states)

    def score_of(self, state: SystemState) -> float:
        return perf_score(state, self.r0, self.f0_mhz)

    def step_up(self, current: SystemState) -> Optional[SystemState]:
        """Nearest state with a strictly higher score (None at the top)."""
        score = self.score_of(current)
        for candidate_score, candidate in zip(self._scores, self._states):
            if candidate_score > score + 1e-12:
                return candidate
        return None

    def step_down(self, current: SystemState) -> Optional[SystemState]:
        """Nearest state with a strictly lower score (None at the bottom)."""
        score = self.score_of(current)
        best: Optional[SystemState] = None
        for candidate_score, candidate in zip(self._scores, self._states):
            if candidate_score < score - 1e-12:
                best = candidate
            else:
                break
        return best

    @property
    def top(self) -> SystemState:
        """Highest-score state (the naive model's initial state)."""
        return self._states[-1]


def incremental_step(
    spec: PlatformSpec,
    current: SystemState,
    increase: bool,
    r0: float = DEFAULT_R0,
    f0_mhz: int = BASELINE_FREQ_MHZ,
) -> Optional[SystemState]:
    """One incremental move along the performance-score order.

    The naive model "chooses the candidate system state that makes the
    smallest system performance change": among the single-component
    neighbours (one core count or one frequency level moved by one step),
    pick the one whose perfScore moves in the requested direction by the
    smallest amount.  Returns ``None`` at the edge of the space.
    """
    base_score = perf_score(current, r0, f0_mhz)
    best: Optional[SystemState] = None
    best_delta = float("inf")
    for candidate in _single_step_neighbours(spec, current):
        delta = perf_score(candidate, r0, f0_mhz) - base_score
        if increase and delta <= 1e-12:
            continue
        if not increase and delta >= -1e-12:
            continue
        if abs(delta) < best_delta:
            best_delta = abs(delta)
            best = candidate
    return best


def _single_step_neighbours(spec, current: SystemState):
    """States differing from ``current`` by one step in one dimension."""
    cb, cl, ifb, ifl = current.indices(spec)
    n_fb = len(spec.big.frequencies_mhz)
    n_fl = len(spec.little.frequencies_mhz)
    moves = [
        (cb - 1, cl, ifb, ifl),
        (cb + 1, cl, ifb, ifl),
        (cb, cl - 1, ifb, ifl),
        (cb, cl + 1, ifb, ifl),
        (cb, cl, ifb - 1, ifl),
        (cb, cl, ifb + 1, ifl),
        (cb, cl, ifb, ifl - 1),
        (cb, cl, ifb, ifl + 1),
    ]
    for new_cb, new_cl, new_ifb, new_ifl in moves:
        if not 0 <= new_cb <= spec.big.n_cores:
            continue
        if not 0 <= new_cl <= spec.little.n_cores:
            continue
        if new_cb == 0 and new_cl == 0:
            continue
        if not 0 <= new_ifb < n_fb or not 0 <= new_ifl < n_fl:
            continue
        yield SystemState(
            c_big=new_cb,
            c_little=new_cl,
            f_big_mhz=spec.big.frequencies_mhz[new_ifb],
            f_little_mhz=spec.little.frequencies_mhz[new_ifl],
        )
