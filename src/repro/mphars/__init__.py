"""MP-HARS — the multi-application extension (Chapter 4)."""

from repro.mphars.appdata import AppData
from repro.mphars.clusterdata import ClusterData
from repro.mphars.consi import ConsIController
from repro.mphars.freeze import (
    FreezeDecision,
    StateDecision,
    decide,
    worst_satisfaction,
)
from repro.mphars.manager import DEFAULT_FREEZE_BEATS, MpHarsManager
from repro.mphars.partition import get_allocatable_core_set, release_all
from repro.mphars.perfscore import ScoreOrderedStates, perf_score

__all__ = [
    "AppData",
    "ClusterData",
    "ConsIController",
    "DEFAULT_FREEZE_BEATS",
    "FreezeDecision",
    "MpHarsManager",
    "ScoreOrderedStates",
    "StateDecision",
    "decide",
    "get_allocatable_core_set",
    "perf_score",
    "release_all",
    "worst_satisfaction",
]
