"""Per-cluster bookkeeping (the paper's Table 4.2).

One record per cluster: the frozen flag (frequency decreases blocked),
the free-core array, and the current frequency level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import AllocationError, ConfigurationError


@dataclass
class ClusterData:
    """Table 4.2: the per-cluster data structure."""

    name: str
    n_cores: int
    first_core_id: int
    frozen: bool = False
    free_core: List[bool] = field(default_factory=list)
    freq_mhz: int = 0

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigurationError(f"{self.name}: n_cores must be >= 1")
        if not self.free_core:
            self.free_core = [True] * self.n_cores
        if len(self.free_core) != self.n_cores:
            raise ConfigurationError(f"{self.name}: free_core size mismatch")

    @property
    def free_count(self) -> int:
        """Cores not owned by any application (``checkFreeCore``)."""
        return sum(self.free_core)

    def free_slots(self) -> Tuple[int, ...]:
        """Within-cluster indices of free cores, ascending."""
        return tuple(i for i, free in enumerate(self.free_core) if free)

    def global_core_id(self, slot: int) -> int:
        """Translate a within-cluster slot to a platform core id."""
        if not 0 <= slot < self.n_cores:
            raise AllocationError(f"{self.name}: slot {slot} out of range")
        return self.first_core_id + slot

    def mark(self, slot: int, free: bool) -> None:
        """Set one slot's free/owned flag."""
        if not 0 <= slot < self.n_cores:
            raise AllocationError(f"{self.name}: slot {slot} out of range")
        self.free_core[slot] = free
