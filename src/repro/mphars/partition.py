"""Resource partitioning: the paper's Algorithm 4 (``GetAllocatableCoreSet``).

Each application owns a disjoint set of cores.  When an application's
requested counts change, the allocator

1. frees ``decBigCoreCnt`` / ``decLittleCoreCnt`` surplus cores back to
   the cluster's free list,
2. keeps cores the application already owns (minimizing thread
   migration), and
3. tops up from the free list.

The function returns the application's new CPU mask (global core ids).
It never takes a core owned by another application — that is the whole
point of partitioning.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.errors import AllocationError
from repro.mphars.appdata import AppData
from repro.mphars.clusterdata import ClusterData


def get_allocatable_core_set(
    app: AppData, big: ClusterData, little: ClusterData
) -> FrozenSet[int]:
    """Algorithm 4: free surplus cores, then allocate up to the request.

    ``app.nprocs_b`` / ``app.nprocs_l`` must already hold the new request
    (set via :meth:`AppData.request_counts`, which also computes the
    ``dec*`` fields).
    """
    _free_surplus(app.use_b_core, big, app.dec_big_core_cnt)
    app.dec_big_core_cnt = 0
    _free_surplus(app.use_l_core, little, app.dec_little_core_cnt)
    app.dec_little_core_cnt = 0

    mask = set()
    mask.update(_allocate(app.use_b_core, big, app.nprocs_b, app.name))
    mask.update(_allocate(app.use_l_core, little, app.nprocs_l, app.name))
    return frozenset(mask)


def release_all(app: AppData, big: ClusterData, little: ClusterData) -> None:
    """Return every core the app owns (application exit)."""
    for slot, used in enumerate(app.use_b_core):
        if used:
            big.mark(slot, free=True)
            app.use_b_core[slot] = False
    for slot, used in enumerate(app.use_l_core):
        if used:
            little.mark(slot, free=True)
            app.use_l_core[slot] = False
    app.nprocs_b = 0
    app.nprocs_l = 0
    app.dec_big_core_cnt = 0
    app.dec_little_core_cnt = 0


def _free_surplus(use_core: list, cluster: ClusterData, count: int) -> None:
    """Algorithm 4 lines 4–19: release ``count`` owned cores."""
    remaining = count
    for slot, used in enumerate(use_core):
        if remaining == 0:
            break
        if used:
            cluster.mark(slot, free=True)
            use_core[slot] = False
            remaining -= 1
    if remaining > 0:
        raise AllocationError(
            f"asked to free {count} cores on {cluster.name} but the app "
            f"owned {count - remaining} fewer"
        )


def _allocate(
    use_core: list, cluster: ClusterData, wanted: int, app_name: str
) -> Tuple[int, ...]:
    """Algorithm 4 lines 20–45: keep owned cores, then take free ones."""
    granted = []
    # First pass: keep cores already owned (no migration).
    for slot, used in enumerate(use_core):
        if len(granted) >= wanted:
            break
        if used:
            cluster.mark(slot, free=False)
            granted.append(cluster.global_core_id(slot))
    # Second pass: claim free cores for the remainder.
    for slot, free in enumerate(cluster.free_core):
        if len(granted) >= wanted:
            break
        if free:
            cluster.mark(slot, free=False)
            use_core[slot] = True
            granted.append(cluster.global_core_id(slot))
    if len(granted) < wanted:
        raise AllocationError(
            f"{app_name}: wanted {wanted} cores on {cluster.name}, "
            f"only {len(granted)} available — the search must bound its "
            f"candidates by the free-core count"
        )
    return tuple(granted)
