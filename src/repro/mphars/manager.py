"""The MP-HARS runtime manager (the paper's Algorithm 3).

MP-HARS manages several self-adaptive applications at once by running
the kernel's MAPE-K loop (:mod:`repro.kernel.mape`) per application and
plugging two multi-application modules into its stages:

* **resource partitioning** — each application owns a disjoint set of
  cores (Algorithm 4 in :mod:`repro.mphars.partition`); a Plan-stage
  candidate filter only lets the search grow an application's core
  counts into the *free* pool, never into a co-runner's cores;
* **interference-aware adaptation** — cluster frequencies are shared,
  so the same filter gates shared-cluster moves by Table 4.3
  (:mod:`repro.mphars.freeze`): an application that is the sole user of
  a cluster controls its frequency freely; otherwise the decision table
  restricts the direction, and decreases set freezing counts on every
  affected application and freeze the cluster.

The Monitor stage carries a per-heartbeat sensor (Algorithm 3 lines
8–15: drain freezing counts, record last-seen rates); the Execute stage
re-applies unconditionally to refresh partitions; finished applications
release their partitions when the engine announces
:class:`~repro.kernel.bus.AppFinished`.

Applications that have not yet adapted (no heartbeats yet — e.g.
blackscholes in its serial input phase) own no cores and run on whatever
cores are currently free; their first adaptation claims a partition.
This is why, in the paper's case 6, a late-starting blackscholes finds
all little cores taken and must settle for big cores (Section 5.2.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HarsPolicy
from repro.core.power_estimator import PowerEstimator
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.heartbeats.record import Heartbeat
from repro.heartbeats.targets import Satisfaction
from repro.kernel.bus import AppFinished
from repro.kernel.estimation import EstimationLayer
from repro.kernel.mape import (
    Analyzer,
    CycleContext,
    Executor,
    Knowledge,
    MapeLoop,
    Monitor,
    SearchPlanner,
)
from repro.mphars.appdata import AppData
from repro.mphars.clusterdata import ClusterData
from repro.mphars.freeze import (
    FreezeDecision,
    StateDecision,
    decide,
    worst_satisfaction,
)
from repro.mphars.partition import get_allocatable_core_set, release_all
from repro.platform.cluster import BIG, LITTLE
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp

#: Heartbeats an affected app must observe after a frequency decrease
#: before its measurements are trusted again.
DEFAULT_FREEZE_BEATS = 5

#: Modelled manager CPU cost per estimated candidate state.
DEFAULT_STATE_EVAL_COST_S = 50e-6


class MpHarsManager(Controller):
    """Multi-application HARS (Algorithms 3 + 4 + Table 4.3)."""

    def __init__(
        self,
        policy: HarsPolicy,
        perf_estimator: PerformanceEstimator,
        power_estimator: PowerEstimator,
        adapt_every: int = 5,
        freeze_beats: int = DEFAULT_FREEZE_BEATS,
        state_eval_cost_s: float = DEFAULT_STATE_EVAL_COST_S,
        cache_estimates: bool = True,
        stale_after_s: Optional[float] = None,
    ):
        if adapt_every < 1:
            raise ConfigurationError("adapt_every must be >= 1")
        if freeze_beats < 1:
            raise ConfigurationError("freeze_beats must be >= 1")
        self.policy = policy
        self.freeze_beats = freeze_beats
        self.state_eval_cost_s = state_eval_cost_s
        self._apps: Dict[str, AppData] = {}
        self._last_rate: Dict[str, Optional[float]] = {}
        self._clusters: Dict[str, ClusterData] = {}
        self._released: Dict[str, bool] = {}
        self._targets: Dict[str, object] = {}
        self.knowledge = Knowledge(
            EstimationLayer(
                perf_estimator, power_estimator, cached=cache_estimates
            )
        )
        # The shared partition/freeze bookkeeping is MAPE-K domain
        # knowledge: Plan (candidate filter) and Execute both read it.
        self.knowledge.domain["apps"] = self._apps
        self.knowledge.domain["clusters"] = self._clusters
        self.mape = MapeLoop(
            knowledge=self.knowledge,
            monitor=Monitor(adapt_every, sensors=(self._sense,)),
            analyzer=Analyzer(),
            planner=SearchPlanner(self.policy, constraint=self._constraint),
            executor=Executor(self._execute_plan),
            current_state_fn=self._current_state_of,
            always_execute=True,
            count_adaptations=False,
            stale_after_s=stale_after_s,
        )

    # -- compatibility façade ---------------------------------------------------

    @property
    def perf_estimator(self):
        return self.knowledge.estimation.perf

    @perf_estimator.setter
    def perf_estimator(self, estimator: PerformanceEstimator) -> None:
        self.knowledge.estimation.set_perf_estimator(estimator)

    @property
    def power_estimator(self):
        return self.knowledge.estimation.power

    @power_estimator.setter
    def power_estimator(self, estimator: PowerEstimator) -> None:
        self.knowledge.estimation.set_power_estimator(estimator)

    @property
    def adapt_every(self) -> int:
        return self.mape.monitor.adapt_every

    @adapt_every.setter
    def adapt_every(self, value: int) -> None:
        self.mape.monitor.adapt_every = value

    @property
    def states_explored_total(self) -> int:
        return self.knowledge.states_explored

    @property
    def adaptations(self) -> int:
        return self.knowledge.adaptations

    @property
    def held_cycles(self) -> int:
        """Cycles where a degraded observation held the last good state."""
        return self.mape.held_cycles

    # -- Controller hooks -------------------------------------------------------

    def attach(self, sim: "Simulation") -> None:
        super().attach(sim)
        # Finished apps release their partition as soon as the engine
        # announces completion (previously polled every tick).
        sim.bus.subscribe(
            AppFinished, lambda event: self._on_app_finished(sim, event)
        )

    def on_start(self, sim: "Simulation") -> None:
        spec = sim.spec
        self.knowledge.bind(spec)
        self._clusters.clear()
        self._clusters.update(
            {
                BIG: ClusterData(
                    name=BIG,
                    n_cores=spec.big.n_cores,
                    first_core_id=spec.big.first_core_id,
                    freq_mhz=spec.big.max_freq_mhz,
                ),
                LITTLE: ClusterData(
                    name=LITTLE,
                    n_cores=spec.little.n_cores,
                    first_core_id=spec.little.first_core_id,
                    freq_mhz=spec.little.max_freq_mhz,
                ),
            }
        )
        sim.actuator.set_max_frequencies()
        for app in sim.apps:
            self._apps[app.name] = AppData(
                name=app.name,
                n_big_slots=spec.big.n_cores,
                n_little_slots=spec.little.n_cores,
            )
            self._last_rate[app.name] = None
            self._released[app.name] = False
            self._targets[app.name] = app.target
            sim.actuator.clear_affinities(app)
        self._refresh_unpartitioned_cpusets(sim)

    def on_heartbeat(
        self, sim: "Simulation", app: "SimApp", heartbeat: Heartbeat
    ) -> None:
        if app.name not in self._apps:
            return
        self.mape.on_heartbeat(sim, app, heartbeat)

    def current_allocation(self, app_name: str) -> Optional[Tuple[int, int]]:
        data = self._apps.get(app_name)
        if data is None:
            return None
        return (data.owned_big, data.owned_little)

    def cpu_overhead_seconds(self) -> float:
        return self.states_explored_total * self.state_eval_cost_s

    # -- MAPE-K stages -----------------------------------------------------------

    def _sense(self, app: "SimApp", heartbeat: Heartbeat) -> None:
        """Per-heartbeat sensor (Algorithm 3 lines 8–15): drain freezing
        counts, refresh flags, record the last-seen rate."""
        data = self._apps[app.name]
        data.tick_freezing_counts()
        self._refresh_frozen_flags()
        rate = app.monitor.current_rate()
        if rate is not None and rate > 0:
            # A non-positive rate cannot come from a healthy window; keep
            # the last good measurement rather than poison the Table 4.3
            # co-runner satisfaction checks.
            self._last_rate[app.name] = rate
            data.heartbeat_rate = rate

    def _current_state_of(
        self, sim: "Simulation", app: "SimApp"
    ) -> SystemState:
        return self._current_state(sim, app, self._apps[app.name])

    def _constraint(
        self, ctx: CycleContext
    ) -> Callable[[SystemState, SystemState], bool]:
        """Plan-stage candidate filter: partition + Table 4.3 gating.

        Also computes the per-cluster frequency decisions (which may
        unfreeze a drained cluster as a side effect) and stashes them in
        the cycle context for the Execute stage.
        """
        data = self._apps[ctx.app.name]
        satisfaction = ctx.analysis.satisfaction
        decisions = {
            cluster: self._cluster_decision(cluster, data, satisfaction)
            for cluster in (BIG, LITTLE)
        }
        ctx.notes["decisions"] = decisions
        free_big = self._clusters[BIG].free_count
        free_little = self._clusters[LITTLE].free_count

        def candidate_ok(candidate: SystemState, cur: SystemState) -> bool:
            if candidate.c_big > data.owned_big + free_big:
                return False
            if candidate.c_little > data.owned_little + free_little:
                return False
            if not _freq_allowed(
                decisions[BIG], candidate.f_big_mhz, cur.f_big_mhz
            ):
                return False
            return _freq_allowed(
                decisions[LITTLE], candidate.f_little_mhz, cur.f_little_mhz
            )

        return candidate_ok

    def _execute_plan(
        self, sim: "Simulation", ctx: CycleContext, state: SystemState
    ) -> None:
        app = ctx.app
        data = self._apps[app.name]
        self._apply(
            sim, app, data, state, ctx.analysis.satisfaction,
            ctx.notes["decisions"],
        )
        data.adaptation_index = app.log.last.index if app.log.last else -1

    def _current_state(
        self, sim: "Simulation", app: "SimApp", data: AppData
    ) -> SystemState:
        """The app's current point in the search space.

        Owned counts if it has a partition; otherwise the free cores its
        threads currently occupy (first adaptation).
        """
        c_big, c_little = data.owned_big, data.owned_little
        if c_big == 0 and c_little == 0:
            cores = app.cores_in_use()
            c_big = sum(1 for c in cores if sim.spec.big.contains_core(c))
            c_little = len(cores) - c_big
            if c_big == 0 and c_little == 0:
                c_little = min(1, self._clusters[LITTLE].free_count)
                c_big = 0 if c_little else 1
        return SystemState(
            c_big=c_big,
            c_little=c_little,
            f_big_mhz=sim.machine.freq_mhz(BIG),
            f_little_mhz=sim.machine.freq_mhz(LITTLE),
        )

    def _cluster_decision(
        self, cluster: str, data: AppData, satisfaction: Satisfaction
    ) -> Optional[StateDecision]:
        """``checkClusterControllable``: None means unconstrained."""
        others = [
            other
            for name, other in self._apps.items()
            if name != data.name and other.uses_cluster(cluster)
        ]
        if not others:
            return None  # sole (or first) user: full control
        others_sat = worst_satisfaction(
            self._satisfaction_of(other) for other in others
        )
        state_decision, freeze_decision = decide(
            satisfaction, others_sat, self._clusters[cluster].frozen
        )
        if freeze_decision is FreezeDecision.UNFREEZE:
            self._unfreeze(cluster)
        return state_decision

    def _satisfaction_of(self, data: AppData) -> Satisfaction:
        rate = self._last_rate.get(data.name)
        if rate is None:
            # No measurements yet: the co-runner cannot be shown to be
            # hurt, but conservatively treat it as merely achieving so
            # nobody lowers its cluster frequency on no data.
            return Satisfaction.ACHIEVE
        # Late classification against the app's own target happens in the
        # manager because AppData stores only the raw rate.
        target = self._targets[data.name]
        return target.classify(rate)

    def _apply(
        self,
        sim: "Simulation",
        app: "SimApp",
        data: AppData,
        state: SystemState,
        satisfaction: Satisfaction,
        decisions: Dict[str, Optional[StateDecision]],
    ) -> None:
        """``setSysStateAndScheduleThreads`` with partitioned cores."""
        actuator = sim.actuator
        changed = False
        # Core ownership via Algorithm 4.
        if (state.c_big, state.c_little) != (data.owned_big, data.owned_little):
            changed = True
        data.request_counts(state.c_big, state.c_little)
        mask = get_allocatable_core_set(
            data, self._clusters[BIG], self._clusters[LITTLE]
        )

        # Shared frequencies: apply and handle freezing on decreases
        # (Algorithm 3 lines 23–26).
        for cluster, new_freq in (
            (BIG, state.f_big_mhz),
            (LITTLE, state.f_little_mhz),
        ):
            old_freq = sim.machine.freq_mhz(cluster)
            if new_freq == old_freq:
                continue
            if not actuator.set_frequency(cluster, new_freq):
                # Injected DVFS failure: the cluster stayed at old_freq.
                # Keep the bookkeeping honest and do not freeze
                # co-runners for a decrease that never happened.
                self._clusters[cluster].freq_mhz = old_freq
                continue
            self._clusters[cluster].freq_mhz = new_freq
            changed = True
            if new_freq < old_freq:
                self._set_freezing_counts(cluster)

        # Thread placement over the owned cores (Table 3.1 split).
        estimate = self.perf_estimator.estimate(state, app.n_threads)
        assignment = estimate.assignment
        big_ids = sorted(
            self._clusters[BIG].global_core_id(slot)
            for slot, used in enumerate(data.use_b_core)
            if used
        )[: assignment.used_big]
        little_ids = sorted(
            self._clusters[LITTLE].global_core_id(slot)
            for slot, used in enumerate(data.use_l_core)
            if used
        )[: assignment.used_little]
        actuator.set_cpuset(app, None)
        actuator.place(
            app, assignment, big_ids, little_ids, self.policy.scheduler
        )
        data.desired_state = state
        if changed:
            self.knowledge.adaptations += 1
        actuator.announce(app.name, state, data.owned_big, data.owned_little)
        self._refresh_unpartitioned_cpusets(sim)

    # -- freezing ------------------------------------------------------------------

    def _set_freezing_counts(self, cluster: str) -> None:
        """A decrease on ``cluster``: freeze every app using it."""
        for data in self._apps.values():
            if not data.uses_cluster(cluster):
                continue
            if cluster == BIG:
                data.freezing_cnt_b = self.freeze_beats
            else:
                data.freezing_cnt_l = self.freeze_beats
        self._clusters[cluster].frozen = True

    def _unfreeze(self, cluster: str) -> None:
        for data in self._apps.values():
            if cluster == BIG:
                data.freezing_cnt_b = 0
            else:
                data.freezing_cnt_l = 0
        self._clusters[cluster].frozen = False

    def _refresh_frozen_flags(self) -> None:
        """Algorithm 3 lines 12–15 (and auto-unfreeze when drained)."""
        self._clusters[BIG].frozen = any(
            data.freezing_cnt_b > 0 for data in self._apps.values()
        )
        self._clusters[LITTLE].frozen = any(
            data.freezing_cnt_l > 0 for data in self._apps.values()
        )

    # -- partition release --------------------------------------------------------

    def _on_app_finished(self, sim: "Simulation", event: AppFinished) -> None:
        data = self._apps.get(event.app_name)
        if data is None or self._released.get(event.app_name):
            return
        release_all(data, self._clusters[BIG], self._clusters[LITTLE])
        self._released[event.app_name] = True
        self._refresh_unpartitioned_cpusets(sim)

    # -- unpartitioned apps -----------------------------------------------------------

    def _refresh_unpartitioned_cpusets(self, sim: "Simulation") -> None:
        """Apps without a partition run on the currently-free cores."""
        free_ids = frozenset(
            cluster.global_core_id(slot)
            for cluster in self._clusters.values()
            for slot in cluster.free_slots()
        )
        for app in sim.apps:
            data = self._apps.get(app.name)
            if data is None or data.owned_big or data.owned_little:
                continue
            if app.is_done():
                continue
            sim.actuator.set_cpuset(app, free_ids if free_ids else None)


def _freq_allowed(
    decision: Optional[StateDecision], candidate_mhz: int, current_mhz: int
) -> bool:
    """Whether a candidate's shared-cluster frequency obeys a decision.

    ``None`` means the adapting application is the cluster's sole user
    and may move it freely.
    """
    if decision is None:
        return True
    if decision is StateDecision.KEEP:
        return candidate_mhz == current_mhz
    if decision is StateDecision.INC:
        return candidate_mhz >= current_mhz
    return candidate_mhz <= current_mhz  # DEC
