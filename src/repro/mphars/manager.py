"""The MP-HARS runtime manager (the paper's Algorithm 3).

MP-HARS manages several self-adaptive applications at once by running
the kernel's MAPE-K loop (:mod:`repro.kernel.mape`) per application and
plugging two multi-application modules into its stages:

* **resource partitioning** — each application owns a disjoint set of
  cores (Algorithm 4 in :mod:`repro.mphars.partition`); a Plan-stage
  candidate filter only lets the search grow an application's core
  counts into the *free* pool, never into a co-runner's cores;
* **interference-aware adaptation** — cluster frequencies are shared,
  so the same filter gates shared-cluster moves by Table 4.3
  (:mod:`repro.mphars.freeze`): an application that is the sole user of
  a cluster controls its frequency freely; otherwise the decision table
  restricts the direction, and decreases set freezing counts on every
  affected application and freeze the cluster.

The Monitor stage carries a per-heartbeat sensor (Algorithm 3 lines
8–15: drain freezing counts, record last-seen rates); the Execute stage
re-applies unconditionally to refresh partitions; finished applications
release their partitions when the engine announces
:class:`~repro.kernel.bus.AppFinished`.

Applications that have not yet adapted (no heartbeats yet — e.g.
blackscholes in its serial input phase) own no cores and run on whatever
cores are currently free; their first adaptation claims a partition.
This is why, in the paper's case 6, a late-starting blackscholes finds
all little cores taken and must settle for big cores (Section 5.2.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set, Tuple

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HarsPolicy
from repro.core.power_estimator import PowerEstimator
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.heartbeats.record import Heartbeat
from repro.heartbeats.targets import Satisfaction
from repro.kernel.bus import AppFinished
from repro.kernel.estimation import EstimationLayer
from repro.kernel.mape import (
    Analyzer,
    CycleContext,
    Executor,
    Knowledge,
    MapeLoop,
    Monitor,
    SearchPlanner,
)
from repro.mphars.appdata import AppData
from repro.mphars.clusterdata import ClusterData
from repro.mphars.freeze import (
    FreezeDecision,
    StateDecision,
    decide,
    worst_satisfaction,
)
from repro.mphars.partition import get_allocatable_core_set, release_all
from repro.platform.cluster import BIG, LITTLE
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp

#: Heartbeats an affected app must observe after a frequency decrease
#: before its measurements are trusted again.
DEFAULT_FREEZE_BEATS = 5

#: Modelled manager CPU cost per estimated candidate state.
DEFAULT_STATE_EVAL_COST_S = 50e-6


class MpHarsManager(Controller):
    """Multi-application HARS (Algorithms 3 + 4 + Table 4.3)."""

    def __init__(
        self,
        policy: HarsPolicy,
        perf_estimator: PerformanceEstimator,
        power_estimator: PowerEstimator,
        adapt_every: int = 5,
        freeze_beats: int = DEFAULT_FREEZE_BEATS,
        state_eval_cost_s: float = DEFAULT_STATE_EVAL_COST_S,
        cache_estimates: bool = True,
        stale_after_s: Optional[float] = None,
    ):
        if adapt_every < 1:
            raise ConfigurationError("adapt_every must be >= 1")
        if freeze_beats < 1:
            raise ConfigurationError("freeze_beats must be >= 1")
        self.policy = policy
        self.freeze_beats = freeze_beats
        self.state_eval_cost_s = state_eval_cost_s
        self._apps: Dict[str, AppData] = {}
        self._last_rate: Dict[str, Optional[float]] = {}
        self._clusters: Dict[str, ClusterData] = {}
        self._released: Dict[str, bool] = {}
        self._targets: Dict[str, object] = {}
        #: Apps evicted by the supervisor — never re-admitted, even
        #: across a controller restart.
        self._removed: Set[str] = set()
        #: Survivors owed a forced adaptation cycle after an eviction
        #: returned cores to the free pool.
        self._repartition_pending: Set[str] = set()
        #: Set by the supervision Checkpointer (if one is attached);
        #: consulted by :meth:`simulate_restart` for a warm restore.
        self.checkpoint_store = None
        self.knowledge = Knowledge(
            EstimationLayer(
                perf_estimator, power_estimator, cached=cache_estimates
            )
        )
        # The shared partition/freeze bookkeeping is MAPE-K domain
        # knowledge: Plan (candidate filter) and Execute both read it.
        self.knowledge.domain["apps"] = self._apps
        self.knowledge.domain["clusters"] = self._clusters
        self.mape = MapeLoop(
            knowledge=self.knowledge,
            monitor=Monitor(adapt_every, sensors=(self._sense,)),
            analyzer=Analyzer(),
            planner=SearchPlanner(self.policy, constraint=self._constraint),
            executor=Executor(self._execute_plan),
            current_state_fn=self._current_state_of,
            always_execute=True,
            count_adaptations=False,
            stale_after_s=stale_after_s,
        )

    # -- compatibility façade ---------------------------------------------------

    @property
    def perf_estimator(self):
        return self.knowledge.estimation.perf

    @perf_estimator.setter
    def perf_estimator(self, estimator: PerformanceEstimator) -> None:
        self.knowledge.estimation.set_perf_estimator(estimator)

    @property
    def power_estimator(self):
        return self.knowledge.estimation.power

    @power_estimator.setter
    def power_estimator(self, estimator: PowerEstimator) -> None:
        self.knowledge.estimation.set_power_estimator(estimator)

    @property
    def adapt_every(self) -> int:
        return self.mape.monitor.adapt_every

    @adapt_every.setter
    def adapt_every(self, value: int) -> None:
        self.mape.monitor.adapt_every = value

    @property
    def states_explored_total(self) -> int:
        return self.knowledge.states_explored

    @property
    def adaptations(self) -> int:
        return self.knowledge.adaptations

    @property
    def held_cycles(self) -> int:
        """Cycles where a degraded observation held the last good state."""
        return self.mape.held_cycles

    # -- Controller hooks -------------------------------------------------------

    def attach(self, sim: "Simulation") -> None:
        super().attach(sim)
        # Finished apps release their partition as soon as the engine
        # announces completion (previously polled every tick).
        sim.bus.subscribe(
            AppFinished, lambda event: self._on_app_finished(sim, event)
        )

    def on_start(self, sim: "Simulation") -> None:
        spec = sim.spec
        self.knowledge.bind(spec)
        # Vector profile: per-partition plans run on the tensorized
        # backend through the engine's shared batch-plan service.
        service = getattr(sim, "plan_service", None)
        if service is not None:
            self.mape.planner.backend = "vector"
            self.mape.planner.plan_service = service
        self._clusters.clear()
        self._clusters.update(
            {
                BIG: ClusterData(
                    name=BIG,
                    n_cores=spec.big.n_cores,
                    first_core_id=spec.big.first_core_id,
                    freq_mhz=spec.big.max_freq_mhz,
                ),
                LITTLE: ClusterData(
                    name=LITTLE,
                    n_cores=spec.little.n_cores,
                    first_core_id=spec.little.first_core_id,
                    freq_mhz=spec.little.max_freq_mhz,
                ),
            }
        )
        sim.actuator.set_max_frequencies()
        for app in sim.apps:
            self._apps[app.name] = AppData(
                name=app.name,
                n_big_slots=spec.big.n_cores,
                n_little_slots=spec.little.n_cores,
            )
            self._last_rate[app.name] = None
            self._released[app.name] = False
            self._targets[app.name] = app.target
            sim.actuator.clear_affinities(app)
        self._refresh_unpartitioned_cpusets(sim)

    def on_heartbeat(
        self, sim: "Simulation", app: "SimApp", heartbeat: Heartbeat
    ) -> None:
        if app.name not in self._apps:
            return
        force = app.name in self._repartition_pending
        ctx = self.mape.on_heartbeat(sim, app, heartbeat, force=force)
        if force and ctx is not None:
            # The forced cycle actually ran (Plan executed); a degraded
            # observation leaves the app pending so the next beat
            # retries the repartition.
            self._repartition_pending.discard(app.name)

    def current_allocation(self, app_name: str) -> Optional[Tuple[int, int]]:
        data = self._apps.get(app_name)
        if data is None:
            return None
        return (data.owned_big, data.owned_little)

    def cpu_overhead_seconds(self) -> float:
        return self.states_explored_total * self.state_eval_cost_s

    # -- MAPE-K stages -----------------------------------------------------------

    def _sense(self, app: "SimApp", heartbeat: Heartbeat) -> None:
        """Per-heartbeat sensor (Algorithm 3 lines 8–15): drain freezing
        counts, refresh flags, record the last-seen rate."""
        data = self._apps.get(app.name)
        if data is None:
            # The app unregistered (finished or was evicted) between the
            # heartbeat being queued and the sensor running.
            return
        data.tick_freezing_counts()
        self._refresh_frozen_flags()
        rate = app.monitor.current_rate()
        if rate is not None and rate > 0:
            # A non-positive rate cannot come from a healthy window; keep
            # the last good measurement rather than poison the Table 4.3
            # co-runner satisfaction checks.
            self._last_rate[app.name] = rate
            data.heartbeat_rate = rate

    def _current_state_of(
        self, sim: "Simulation", app: "SimApp"
    ) -> Optional[SystemState]:
        data = self._apps.get(app.name)
        if data is None:
            # Unregistered mid-cycle: no current point in the search
            # space — the MAPE loop abandons the cycle.
            return None
        return self._current_state(sim, app, data)

    def _constraint(
        self, ctx: CycleContext
    ) -> Callable[[SystemState, SystemState], bool]:
        """Plan-stage candidate filter: partition + Table 4.3 gating.

        Also computes the per-cluster frequency decisions (which may
        unfreeze a drained cluster as a side effect) and stashes them in
        the cycle context for the Execute stage.
        """
        data = self._apps.get(ctx.app.name)
        if data is None:
            # Unregistered between Analyze and Plan: reject the whole
            # neighbourhood; the forced-fallback execute is then a no-op
            # thanks to the same guard in ``_execute_plan``.
            ctx.notes["decisions"] = {BIG: None, LITTLE: None}
            return lambda candidate, cur: False
        satisfaction = ctx.analysis.satisfaction
        decisions = {
            cluster: self._cluster_decision(cluster, data, satisfaction)
            for cluster in (BIG, LITTLE)
        }
        ctx.notes["decisions"] = decisions
        return PartitionFilter(
            max_big=data.owned_big + self._clusters[BIG].free_count,
            max_little=data.owned_little + self._clusters[LITTLE].free_count,
            decisions=decisions,
        )

    def _execute_plan(
        self, sim: "Simulation", ctx: CycleContext, state: SystemState
    ) -> None:
        app = ctx.app
        data = self._apps.get(app.name)
        if data is None:
            # Unregistered between Plan and Execute: nothing to place.
            return
        self._apply(
            sim, app, data, state, ctx.analysis.satisfaction,
            ctx.notes["decisions"],
        )
        data.adaptation_index = app.log.last.index if app.log.last else -1

    def _current_state(
        self, sim: "Simulation", app: "SimApp", data: AppData
    ) -> SystemState:
        """The app's current point in the search space.

        Owned counts if it has a partition; otherwise the free cores its
        threads currently occupy (first adaptation).
        """
        c_big, c_little = data.owned_big, data.owned_little
        if c_big == 0 and c_little == 0:
            cores = app.cores_in_use()
            c_big = sum(1 for c in cores if sim.spec.big.contains_core(c))
            c_little = len(cores) - c_big
            if c_big == 0 and c_little == 0:
                c_little = min(1, self._clusters[LITTLE].free_count)
                c_big = 0 if c_little else 1
        return SystemState(
            c_big=c_big,
            c_little=c_little,
            f_big_mhz=sim.machine.freq_mhz(BIG),
            f_little_mhz=sim.machine.freq_mhz(LITTLE),
        )

    def _cluster_decision(
        self, cluster: str, data: AppData, satisfaction: Satisfaction
    ) -> Optional[StateDecision]:
        """``checkClusterControllable``: None means unconstrained."""
        others = [
            other
            for name, other in self._apps.items()
            if name != data.name and other.uses_cluster(cluster)
        ]
        if not others:
            return None  # sole (or first) user: full control
        others_sat = worst_satisfaction(
            self._satisfaction_of(other) for other in others
        )
        state_decision, freeze_decision = decide(
            satisfaction, others_sat, self._clusters[cluster].frozen
        )
        if freeze_decision is FreezeDecision.UNFREEZE:
            self._unfreeze(cluster)
        return state_decision

    def _satisfaction_of(self, data: AppData) -> Satisfaction:
        rate = self._last_rate.get(data.name)
        if rate is None:
            # No measurements yet: the co-runner cannot be shown to be
            # hurt, but conservatively treat it as merely achieving so
            # nobody lowers its cluster frequency on no data.
            return Satisfaction.ACHIEVE
        # Late classification against the app's own target happens in the
        # manager because AppData stores only the raw rate.
        target = self._targets[data.name]
        return target.classify(rate)

    def _apply(
        self,
        sim: "Simulation",
        app: "SimApp",
        data: AppData,
        state: SystemState,
        satisfaction: Satisfaction,
        decisions: Dict[str, Optional[StateDecision]],
    ) -> None:
        """``setSysStateAndScheduleThreads`` with partitioned cores."""
        actuator = sim.actuator
        changed = False
        # A forced-fallback "current" state can describe more cores than
        # Algorithm 4 could grant: an unpartitioned app GTS-spread over
        # cores owned by co-runners reports them as its own, and when
        # the candidate filter rejects the whole neighbourhood that
        # state is executed as-is.  Clamp the request to the grantable
        # bound; filter-passing candidates already satisfy it, so this
        # is a no-op on every non-degenerate cycle.
        want_big = min(
            state.c_big, data.owned_big + self._clusters[BIG].free_count
        )
        want_little = min(
            state.c_little,
            data.owned_little + self._clusters[LITTLE].free_count,
        )
        if (want_big, want_little) != (state.c_big, state.c_little):
            if want_big == 0 and want_little == 0:
                # Nothing grantable at all: hold — keep running on
                # whatever free/shared cores GTS gives the app.
                return
            state = SystemState(
                c_big=want_big,
                c_little=want_little,
                f_big_mhz=state.f_big_mhz,
                f_little_mhz=state.f_little_mhz,
            )
        # Core ownership via Algorithm 4.
        if (state.c_big, state.c_little) != (data.owned_big, data.owned_little):
            changed = True
        data.request_counts(state.c_big, state.c_little)
        mask = get_allocatable_core_set(
            data, self._clusters[BIG], self._clusters[LITTLE]
        )

        # Shared frequencies: apply and handle freezing on decreases
        # (Algorithm 3 lines 23–26).
        for cluster, new_freq in (
            (BIG, state.f_big_mhz),
            (LITTLE, state.f_little_mhz),
        ):
            old_freq = sim.machine.freq_mhz(cluster)
            if new_freq == old_freq:
                continue
            if not actuator.set_frequency(cluster, new_freq):
                # Injected DVFS failure: the cluster stayed at old_freq.
                # Keep the bookkeeping honest and do not freeze
                # co-runners for a decrease that never happened.
                self._clusters[cluster].freq_mhz = old_freq
                continue
            self._clusters[cluster].freq_mhz = new_freq
            changed = True
            if new_freq < old_freq:
                self._set_freezing_counts(cluster)

        # Thread placement over the owned cores (Table 3.1 split).
        self._place_owned(sim, app, data, state)
        if changed:
            self.knowledge.adaptations += 1
        actuator.announce(app.name, state, data.owned_big, data.owned_little)
        self._refresh_unpartitioned_cpusets(sim)

    def _place_owned(
        self,
        sim: "Simulation",
        app: "SimApp",
        data: AppData,
        state: SystemState,
    ) -> None:
        """Pin the app's threads over its owned cores (Table 3.1 split).

        Shared with checkpoint restore, which re-pins every surviving
        app from its snapshotted ownership without replaying frequency
        moves."""
        actuator = sim.actuator
        estimate = self.perf_estimator.estimate(state, app.n_threads)
        assignment = estimate.assignment
        big_ids = sorted(
            self._clusters[BIG].global_core_id(slot)
            for slot, used in enumerate(data.use_b_core)
            if used
        )[: assignment.used_big]
        little_ids = sorted(
            self._clusters[LITTLE].global_core_id(slot)
            for slot, used in enumerate(data.use_l_core)
            if used
        )[: assignment.used_little]
        actuator.set_cpuset(app, None)
        actuator.place(
            app, assignment, big_ids, little_ids, self.policy.scheduler
        )
        data.desired_state = state

    # -- freezing ------------------------------------------------------------------

    def _set_freezing_counts(self, cluster: str) -> None:
        """A decrease on ``cluster``: freeze every app using it."""
        for data in self._apps.values():
            if not data.uses_cluster(cluster):
                continue
            if cluster == BIG:
                data.freezing_cnt_b = self.freeze_beats
            else:
                data.freezing_cnt_l = self.freeze_beats
        self._clusters[cluster].frozen = True

    def _unfreeze(self, cluster: str) -> None:
        for data in self._apps.values():
            if cluster == BIG:
                data.freezing_cnt_b = 0
            else:
                data.freezing_cnt_l = 0
        self._clusters[cluster].frozen = False

    def _refresh_frozen_flags(self) -> None:
        """Algorithm 3 lines 12–15 (and auto-unfreeze when drained)."""
        self._clusters[BIG].frozen = any(
            data.freezing_cnt_b > 0 for data in self._apps.values()
        )
        self._clusters[LITTLE].frozen = any(
            data.freezing_cnt_l > 0 for data in self._apps.values()
        )

    # -- partition release --------------------------------------------------------

    def _on_app_finished(self, sim: "Simulation", event: AppFinished) -> None:
        data = self._apps.get(event.app_name)
        if data is None or self._released.get(event.app_name):
            return
        release_all(data, self._clusters[BIG], self._clusters[LITTLE])
        self._released[event.app_name] = True
        self._refresh_unpartitioned_cpusets(sim)

    # -- unpartitioned apps -----------------------------------------------------------

    def _refresh_unpartitioned_cpusets(self, sim: "Simulation") -> None:
        """Apps without a partition run on the currently-free cores."""
        free_ids = frozenset(
            cluster.global_core_id(slot)
            for cluster in self._clusters.values()
            for slot in cluster.free_slots()
        )
        for app in sim.apps:
            data = self._apps.get(app.name)
            if data is None or data.owned_big or data.owned_little:
                continue
            if app.is_done() or app.halted:
                continue
            sim.actuator.set_cpuset(app, free_ids if free_ids else None)

    # -- supervision hooks --------------------------------------------------------

    def unregister_app(self, sim: "Simulation", app_name: str) -> None:
        """Supervisor eviction: drop the app, repartition survivors.

        The evicted app's partition returns to the free pool at once,
        and every survivor is owed a *forced* adaptation cycle on its
        next heartbeat — the freed cores are reabsorbed within one
        adaptation period instead of waiting for a window violation to
        trigger Algorithm 2.
        """
        data = self._apps.pop(app_name, None)
        if data is None:
            return
        self._removed.add(app_name)
        if not self._released.get(app_name):
            release_all(data, self._clusters[BIG], self._clusters[LITTLE])
        self._released[app_name] = True
        self._last_rate.pop(app_name, None)
        self._repartition_pending.update(self._apps)
        self._refresh_unpartitioned_cpusets(sim)

    # -- checkpoint / restore -----------------------------------------------------

    @property
    def checkpoint_id(self) -> str:
        """Store key; one MP-HARS instance manages the whole machine."""
        return "mp-hars"

    def checkpoint(self, now_s: float) -> Dict[str, Any]:
        """Snapshot the shared-knowledge core of MP-HARS: per-app
        partition/freeze records (Table 4.1), per-cluster bookkeeping
        (Table 4.2), last-seen rates, and the fitted power model."""
        # Lazy import: serialize sits above the manager layer.
        from repro.experiments.serialize import (
            checkpoint_payload,
            power_model_to_dict,
        )

        apps: Dict[str, Any] = {}
        for name, data in self._apps.items():
            desired = data.desired_state
            apps[name] = {
                "use_b_core": [bool(v) for v in data.use_b_core],
                "use_l_core": [bool(v) for v in data.use_l_core],
                "nprocs_b": data.nprocs_b,
                "nprocs_l": data.nprocs_l,
                "freezing_cnt_b": data.freezing_cnt_b,
                "freezing_cnt_l": data.freezing_cnt_l,
                "dec_big_core_cnt": data.dec_big_core_cnt,
                "dec_little_core_cnt": data.dec_little_core_cnt,
                "adaptation_index": data.adaptation_index,
                "heartbeat_rate": data.heartbeat_rate,
                "desired_state": (
                    [
                        desired.c_big,
                        desired.c_little,
                        desired.f_big_mhz,
                        desired.f_little_mhz,
                    ]
                    if desired is not None
                    else None
                ),
            }
        return checkpoint_payload(
            self.checkpoint_id,
            now_s,
            {
                "controller": type(self).__name__,
                "apps": apps,
                "clusters": {
                    name: {
                        "frozen": cluster.frozen,
                        "free_core": [bool(v) for v in cluster.free_core],
                        "freq_mhz": cluster.freq_mhz,
                    }
                    for name, cluster in self._clusters.items()
                },
                "last_rate": dict(self._last_rate),
                "released": dict(self._released),
                "removed": sorted(self._removed),
                "power_model": power_model_to_dict(self.power_estimator),
                "counters": {
                    "adaptations": self.knowledge.adaptations,
                    "states_explored": self.knowledge.states_explored,
                    "estimation_failures": self.knowledge.estimation_failures,
                    "held_cycles": self.mape.held_cycles,
                    "polled": self.mape.monitor.polled,
                },
            },
        )

    def restore_checkpoint(
        self, sim: "Simulation", payload: Dict[str, Any]
    ) -> None:
        """Warm restore: rebuild partitions and re-pin survivors.

        Frequencies are driven back to the snapshotted per-cluster
        values; apps that finished or were halted *after* the snapshot
        are released rather than resurrected.  Raises
        :class:`~repro.errors.ConfigurationError` on a malformed
        payload — the caller falls back to a cold start.
        """
        from repro.experiments.serialize import (
            power_model_from_dict,
            validate_checkpoint,
        )

        body = validate_checkpoint(payload)
        spec = sim.spec
        try:
            snapshot_apps = body["apps"]
            snapshot_clusters = body["clusters"]
            apps: Dict[str, AppData] = {}
            for name, entry in snapshot_apps.items():
                desired = entry["desired_state"]
                apps[name] = AppData(
                    name=name,
                    n_big_slots=spec.big.n_cores,
                    n_little_slots=spec.little.n_cores,
                    nprocs_b=int(entry["nprocs_b"]),
                    nprocs_l=int(entry["nprocs_l"]),
                    use_b_core=[bool(v) for v in entry["use_b_core"]],
                    use_l_core=[bool(v) for v in entry["use_l_core"]],
                    adaptation_index=int(entry["adaptation_index"]),
                    heartbeat_rate=float(entry["heartbeat_rate"]),
                    freezing_cnt_b=int(entry["freezing_cnt_b"]),
                    freezing_cnt_l=int(entry["freezing_cnt_l"]),
                    dec_big_core_cnt=int(entry["dec_big_core_cnt"]),
                    dec_little_core_cnt=int(entry["dec_little_core_cnt"]),
                    desired_state=(
                        SystemState(*(int(v) for v in desired))
                        if desired is not None
                        else None
                    ),
                )
            clusters: Dict[str, ClusterData] = {}
            for name, entry in snapshot_clusters.items():
                template = self._clusters[name]
                clusters[name] = ClusterData(
                    name=name,
                    n_cores=template.n_cores,
                    first_core_id=template.first_core_id,
                    frozen=bool(entry["frozen"]),
                    free_core=[bool(v) for v in entry["free_core"]],
                    freq_mhz=int(entry["freq_mhz"]),
                )
            last_rate = {
                str(k): (float(v) if v is not None else None)
                for k, v in body["last_rate"].items()
            }
            released = {
                str(k): bool(v) for k, v in body["released"].items()
            }
            removed = {str(v) for v in body.get("removed", [])}
            power_estimator = power_model_from_dict(body["power_model"])
        except (KeyError, ValueError, TypeError, ConfigurationError) as exc:
            raise ConfigurationError(
                f"malformed mp-hars checkpoint: {exc}"
            ) from None
        # Adopt the snapshot.  The domain dicts are mutated in place so
        # the Knowledge references stay valid.
        self._apps.clear()
        self._apps.update(apps)
        self._clusters.clear()
        self._clusters.update(clusters)
        self._last_rate.clear()
        self._last_rate.update(last_rate)
        self._released.clear()
        self._released.update(released)
        self._removed |= removed
        self.power_estimator = power_estimator
        counters = body.get("counters") or {}
        self.knowledge.adaptations = int(
            counters.get("adaptations", self.knowledge.adaptations)
        )
        self.knowledge.states_explored = int(
            counters.get("states_explored", self.knowledge.states_explored)
        )
        self.knowledge.estimation_failures = int(
            counters.get(
                "estimation_failures", self.knowledge.estimation_failures
            )
        )
        self.mape.held_cycles = int(
            counters.get("held_cycles", self.mape.held_cycles)
        )
        self.mape.monitor.polled = int(
            counters.get("polled", self.mape.monitor.polled)
        )
        # Reconcile against the live system: apps gone since the
        # snapshot release their partition; survivors are re-pinned.
        for cluster, cdata in self._clusters.items():
            if sim.machine.freq_mhz(cluster) != cdata.freq_mhz:
                if not sim.actuator.set_frequency(cluster, cdata.freq_mhz):
                    cdata.freq_mhz = sim.machine.freq_mhz(cluster)
        for app in sim.apps:
            data = self._apps.get(app.name)
            if data is None:
                continue
            if app.is_done() or app.halted:
                if not self._released.get(app.name):
                    release_all(
                        data, self._clusters[BIG], self._clusters[LITTLE]
                    )
                    self._released[app.name] = True
                continue
            if data.desired_state is not None and (
                data.owned_big or data.owned_little
            ):
                self._place_owned(sim, app, data, data.desired_state)
                sim.actuator.announce(
                    app.name,
                    data.desired_state,
                    data.owned_big,
                    data.owned_little,
                )
        self._refresh_unpartitioned_cpusets(sim)

    def _forget_volatile(self, sim: "Simulation") -> None:
        """What dies with the controller process: every Table 4.1/4.2
        record, last-seen rates, and the estimation cache.  The dicts
        are cleared in place — Knowledge.domain aliases them."""
        self._apps.clear()
        self._last_rate.clear()
        self._released.clear()
        self._repartition_pending.clear()
        for cluster in self._clusters.values():
            cluster.frozen = False
            cluster.free_core = [True] * cluster.n_cores
        self.knowledge.estimation.invalidate()

    def simulate_restart(self, sim: "Simulation") -> None:
        """Model a controller crash+restart (``controller_restart``).

        With a valid checkpoint the manager restores its partitions and
        re-pins survivors (warm); without one it cold-starts: max
        frequencies, empty partitions, and a full re-convergence — the
        cost Figure-style benchmarks measure.
        """
        from repro.kernel.bus import ControllerRestored

        self._forget_volatile(sim)
        store = getattr(self, "checkpoint_store", None)
        snapshot = (
            store.get(self.checkpoint_id) if store is not None else None
        )
        warm = False
        if snapshot is not None:
            try:
                self.restore_checkpoint(sim, snapshot)
                warm = True
            except ConfigurationError:
                snapshot = None
        if not warm:
            self._cold_start(sim)
        sim.bus.publish(
            ControllerRestored(
                controller=self.checkpoint_id,
                time_s=sim.clock.now_s,
                warm=warm,
                checkpoint_time_s=(
                    snapshot["time_s"] if snapshot is not None else None
                ),
            )
        )

    def _cold_start(self, sim: "Simulation") -> None:
        """Restart with zero knowledge, mid-run: like :meth:`on_start`
        but never re-admitting evicted apps or resurrecting finished
        ones."""
        spec = sim.spec
        for name, cluster in self._clusters.items():
            side = spec.big if name == BIG else spec.little
            cluster.freq_mhz = side.max_freq_mhz
        sim.actuator.set_max_frequencies()
        for app in sim.apps:
            if app.name in self._removed:
                continue
            self._apps[app.name] = AppData(
                name=app.name,
                n_big_slots=spec.big.n_cores,
                n_little_slots=spec.little.n_cores,
            )
            self._last_rate[app.name] = None
            # Finished apps own nothing in the fresh bookkeeping, so
            # their (already empty) partition needs no release.
            self._released[app.name] = app.is_done() or app.halted
            self._targets[app.name] = app.target
            if not (app.is_done() or app.halted):
                sim.actuator.clear_affinities(app)
        self._refresh_unpartitioned_cpusets(sim)


def _freq_allowed(
    decision: Optional[StateDecision], candidate_mhz: int, current_mhz: int
) -> bool:
    """Whether a candidate's shared-cluster frequency obeys a decision.

    ``None`` means the adapting application is the cluster's sole user
    and may move it freely.
    """
    if decision is None:
        return True
    if decision is StateDecision.KEEP:
        return candidate_mhz == current_mhz
    if decision is StateDecision.INC:
        return candidate_mhz >= current_mhz
    return candidate_mhz <= current_mhz  # DEC


class PartitionFilter:
    """Plan-stage structural filter: partition caps + Table 4.3 gating.

    Callable with ``(candidate, current)`` for the scalar sweep, and
    mask-capable (``box_mask``) for the vector planner — the partition
    constraint is separable per axis, so the mask is the outer AND of
    two core-count bounds and two per-cluster frequency-direction
    comparisons.  All decision side effects (unfreezing, stashing into
    the cycle notes) happen in ``_constraint`` before construction, so
    both evaluation styles see an immutable filter.
    """

    __slots__ = ("max_big", "max_little", "decisions")

    def __init__(
        self,
        max_big: int,
        max_little: int,
        decisions: Dict[str, Optional[StateDecision]],
    ):
        self.max_big = max_big
        self.max_little = max_little
        self.decisions = decisions

    def __call__(self, candidate: SystemState, cur: SystemState) -> bool:
        if candidate.c_big > self.max_big:
            return False
        if candidate.c_little > self.max_little:
            return False
        if not _freq_allowed(
            self.decisions[BIG], candidate.f_big_mhz, cur.f_big_mhz
        ):
            return False
        return _freq_allowed(
            self.decisions[LITTLE], candidate.f_little_mhz, cur.f_little_mhz
        )

    def box_mask(self, box):
        """Vectorized equivalent over a candidate box (same semantics)."""
        allowed = (box.c_big <= self.max_big) & (
            box.c_little <= self.max_little
        )
        big_mask = _freq_mask(
            self.decisions[BIG], box.f_big_mhz, box.current.f_big_mhz
        )
        if big_mask is not None:
            allowed = allowed & big_mask
        little_mask = _freq_mask(
            self.decisions[LITTLE],
            box.f_little_mhz,
            box.current.f_little_mhz,
        )
        if little_mask is not None:
            allowed = allowed & little_mask
        return allowed


def _freq_mask(
    decision: Optional[StateDecision], candidate_mhz, current_mhz: int
):
    """Array form of :func:`_freq_allowed`; ``None`` = unconstrained."""
    if decision is None:
        return None
    if decision is StateDecision.KEEP:
        return candidate_mhz == current_mhz
    if decision is StateDecision.INC:
        return candidate_mhz >= current_mhz
    return candidate_mhz <= current_mhz  # DEC
