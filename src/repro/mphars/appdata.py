"""Per-application bookkeeping (the paper's Table 4.1).

MP-HARS keeps one of these records per managed application, on the
linked list Algorithm 3 iterates.  Core ownership is tracked as boolean
arrays indexed by *within-cluster* core position (``use_b_core[4]`` /
``use_l_core[4]`` in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.state import SystemState
from repro.errors import AllocationError, ConfigurationError


@dataclass
class AppData:
    """Table 4.1: the per-application data structure."""

    name: str
    n_big_slots: int
    n_little_slots: int
    nprocs_b: int = 0
    nprocs_l: int = 0
    use_b_core: List[bool] = field(default_factory=list)
    use_l_core: List[bool] = field(default_factory=list)
    adaptation_index: int = -1
    heartbeat_rate: float = 0.0
    freezing_cnt_b: int = 0
    freezing_cnt_l: int = 0
    # Pending releases consumed by Algorithm 4 on the next allocation.
    dec_big_core_cnt: int = 0
    dec_little_core_cnt: int = 0
    #: The state this app last requested (frequencies are shared, so the
    #: machine may sit elsewhere if another app moved a cluster since).
    desired_state: Optional[SystemState] = None

    def __post_init__(self) -> None:
        if self.n_big_slots < 1 or self.n_little_slots < 1:
            raise ConfigurationError(f"{self.name}: cluster sizes must be >= 1")
        if not self.use_b_core:
            self.use_b_core = [False] * self.n_big_slots
        if not self.use_l_core:
            self.use_l_core = [False] * self.n_little_slots
        if len(self.use_b_core) != self.n_big_slots:
            raise ConfigurationError(f"{self.name}: use_b_core size mismatch")
        if len(self.use_l_core) != self.n_little_slots:
            raise ConfigurationError(f"{self.name}: use_l_core size mismatch")

    @property
    def owned_big(self) -> int:
        """Big cores currently marked used by this app."""
        return sum(self.use_b_core)

    @property
    def owned_little(self) -> int:
        """Little cores currently marked used by this app."""
        return sum(self.use_l_core)

    def uses_cluster(self, cluster_name: str) -> bool:
        """Whether the app owns any core of a cluster (interference
        scope for the frozen-state machinery)."""
        if cluster_name == "big":
            return self.owned_big > 0
        if cluster_name == "little":
            return self.owned_little > 0
        raise ConfigurationError(f"unknown cluster {cluster_name!r}")

    def request_counts(self, new_big: int, new_little: int) -> None:
        """Record a new core-count request.

        Sets the paper's ``decBigCoreCnt`` / ``decLittleCoreCnt`` fields
        that Algorithm 4 consumes to free surplus cores.
        """
        if not 0 <= new_big <= self.n_big_slots:
            raise AllocationError(f"{self.name}: big count {new_big} invalid")
        if not 0 <= new_little <= self.n_little_slots:
            raise AllocationError(
                f"{self.name}: little count {new_little} invalid"
            )
        self.dec_big_core_cnt = max(0, self.owned_big - new_big)
        self.dec_little_core_cnt = max(0, self.owned_little - new_little)
        self.nprocs_b = new_big
        self.nprocs_l = new_little

    def tick_freezing_counts(self) -> None:
        """Algorithm 3 lines 8–11: decrement on a new heartbeat."""
        if self.freezing_cnt_b > 0:
            self.freezing_cnt_b -= 1
        if self.freezing_cnt_l > 0:
            self.freezing_cnt_l -= 1
