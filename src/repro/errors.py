"""Exception hierarchy for the HARS reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Sub-types mirror the
major subsystems (platform model, simulation engine, runtime managers).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with inconsistent parameters."""


class PlatformError(ReproError):
    """Raised for invalid operations on the hardware platform model."""


class FrequencyError(PlatformError):
    """Raised when a requested frequency is outside a cluster's DVFS table."""


class ActuationError(PlatformError):
    """Raised when a platform actuation (DVFS write, affinity call) fails."""


class SimulationError(ReproError):
    """Raised by the simulation engine for invalid run-time operations."""


class SchedulingError(ReproError):
    """Raised when a scheduler receives threads it cannot place."""


class EstimationError(ReproError):
    """Raised by HARS estimators for states outside the model's domain."""


class CalibrationError(ReproError):
    """Raised when power-model calibration cannot fit the profiled data."""


class AllocationError(ReproError):
    """Raised when MP-HARS core allocation cannot satisfy a request."""
