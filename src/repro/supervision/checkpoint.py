"""Controller checkpoint/restore: warm restarts for the control plane.

A controller crash loses exactly the knowledge that took longest to
earn: fitted power-model coefficients, the learned big/little ratio, the
partition layout, per-app MAPE hold state.  A cold-restarted MP-HARS
re-runs its max-state bootstrap and re-converges from scratch — during
which every app is out of its window.

The :class:`Checkpointer` is a bus-attached controller that, on a fixed
simulated-time cadence, asks every checkpoint-capable controller (one
exposing ``checkpoint(now_s)`` / ``restore_checkpoint(sim, payload)``)
for a versioned snapshot and keeps the latest in a
:class:`CheckpointStore`.  When the fault layer injects a
``controller_restart``, each controller's ``simulate_restart`` consults
its store: snapshot present and valid → warm restore; absent or
schema-rejected → cold start.  The snapshots go through the envelope in
:mod:`repro.experiments.serialize` (``checkpoint_payload`` /
``validate_checkpoint``), so what the store holds is exactly what a
deployment would write to disk — :meth:`CheckpointStore.dump` /
:meth:`CheckpointStore.load` round-trip it through JSON.

Both classes are read-only observers of the running system; with no
restart ever injected, a checkpointed run is bit-identical to an
uncheckpointed one (minus wall-clock spent snapshotting, which the
simulation does not model).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.kernel.bus import TickStart
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class CheckpointStore:
    """Latest validated checkpoint per controller id.

    The store only accepts payloads that pass
    :func:`~repro.experiments.serialize.validate_checkpoint`, so restore
    paths can trust whatever they read back.
    """

    def __init__(self) -> None:
        self._payloads: Dict[str, Dict[str, Any]] = {}
        #: Total accepted snapshots (cadence observability).
        self.writes = 0
        #: Audit trail of persistence failures: one entry per snapshot
        #: file that could not be read back (torn write, bad schema),
        #: i.e. per cold-start fallback :meth:`recover` had to take.
        self.ledger: List[Dict[str, Any]] = []

    def put(self, payload: Dict[str, Any]) -> None:
        # Imported lazily: serialize pulls in the experiment figures,
        # which pull in the runner, which attaches supervision.
        from repro.experiments.serialize import validate_checkpoint

        validate_checkpoint(payload)
        self._payloads[payload["controller"]] = payload
        self.writes += 1

    def get(self, controller_id: str) -> Optional[Dict[str, Any]]:
        return self._payloads.get(controller_id)

    @property
    def controller_ids(self) -> List[str]:
        return sorted(self._payloads)

    def __len__(self) -> int:
        return len(self._payloads)

    def dump(self, path: str) -> None:
        """Persist every snapshot to one JSON file, atomically.

        The write goes through
        :func:`~repro.experiments.serialize.dump_json_atomic`
        (write-to-temp + ``os.replace`` + directory fsync), so a daemon
        killed mid-snapshot never leaves a torn envelope on disk — the
        previous complete dump survives instead.
        """
        from repro.experiments.serialize import dump_json_atomic

        dump_json_atomic(
            {"kind": "checkpoint-store", "checkpoints": self._payloads}, path
        )

    @classmethod
    def load(cls, path: str) -> "CheckpointStore":
        """Read a dumped store back, re-validating every snapshot."""
        from repro.experiments.serialize import load_json

        data = load_json(path)
        if data.get("kind") != "checkpoint-store":
            raise ConfigurationError(f"{path}: not a checkpoint store")
        checkpoints = data.get("checkpoints")
        if not isinstance(checkpoints, dict):
            raise ConfigurationError(f"{path}: malformed checkpoint store")
        store = cls()
        for payload in checkpoints.values():
            store.put(payload)
        store.writes = len(store._payloads)
        return store

    @classmethod
    def recover(cls, path: str) -> "CheckpointStore":
        """Best-effort :meth:`load`: never raises on a bad file.

        A missing, truncated, or schema-rejected dump yields an *empty*
        store whose :attr:`ledger` records why — the controllers it
        feeds then cold-start instead of restoring garbage, and the
        daemon surfaces the ledger entry for the operator.
        """
        import json

        try:
            return cls.load(path)
        except FileNotFoundError as exc:
            reason = f"missing: {exc}"
        except (ConfigurationError, json.JSONDecodeError, OSError, ValueError) as exc:
            reason = f"unreadable: {exc}"
        store = cls()
        store.ledger.append(
            {"path": path, "action": "cold-start fallback", "reason": reason}
        )
        return store


class Checkpointer(Controller):
    """Snapshots every checkpoint-capable controller on a cadence."""

    def __init__(
        self, cadence_s: float = 1.0, store: Optional[CheckpointStore] = None
    ):
        if cadence_s <= 0:
            raise ConfigurationError("checkpoint cadence must be positive")
        self.cadence_s = cadence_s
        self.store = store if store is not None else CheckpointStore()
        self._last_snapshot_s: Optional[float] = None

    def attach(self, sim: "Simulation") -> None:
        sim.bus.subscribe(TickStart, lambda event: self._on_tick(sim, event))

    def on_start(self, sim: "Simulation") -> None:
        # Hand every checkpoint-capable controller its store, so a
        # later ``simulate_restart`` knows where to look for warmth.
        for controller in self._capable(sim):
            controller.checkpoint_store = self.store

    def _on_tick(self, sim: "Simulation", event: TickStart) -> None:
        if (
            self._last_snapshot_s is not None
            and event.time_s - self._last_snapshot_s < self.cadence_s
        ):
            return
        self.snapshot_now(sim, now_s=event.time_s)

    def snapshot_now(
        self, sim: "Simulation", now_s: Optional[float] = None
    ) -> int:
        """Snapshot all capable controllers; returns how many."""
        if now_s is None:
            now_s = sim.clock.now_s
        count = 0
        for controller in self._capable(sim):
            self.store.put(controller.checkpoint(now_s))
            count += 1
        self._last_snapshot_s = now_s
        return count

    @staticmethod
    def _capable(sim: "Simulation") -> List[Controller]:
        return [
            controller
            for controller in sim.controllers
            if hasattr(controller, "checkpoint")
            and hasattr(controller, "restore_checkpoint")
        ]
