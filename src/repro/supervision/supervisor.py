"""Application lifecycle supervision: deadlines, quarantine, eviction.

The paper's runtime assumes every registered application keeps emitting
heartbeats until it finishes.  Real deployments break that assumption in
three ways, and each one poisons a shared-knowledge controller
differently:

* **crashed** — the app exits abruptly with work units left.  MP-HARS
  already reclaims its partition on ``AppFinished``, but nothing records
  *why* the app went away, and the heartbeat registry keeps a dead
  entry.
* **hung** — the app stops beating without exiting.  It keeps its cores
  (and its partition) forever while survivors starve; the stale-signal
  guards from PR 2 make the managers *hold*, which is exactly wrong
  here — holding preserves the hung app's allocation.
* **runaway** — the app escapes its pinning and runs far above its
  target maximum, starving siblings while looking "healthy" to its own
  monitor.

The :class:`Supervisor` is a bus-attached controller that watches every
application against a per-app heartbeat deadline derived from its target
(``grace_factor / t.min`` — the paper's targets are rates, so the
minimum rate bounds the longest legitimate beat-to-beat gap) and drives
a quarantine state machine::

    HEALTHY ──deadline──▶ SUSPECT ──×quarantine_factor──▶ QUARANTINED
       ▲                     │                                │
       └──── heartbeat ──────┴──────── heartbeat ─────────────┤
                                                              │
                                              ×evict_factor   ▼
                                                           EVICTED

Escalation is one level per tick; a single late beat fully recovers a
suspect or quarantined app (transient dips during adaptation are
normal).  Only **eviction** takes resource actions — suspicion and
quarantine publish events and write the ledger, nothing else — so a
false suspicion can never perturb a healthy run.

On eviction the supervisor reclaims the app's cores through the same
actuation façade the managers use (cpuset cleared, affinities unpinned),
halts the app in the engine, detaches it from the heartbeat registry,
and asks every controller that exposes ``unregister_app`` to drop it and
repartition — for MP-HARS that forces an immediate Algorithm 4 pass on
the survivors' next beats instead of waiting out the adaptation period.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.heartbeats.record import Heartbeat
from repro.heartbeats.registry import HeartbeatRegistry
from repro.kernel.bus import (
    AppEvicted,
    AppFinished,
    AppQuarantined,
    AppSuspected,
    ControllerRestored,
    HeartbeatEmitted,
    TickStart,
)
from repro.sim.controller import Controller

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp


class AppHealth(enum.Enum):
    """Quarantine state machine states."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    EVICTED = "evicted"
    DONE = "done"


class FailureKind(enum.Enum):
    """Failure classification driving an escalation."""

    CRASHED = "crashed"
    HUNG = "hung"
    RUNAWAY = "runaway"


@dataclass(frozen=True)
class SupervisorConfig:
    """Deadlines and escalation thresholds.

    ``grace_factor`` sets the base heartbeat deadline per app:
    ``grace_factor / t.min`` seconds.  The default is deliberately
    generous — a HARS manager probing its minimum state can legitimately
    stretch beat gaps to many multiples of the target period, and a
    false *eviction* must never happen in a healthy run.  Tests and
    benchmarks that inject true hangs pass a tighter factor to measure
    reclamation latency.
    """

    #: Heartbeat deadline = ``grace_factor / target.min_rate`` seconds.
    grace_factor: float = 16.0
    #: Before the first beat (serial input phases emit none), the
    #: deadline is measured from run start and scaled by this factor.
    startup_grace_factor: float = 8.0
    #: SUSPECT → QUARANTINED at ``deadline × quarantine_factor``.
    quarantine_factor: float = 2.0
    #: QUARANTINED → EVICTED at ``deadline × evict_factor``.
    evict_factor: float = 3.0
    #: A beat counts toward a runaway streak when the windowed rate
    #: exceeds ``runaway_margin × t.max``.
    runaway_margin: float = 1.5
    #: Consecutive over-limit beats before suspicion; quarantine and
    #: eviction follow at 2× and 3× the streak.
    runaway_beats: int = 6
    #: Only escalate a runaway when some sibling is starving (below its
    #: own ``t.min`` or past its own deadline) — an app over-performing
    #: alone on an idle machine harms nobody.
    require_starving_sibling: bool = True

    def __post_init__(self) -> None:
        if self.grace_factor <= 0:
            raise ConfigurationError("grace_factor must be positive")
        if self.startup_grace_factor < 1:
            raise ConfigurationError("startup_grace_factor must be >= 1")
        if self.quarantine_factor <= 1:
            raise ConfigurationError("quarantine_factor must be > 1")
        if self.evict_factor <= self.quarantine_factor:
            raise ConfigurationError(
                "evict_factor must exceed quarantine_factor"
            )
        if self.runaway_margin <= 1:
            raise ConfigurationError("runaway_margin must be > 1")
        if self.runaway_beats < 1:
            raise ConfigurationError("runaway_beats must be >= 1")

    def deadline_s(self, min_rate: float) -> float:
        """Base heartbeat deadline for a target minimum rate."""
        if min_rate <= 0:
            raise ConfigurationError("target minimum rate must be positive")
        return self.grace_factor / min_rate


@dataclass
class QuarantineRecord:
    """One application's lifecycle history, as the ledger keeps it."""

    app_name: str
    status: AppHealth = AppHealth.HEALTHY
    failure: Optional[FailureKind] = None
    recoveries: int = 0
    suspected_at: Optional[float] = None
    quarantined_at: Optional[float] = None
    evicted_at: Optional[float] = None
    #: ``(time_s, new_status, detail)`` in occurrence order.
    transitions: List[Tuple[float, str, str]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "app_name": self.app_name,
            "status": self.status.value,
            "failure": self.failure.value if self.failure else None,
            "recoveries": self.recoveries,
            "suspected_at": self.suspected_at,
            "quarantined_at": self.quarantined_at,
            "evicted_at": self.evicted_at,
            "transitions": [list(t) for t in self.transitions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuarantineRecord":
        try:
            return cls(
                app_name=data["app_name"],
                status=AppHealth(data["status"]),
                failure=(
                    FailureKind(data["failure"]) if data["failure"] else None
                ),
                recoveries=int(data["recoveries"]),
                suspected_at=data["suspected_at"],
                quarantined_at=data["quarantined_at"],
                evicted_at=data["evicted_at"],
                transitions=[
                    (float(t[0]), str(t[1]), str(t[2]))
                    for t in data["transitions"]
                ],
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed quarantine record: {exc}"
            ) from None


class QuarantineLedger:
    """Per-application lifecycle records, in registration order.

    The ledger is the supervision subsystem's audit trail — *what*
    happened to each app, *when* each transition fired, and whether the
    app recovered — and is part of the supervisor's checkpoint so a
    restarted controller stack does not re-evict or forget evictions.
    """

    def __init__(self) -> None:
        self._records: Dict[str, QuarantineRecord] = {}

    def ensure(self, app_name: str) -> QuarantineRecord:
        record = self._records.get(app_name)
        if record is None:
            record = QuarantineRecord(app_name=app_name)
            self._records[app_name] = record
        return record

    def record(self, app_name: str) -> QuarantineRecord:
        try:
            return self._records[app_name]
        except KeyError:
            raise ConfigurationError(
                f"no ledger record for app {app_name!r}"
            ) from None

    def transition(
        self,
        app_name: str,
        time_s: float,
        status: AppHealth,
        failure: Optional[FailureKind] = None,
        detail: str = "",
    ) -> QuarantineRecord:
        record = self.ensure(app_name)
        previous = record.status
        record.status = status
        if failure is not None:
            record.failure = failure
        if status is AppHealth.SUSPECT:
            record.suspected_at = time_s
        elif status is AppHealth.QUARANTINED:
            record.quarantined_at = time_s
        elif status is AppHealth.EVICTED:
            record.evicted_at = time_s
        elif status is AppHealth.HEALTHY and previous in (
            AppHealth.SUSPECT,
            AppHealth.QUARANTINED,
        ):
            record.recoveries += 1
            record.failure = None
        record.transitions.append((time_s, status.value, detail))
        return record

    @property
    def app_names(self) -> Tuple[str, ...]:
        return tuple(self._records)

    def status_of(self, app_name: str) -> AppHealth:
        return self.record(app_name).status

    def evicted(self) -> Tuple[str, ...]:
        """Names of evicted apps, in eviction order."""
        return tuple(
            sorted(
                (n for n, r in self._records.items()
                 if r.status is AppHealth.EVICTED),
                key=lambda n: self._records[n].evicted_at or 0.0,
            )
        )

    def rows(self) -> List[Dict[str, Any]]:
        """One summary dict per app — what benchmarks and docs print."""
        return [record.as_dict() for record in self._records.values()]

    def as_dict(self) -> Dict[str, Any]:
        return {name: r.as_dict() for name, r in self._records.items()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuarantineLedger":
        ledger = cls()
        if not isinstance(data, dict):
            raise ConfigurationError("quarantine ledger must be a dict")
        for name, record in data.items():
            ledger._records[name] = QuarantineRecord.from_dict(record)
        return ledger


@dataclass
class _WatchEntry:
    """Supervisor-internal per-app watch state."""

    app: "SimApp"
    deadline_s: float
    started_at: float
    runaway_streak: int = 0
    #: Age level already escalated to this tick-driven rung (0 = none,
    #: 1 = suspect, 2 = quarantine, 3 = evict) — one level per tick.
    rung: int = 0


class Supervisor(Controller):
    """Watches every app's heartbeat stream and drives quarantine.

    Attach it after the runtime managers; it is a pure observer until an
    app actually fails, so a supervised healthy run is bit-identical to
    an unsupervised one.
    """

    def __init__(
        self,
        config: Optional[SupervisorConfig] = None,
        registry: Optional[HeartbeatRegistry] = None,
    ):
        self.config = config or SupervisorConfig()
        self.registry = registry
        self.ledger = QuarantineLedger()
        self._watch: Dict[str, _WatchEntry] = {}
        #: Eviction count (cheap invariant hook for identity tests).
        self.evictions = 0
        self.checkpoint_store: Optional[Any] = None

    # -- wiring ------------------------------------------------------------

    def attach(self, sim: "Simulation") -> None:
        sim.bus.subscribe(TickStart, lambda event: self._on_tick(sim, event))
        sim.bus.subscribe(
            HeartbeatEmitted,
            lambda event: self._on_beat(sim, event.app, event.heartbeat),
        )
        sim.bus.subscribe(
            AppFinished, lambda event: self._on_finished(sim, event)
        )

    def on_start(self, sim: "Simulation") -> None:
        now = sim.clock.now_s
        for app in sim.apps:
            self._watch[app.name] = _WatchEntry(
                app=app,
                deadline_s=self.config.deadline_s(app.target.min_rate),
                started_at=now,
            )
            self.ledger.ensure(app.name)
            if self.registry is not None and app.name not in self.registry:
                self.registry.register(app.name, app.target)

    # -- deadline watching -------------------------------------------------

    def _on_tick(self, sim: "Simulation", event: TickStart) -> None:
        now = event.time_s
        for name, entry in self._watch.items():
            status = self.ledger.record(name).status
            if status in (AppHealth.EVICTED, AppHealth.DONE):
                continue
            age = entry.app.monitor.last_beat_age_s(now)
            if age is None:
                # No beat yet: serial input phases are silent by design,
                # so the pre-first-beat deadline is stretched.
                age = now - entry.started_at
                deadline = entry.deadline_s * self.config.startup_grace_factor
            else:
                deadline = entry.deadline_s
            rung = self._age_rung(age, deadline)
            if rung > entry.rung:
                # One level per tick, so a long scheduler stall cannot
                # jump straight to eviction without publishing the
                # intermediate suspicion/quarantine events.
                rung = entry.rung + 1
            entry.rung = rung
            if rung >= 1 and status is AppHealth.HEALTHY:
                self._suspect(
                    sim, entry, FailureKind.HUNG, now,
                    f"no heartbeat for {age:.3f}s (deadline {deadline:.3f}s)",
                )
            elif rung >= 2 and status is AppHealth.SUSPECT:
                self._quarantine(
                    sim, entry, FailureKind.HUNG, now,
                    f"still silent after {age:.3f}s",
                )
            elif rung >= 3 and status is AppHealth.QUARANTINED:
                self._evict(
                    sim, entry, FailureKind.HUNG, now,
                    f"hung: silent for {age:.3f}s "
                    f"(evict threshold "
                    f"{deadline * self.config.evict_factor:.3f}s)",
                )

    def _age_rung(self, age: float, deadline: float) -> int:
        if age > deadline * self.config.evict_factor:
            return 3
        if age > deadline * self.config.quarantine_factor:
            return 2
        if age > deadline:
            return 1
        return 0

    # -- heartbeat side: recovery + runaway detection ----------------------

    def _on_beat(
        self, sim: "Simulation", app: "SimApp", heartbeat: Heartbeat
    ) -> None:
        entry = self._watch.get(app.name)
        if entry is None:
            return
        record = self.ledger.record(app.name)
        if record.status in (AppHealth.EVICTED, AppHealth.DONE):
            return
        now = heartbeat.time_s
        if record.status is not AppHealth.HEALTHY and (
            record.failure is FailureKind.HUNG
        ):
            # A beat arrived after all: transient stall, not a hang.
            entry.rung = 0
            self.ledger.transition(
                app.name, now, AppHealth.HEALTHY,
                detail="heartbeat resumed",
            )
        elif record.status is AppHealth.HEALTHY:
            entry.rung = 0

        rate = app.monitor.current_rate()
        limit = self.config.runaway_margin * app.target.max_rate
        if rate is not None and rate > limit:
            entry.runaway_streak += 1
            self._check_runaway(sim, entry, record, rate, now)
        else:
            if entry.runaway_streak and record.status in (
                AppHealth.SUSPECT,
                AppHealth.QUARANTINED,
            ) and record.failure is FailureKind.RUNAWAY:
                self.ledger.transition(
                    app.name, now, AppHealth.HEALTHY,
                    detail="rate back under the runaway limit",
                )
            entry.runaway_streak = 0

    def _check_runaway(
        self,
        sim: "Simulation",
        entry: _WatchEntry,
        record: QuarantineRecord,
        rate: float,
        now: float,
    ) -> None:
        if self.config.require_starving_sibling and not self._sibling_starving(
            entry.app.name, now
        ):
            return
        beats = self.config.runaway_beats
        detail = (
            f"rate {rate:.1f}/s > "
            f"{self.config.runaway_margin:.2f}×t.max "
            f"for {entry.runaway_streak} beats"
        )
        if (
            entry.runaway_streak >= 3 * beats
            and record.status is AppHealth.QUARANTINED
        ):
            self._evict(sim, entry, FailureKind.RUNAWAY, now, detail)
        elif (
            entry.runaway_streak >= 2 * beats
            and record.status is AppHealth.SUSPECT
        ):
            self._quarantine(sim, entry, FailureKind.RUNAWAY, now, detail)
        elif (
            entry.runaway_streak >= beats
            and record.status is AppHealth.HEALTHY
        ):
            self._suspect(sim, entry, FailureKind.RUNAWAY, now, detail)

    def _sibling_starving(self, name: str, now: float) -> bool:
        for other_name, other in self._watch.items():
            if other_name == name:
                continue
            if self.ledger.record(other_name).status in (
                AppHealth.EVICTED,
                AppHealth.DONE,
            ):
                continue
            rate = other.app.monitor.current_rate()
            if rate is not None and rate < other.app.target.min_rate:
                return True
            age = other.app.monitor.last_beat_age_s(now)
            if age is not None and age > other.deadline_s:
                return True
        return False

    # -- exit classification -----------------------------------------------

    def _on_finished(self, sim: "Simulation", event: AppFinished) -> None:
        entry = self._watch.get(event.app_name)
        if entry is None:
            return
        record = self.ledger.record(event.app_name)
        if record.status in (AppHealth.EVICTED, AppHealth.DONE):
            return
        if entry.app.is_done():
            self.ledger.transition(
                event.app_name, event.time_s, AppHealth.DONE,
                detail="completed all work units",
            )
            return
        # AppFinished with work units left = abrupt exit: classify as a
        # crash and run the whole escalation immediately — there is no
        # ambiguity a grace period could resolve.
        detail = "exited with work units left"
        self._suspect(sim, entry, FailureKind.CRASHED, event.time_s, detail)
        self._quarantine(sim, entry, FailureKind.CRASHED, event.time_s, detail)
        self._evict(sim, entry, FailureKind.CRASHED, event.time_s, detail)

    # -- escalation actions ------------------------------------------------

    def _suspect(
        self,
        sim: "Simulation",
        entry: _WatchEntry,
        kind: FailureKind,
        now: float,
        detail: str,
    ) -> None:
        self.ledger.transition(
            entry.app.name, now, AppHealth.SUSPECT, kind, detail
        )
        sim.bus.publish(
            AppSuspected(
                app_name=entry.app.name,
                kind=kind.value,
                time_s=now,
                detail=detail,
            )
        )

    def _quarantine(
        self,
        sim: "Simulation",
        entry: _WatchEntry,
        kind: FailureKind,
        now: float,
        detail: str,
    ) -> None:
        self.ledger.transition(
            entry.app.name, now, AppHealth.QUARANTINED, kind, detail
        )
        sim.bus.publish(
            AppQuarantined(
                app_name=entry.app.name,
                kind=kind.value,
                time_s=now,
                detail=detail,
            )
        )

    def _evict(
        self,
        sim: "Simulation",
        entry: _WatchEntry,
        kind: FailureKind,
        now: float,
        detail: str,
    ) -> None:
        name = entry.app.name
        self.ledger.transition(name, now, AppHealth.EVICTED, kind, detail)
        self.evictions += 1
        sim.bus.publish(
            AppEvicted(app_name=name, kind=kind.value, time_s=now,
                       detail=detail)
        )
        # Reclaim resources through the same façade the managers use, so
        # actuation fault modelling applies here too.
        sim.actuator.set_cpuset(entry.app, None)
        sim.actuator.clear_affinities(entry.app)
        sim.retire_app(name)
        if self.registry is not None and name in self.registry:
            self.registry.unregister(name)
        for controller in sim.controllers:
            unregister = getattr(controller, "unregister_app", None)
            if unregister is not None:
                unregister(sim, name)

    # -- checkpoint hooks --------------------------------------------------

    @property
    def checkpoint_id(self) -> str:
        return "supervisor"

    def checkpoint(self, now_s: float) -> Dict[str, Any]:
        """Snapshot the ledger (the supervisor's durable knowledge)."""
        from repro.experiments.serialize import checkpoint_payload

        return checkpoint_payload(
            self.checkpoint_id,
            now_s,
            {
                "controller": "Supervisor",
                "ledger": self.ledger.as_dict(),
                "evictions": self.evictions,
            },
        )

    def restore_checkpoint(
        self, sim: "Simulation", payload: Dict[str, Any]
    ) -> None:
        from repro.experiments.serialize import validate_checkpoint

        body = validate_checkpoint(payload)
        try:
            ledger = QuarantineLedger.from_dict(body["ledger"])
            evictions = int(body["evictions"])
        except (KeyError, ValueError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed supervisor checkpoint: {exc}"
            ) from None
        self.ledger = ledger
        self.evictions = evictions
        for name, entry in self._watch.items():
            self.ledger.ensure(name)
            if self.ledger.record(name).status not in (
                AppHealth.EVICTED,
                AppHealth.DONE,
            ):
                entry.rung = 0
                entry.runaway_streak = 0

    def simulate_restart(self, sim: "Simulation") -> None:
        """Crash+restart: rebuild the watch, restore the ledger if warm."""
        now = sim.clock.now_s
        self.ledger = QuarantineLedger()
        self.evictions = 0
        self._watch.clear()
        for app in sim.apps:
            self._watch[app.name] = _WatchEntry(
                app=app,
                deadline_s=self.config.deadline_s(app.target.min_rate),
                started_at=now,
            )
            record = self.ledger.ensure(app.name)
            if app.halted:
                # The engine remembers the halt even if we lost the
                # ledger: never resurrect a halted app.
                record.status = AppHealth.EVICTED
            elif app.is_done():
                record.status = AppHealth.DONE
        store = self.checkpoint_store
        snapshot = (
            store.get(self.checkpoint_id) if store is not None else None
        )
        warm = False
        if snapshot is not None:
            try:
                self.restore_checkpoint(sim, snapshot)
                warm = True
            except ConfigurationError:
                snapshot = None
        sim.bus.publish(
            ControllerRestored(
                controller=self.checkpoint_id,
                time_s=now,
                warm=warm,
                checkpoint_time_s=(
                    snapshot["time_s"] if snapshot is not None else None
                ),
            )
        )
