"""Application lifecycle supervision and controller checkpoint/restore.

PR 2 hardened the runtime against lying *signals*; this package hardens
it against lying *applications* and dying *controllers*:

* :mod:`repro.supervision.supervisor` — a bus-attached Supervisor that
  watches every registered app against per-app heartbeat deadlines,
  classifies failures (crashed / hung / runaway), and drives the
  quarantine state machine (healthy → suspect → quarantined →
  recovered/evicted), reclaiming an evicted app's cores for survivors;
* :mod:`repro.supervision.checkpoint` — versioned, schema-checked
  snapshots of controller knowledge written on a bus-driven cadence, so
  a controller crash+restart resumes warm instead of re-converging from
  cold.

With supervision attached but no lifecycle faults firing, both pieces
are pure observers: the stack stays bit-identical to an unsupervised
build.

The same state machine recurs one level up:
:class:`repro.fleet.supervisor.FleetSupervisor` applies it at *node*
granularity (crash → DOWN → restart probation, stall → DEGRADED →
QUARANTINED → EVICTED) to drive the serving fleet's failover routing.
"""

from repro.supervision.checkpoint import CheckpointStore, Checkpointer
from repro.supervision.supervisor import (
    AppHealth,
    FailureKind,
    QuarantineLedger,
    QuarantineRecord,
    Supervisor,
    SupervisorConfig,
)

__all__ = [
    "AppHealth",
    "CheckpointStore",
    "Checkpointer",
    "FailureKind",
    "QuarantineLedger",
    "QuarantineRecord",
    "Supervisor",
    "SupervisorConfig",
]
