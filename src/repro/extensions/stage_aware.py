"""Stage-aware thread scheduling (paper §3.1.4, second item).

The interleaving scheduler spreads threads across clusters by thread ID,
which only balances pipeline stages if every stage has the same thread
count.  With *thread hierarchy information* — which stage each thread
serves — the scheduler can split **each stage** between the clusters in
the global ``T_B : T_L`` proportion, so every stage gets its fair share
of big-core time regardless of the stage sizes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.assignment import ThreadAssignment
from repro.errors import SchedulingError
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadModel


def stage_aware_split(stage_of_thread: Sequence[int], t_big: int) -> List[bool]:
    """Per-thread big-cluster flags balancing ``t_big`` across stages.

    Big slots are apportioned to stages by largest remainder of
    ``k_s · t_big / T`` (``k_s`` = threads in stage ``s``), so the total
    equals ``t_big`` exactly and each stage's share is within one thread
    of proportional.
    """
    n_threads = len(stage_of_thread)
    if n_threads == 0:
        raise SchedulingError("no threads to split")
    if not 0 <= t_big <= n_threads:
        raise SchedulingError(f"t_big={t_big} out of range for {n_threads}")
    stages = sorted(set(stage_of_thread))
    counts = {s: stage_of_thread.count(s) for s in stages}

    quotas = {s: counts[s] * t_big / n_threads for s in stages}
    base = {s: int(quotas[s]) for s in stages}
    leftover = t_big - sum(base.values())
    by_remainder = sorted(
        stages, key=lambda s: (quotas[s] - base[s], -counts[s]), reverse=True
    )
    for s in by_remainder[:leftover]:
        base[s] += 1

    flags = [False] * n_threads
    remaining = dict(base)
    for index, stage in enumerate(stage_of_thread):
        if remaining[stage] > 0:
            flags[index] = True
            remaining[stage] -= 1
    return flags


def apply_stage_aware_assignment(
    app: SimApp,
    model: WorkloadModel,
    assignment: ThreadAssignment,
    big_core_ids: Sequence[int],
    little_core_ids: Sequence[int],
) -> None:
    """Pin the app's threads with the stage-aware split."""
    stage_of_thread = [model.thread_stage(i) for i in range(model.n_threads)]
    flags = stage_aware_split(stage_of_thread, assignment.t_big)
    if assignment.t_big > 0 and not big_core_ids:
        raise SchedulingError("big threads assigned but no big cores")
    if assignment.t_little > 0 and not little_core_ids:
        raise SchedulingError("little threads assigned but no little cores")
    big_mask = frozenset(big_core_ids)
    little_mask = frozenset(little_core_ids)
    for thread, on_big in zip(app.threads, flags):
        thread.set_affinity(big_mask if on_big else little_mask)
