"""Kalman-filter workload prediction (paper §3.1.4, first item).

HARS's stock workload model assumes the next heartbeat period carries the
same work as the last one.  The paper suggests a Kalman filter (as in
Hoffmann et al.'s PTRADE/SEEC line of work) to predict the uncertain
workload more precisely.  This module provides a scalar Kalman filter
over the observed heartbeat rate and a :class:`RatePredictor` the
adaptive manager consults instead of the raw windowed rate — smoothing
measurement noise (noisy per-unit work) while still tracking phase
changes through the process-noise term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass
class ScalarKalmanFilter:
    """One-dimensional Kalman filter with a random-walk process model.

    State: the true heartbeat rate.  ``process_variance`` encodes how
    fast the workload may drift per observation; ``measurement_variance``
    the noise of one windowed rate measurement.
    """

    process_variance: float
    measurement_variance: float
    estimate: Optional[float] = None
    error_variance: float = 1.0

    def __post_init__(self) -> None:
        if self.process_variance <= 0 or self.measurement_variance <= 0:
            raise ConfigurationError("Kalman variances must be positive")
        if self.error_variance <= 0:
            raise ConfigurationError("error variance must be positive")

    def update(self, measurement: float) -> float:
        """Fuse one measurement and return the new estimate."""
        if measurement < 0:
            raise ConfigurationError("rate measurements cannot be negative")
        if self.estimate is None:
            self.estimate = measurement
            self.error_variance = self.measurement_variance
            return self.estimate
        # Predict: random walk — the estimate persists, uncertainty grows.
        predicted_variance = self.error_variance + self.process_variance
        # Update.
        gain = predicted_variance / (
            predicted_variance + self.measurement_variance
        )
        self.estimate = self.estimate + gain * (measurement - self.estimate)
        self.error_variance = (1.0 - gain) * predicted_variance
        return self.estimate

    @property
    def gain(self) -> float:
        """Steady-state-ish gain (diagnostic)."""
        predicted = self.error_variance + self.process_variance
        return predicted / (predicted + self.measurement_variance)


class RatePredictor:
    """Kalman-smoothed view of an application's heartbeat rate.

    ``relative_process_noise`` and ``relative_measurement_noise`` are
    standard deviations as fractions of the current rate, so the filter
    adapts its scale to the application automatically.
    """

    def __init__(
        self,
        relative_process_noise: float = 0.05,
        relative_measurement_noise: float = 0.15,
    ):
        if relative_process_noise <= 0 or relative_measurement_noise <= 0:
            raise ConfigurationError("noise fractions must be positive")
        self.relative_process_noise = relative_process_noise
        self.relative_measurement_noise = relative_measurement_noise
        self._filter: Optional[ScalarKalmanFilter] = None

    def observe(self, rate: float) -> float:
        """Feed one windowed rate; returns the smoothed rate."""
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        if self._filter is None:
            self._filter = ScalarKalmanFilter(
                process_variance=(rate * self.relative_process_noise) ** 2,
                measurement_variance=(
                    rate * self.relative_measurement_noise
                ) ** 2,
            )
        return self._filter.update(rate)

    def reset(self) -> None:
        """Forget history — called after a system-state change, where the
        old rate estimate no longer applies."""
        self._filter = None

    @property
    def estimate(self) -> Optional[float]:
        return self._filter.estimate if self._filter else None
