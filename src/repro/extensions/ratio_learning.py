"""Online big:little performance-ratio learning (paper §5.1.2 future work).

HARS assumes a fixed r0 = 3/2 per-core ratio, which the paper shows is
wrong for blackscholes (measured 1.0) and leads HARS to suboptimal
states; "in our future work, we plan for HARS to update the performance
ratio in real time".  This module implements that update.

The learner collects ``(system state, applied thread split, settled
heartbeat rate)`` observations.  Crucially the capacity model is
evaluated **with the split that was actually applied** — the split HARS
chose under its (possibly wrong) current ratio — not the split a
candidate ratio would have chosen, so the fit measures how well a
candidate ratio explains the observed rates rather than an idealized
placement.  For a candidate ``r`` the model predicts
``rate ≈ k · capacity_r(state, split)`` with an unknown per-application
work scale ``k``; the best scale has the closed form
``k(r) = Σ cap·rate / Σ cap²``, so a 1-D grid search over ``r`` with a
weak prior toward r0 minimizes the squared prediction error.  States
that use only the little cluster carry no information about ``r`` but
anchor ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.assignment import ThreadAssignment, cluster_times
from repro.core.perf_estimator import DEFAULT_R0, PerformanceEstimator
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.platform.core_types import BASELINE_FREQ_MHZ

#: Candidate ratios the grid search covers.
DEFAULT_GRID = tuple(round(0.8 + 0.05 * i, 2) for i in range(45))  # 0.8..3.0


@dataclass(frozen=True)
class RatioObservation:
    """One settled operating point with the split HARS actually applied."""

    state: SystemState
    assignment: ThreadAssignment
    rate: float
    n_threads: int

    @property
    def informative(self) -> bool:
        """Whether the capacity at this point depends on the ratio."""
        return self.assignment.t_big > 0

    def capacity(self, ratio: float, f0_mhz: int = BASELINE_FREQ_MHZ) -> float:
        """Modelled capacity at a candidate ratio, given the real split."""
        s_big = ratio * self.state.f_big_mhz / f0_mhz
        s_little = self.state.f_little_mhz / f0_mhz
        _, _, t_f = cluster_times(
            self.assignment,
            unit_work=1.0,
            n_threads=self.n_threads,
            c_big=max(self.state.c_big, self.assignment.used_big),
            c_little=max(self.state.c_little, self.assignment.used_little),
            s_big=s_big,
            s_little=s_little,
        )
        return 1.0 / t_f


class OnlineRatioLearner:
    """Grid-search maximum-a-posteriori estimate of the true ratio."""

    def __init__(
        self,
        r0: float = DEFAULT_R0,
        grid: Tuple[float, ...] = DEFAULT_GRID,
        window: int = 12,
        min_informative: int = 1,
        prior_strength: float = 0.01,
    ):
        if not grid:
            raise ConfigurationError("empty ratio grid")
        if window < 2:
            raise ConfigurationError("window must hold at least 2 points")
        if min_informative < 1:
            raise ConfigurationError("min_informative must be >= 1")
        if prior_strength < 0:
            raise ConfigurationError("prior_strength must be >= 0")
        self.r0 = r0
        self.grid = grid
        self.window = window
        self.min_informative = min_informative
        self.prior_strength = prior_strength
        self._observations: List[RatioObservation] = []
        self._estimate = r0

    def observe(
        self,
        state: SystemState,
        rate: float,
        n_threads: int,
        assignment: Optional[ThreadAssignment] = None,
    ) -> None:
        """Record a settled observation and refresh the estimate.

        ``assignment`` is the thread split HARS applied at ``state``; if
        omitted it is reconstructed with the learner's *current* ratio
        estimate (which is what the manager would have used).
        """
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        if assignment is None:
            assignment = (
                PerformanceEstimator(r0=self._estimate)
                .estimate(state, n_threads)
                .assignment
            )
        self._observations.append(
            RatioObservation(
                state=state,
                assignment=assignment,
                rate=rate,
                n_threads=n_threads,
            )
        )
        if len(self._observations) > self.window:
            # Informative (big-cluster) observations are rare once HARS
            # settles on a little-only state — evict the oldest
            # *uninformative* point first so the ratio evidence survives.
            for index, observation in enumerate(self._observations):
                if not observation.informative:
                    self._observations.pop(index)
                    break
            else:
                self._observations.pop(0)
        self._refit()

    @property
    def ratio(self) -> float:
        """Current best ratio estimate (r0 until data suffices)."""
        return self._estimate

    def estimator(self) -> PerformanceEstimator:
        """A performance estimator parameterized by the learned ratio."""
        return PerformanceEstimator(r0=self._estimate)

    def reset(self) -> None:
        """Forget all observations and fall back to the r0 prior.

        What a cold-restarted controller loses: the learned ratio is
        volatile knowledge, re-earned only after fresh settled points.
        """
        self._observations.clear()
        self._estimate = self.r0

    def seed_estimate(self, ratio: float) -> None:
        """Adopt a previously-learned ratio (checkpoint warm restore).

        The observation window is *not* restored — a restarted learner
        continues refining from the checkpointed estimate as new settled
        points arrive.
        """
        if ratio <= 0:
            raise ConfigurationError("ratio must be positive")
        self._estimate = ratio

    # -- fitting ----------------------------------------------------------

    def _informative(self) -> List[RatioObservation]:
        """Observations whose capacity actually depends on r."""
        return [o for o in self._observations if o.informative]

    def _refit(self) -> None:
        informative = self._informative()
        if (
            len(informative) < self.min_informative
            or len(self._observations) < 2
        ):
            return
        rates = np.array([o.rate for o in self._observations])
        # A weak quadratic prior toward r0 keeps the estimate from
        # running to the grid edge when only one informative point (and
        # hence pure model mismatch) drives the fit.
        prior_scale = self.prior_strength * float((rates**2).mean())
        best_r = self._estimate
        best_error = float("inf")
        for candidate in self.grid:
            capacities = np.array(
                [o.capacity(candidate) for o in self._observations]
            )
            denom = float(capacities @ capacities)
            if denom <= 0:
                continue
            scale = float(capacities @ rates) / denom
            error = float(((rates - scale * capacities) ** 2).sum())
            error += prior_scale * (candidate - self.r0) ** 2
            if error < best_error - 1e-12:
                best_error = error
                best_r = candidate
        self._estimate = best_r

    def __len__(self) -> int:
        return len(self._observations)
