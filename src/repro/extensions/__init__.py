"""Extensions: the paper's discussion-section (§3.1.4) upgrades to HARS."""

from repro.extensions.adaptive_manager import AdaptiveHarsManager
from repro.extensions.escape import StuckDetector, full_space
from repro.extensions.kalman import RatePredictor, ScalarKalmanFilter
from repro.extensions.ratio_learning import (
    OnlineRatioLearner,
    RatioObservation,
)
from repro.extensions.stage_aware import (
    apply_stage_aware_assignment,
    stage_aware_split,
)

__all__ = [
    "AdaptiveHarsManager",
    "OnlineRatioLearner",
    "RatePredictor",
    "RatioObservation",
    "ScalarKalmanFilter",
    "StuckDetector",
    "apply_stage_aware_assignment",
    "full_space",
    "stage_aware_split",
]
