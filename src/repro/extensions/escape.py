"""Local-optimum escape for the HARS search (paper §3.1.4, fourth item).

The incremental search can get stuck at a suboptimal point it cannot
leave within distance ``d``.  The paper suggests Tabu-style methods; this
module implements the simple, deterministic variant of that idea: a
*stuck detector* that counts consecutive adaptation periods in which the
application stayed outside its target window without the state changing,
and an *escape space* — a one-shot full-range search (``m = n = span``,
``d`` covering the whole space) used when the detector fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.policy import SearchSpace
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.platform.spec import PlatformSpec


def full_space(spec: PlatformSpec) -> SearchSpace:
    """A search space spanning the entire state space of ``spec``."""
    span = max(
        spec.big.n_cores,
        spec.little.n_cores,
        len(spec.big.frequencies_mhz) - 1,
        len(spec.little.frequencies_mhz) - 1,
    )
    max_distance = (
        spec.big.n_cores
        + spec.little.n_cores
        + len(spec.big.frequencies_mhz)
        + len(spec.little.frequencies_mhz)
    )
    return SearchSpace(m=span, n=span, d=max_distance)


@dataclass
class StuckDetector:
    """Counts fruitless out-of-window adaptation periods.

    ``threshold`` consecutive periods that (a) found the application
    outside its window and (b) did not change the system state trigger an
    escape.  Any state change or in-window period resets the counter.
    """

    threshold: int = 3
    _streak: int = 0
    _last_state: Optional[SystemState] = None

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigurationError("threshold must be >= 1")

    def note_in_window(self, state: SystemState) -> None:
        """The application is satisfied: no escape pressure."""
        self._streak = 0
        self._last_state = state

    def note_out_of_window(self, state: SystemState) -> bool:
        """An out-of-window adaptation period finished at ``state``.

        Returns ``True`` when the stuck threshold is reached (the caller
        should escalate to the escape space); the counter resets so the
        escape fires once per episode.
        """
        if self._last_state is not None and state == self._last_state:
            self._streak += 1
        else:
            self._streak = 1
        self._last_state = state
        if self._streak >= self.threshold:
            self._streak = 0
            return True
        return False

    @property
    def streak(self) -> int:
        return self._streak
