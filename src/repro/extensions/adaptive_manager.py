"""AdaptiveHarsManager: HARS plus the paper's discussion-section upgrades.

Combines, each individually optional:

* **Kalman workload prediction** (§3.1.4 #1) — adaptation decisions use a
  Kalman-smoothed rate instead of the raw windowed rate; the filter
  resets after every state change (the old rate no longer applies).
* **Stage-aware scheduling** (§3.1.4 #2) — thread placement splits each
  pipeline stage across the clusters in the T_B:T_L proportion.
* **Online ratio learning** (§5.1.2 future work) — settled (state, rate)
  observations refit the big:little ratio, replacing the fixed r0 = 1.5
  and fixing the blackscholes misprediction.
* **Local-optimum escape** (§3.1.4 #4) — repeated fruitless adaptation
  periods trigger a one-shot full-space search.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.manager import (
    DEFAULT_ADAPT_EVERY,
    DEFAULT_STATE_EVAL_COST_S,
    HarsManager,
)
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HarsPolicy
from repro.core.power_estimator import PowerEstimator
from repro.core.search import get_next_sys_state
from repro.core.state import SystemState
from repro.extensions.escape import StuckDetector, full_space
from repro.extensions.kalman import RatePredictor
from repro.extensions.ratio_learning import OnlineRatioLearner
from repro.extensions.stage_aware import apply_stage_aware_assignment
from repro.heartbeats.record import Heartbeat
from repro.platform.cluster import BIG, LITTLE
from repro.platform.topology import first_n

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp


class AdaptiveHarsManager(HarsManager):
    """HARS with prediction, ratio learning, escape, and stage awareness."""

    def __init__(
        self,
        app_name: str,
        policy: HarsPolicy,
        perf_estimator: PerformanceEstimator,
        power_estimator: PowerEstimator,
        adapt_every: int = DEFAULT_ADAPT_EVERY,
        state_eval_cost_s: float = DEFAULT_STATE_EVAL_COST_S,
        initial_state: Optional[SystemState] = None,
        predictor: Optional[RatePredictor] = None,
        ratio_learner: Optional[OnlineRatioLearner] = None,
        stuck_detector: Optional[StuckDetector] = None,
        stage_aware: bool = False,
    ):
        super().__init__(
            app_name=app_name,
            policy=policy,
            perf_estimator=perf_estimator,
            power_estimator=power_estimator,
            adapt_every=adapt_every,
            state_eval_cost_s=state_eval_cost_s,
            initial_state=initial_state,
        )
        self.predictor = predictor
        self.ratio_learner = ratio_learner
        self.stuck_detector = stuck_detector
        self.stage_aware = stage_aware
        self.escapes = 0
        self._settled_periods = 0

    # -- adaptation loop --------------------------------------------------------

    def on_heartbeat(
        self, sim: "Simulation", app: "SimApp", heartbeat: Heartbeat
    ) -> None:
        if app.name != self.app_name:
            return
        self.heartbeats_polled += 1
        if heartbeat.index == 0 or heartbeat.index % self.adapt_every != 0:
            return
        raw_rate = app.monitor.current_rate()
        if raw_rate is None or self._state is None:
            return
        rate = (
            self.predictor.observe(raw_rate) if self.predictor else raw_rate
        )

        # Ratio learning: state changes land on adaptation-period
        # boundaries and the rate window spans one period, so the first
        # check after a change already measures the new state cleanly.
        self._settled_periods += 1
        if self.ratio_learner is not None and self._settled_periods >= 1:
            self.ratio_learner.observe(
                self._state, rate, app.n_threads, self._assignment
            )
            self.perf_estimator = self.ratio_learner.estimator()

        target = app.target
        if not target.out_of_window(rate):
            if self.stuck_detector is not None:
                self.stuck_detector.note_in_window(self._state)
            return

        space = self.policy.space_for(target.classify(rate))
        if self.stuck_detector is not None and self.stuck_detector.note_out_of_window(
            self._state
        ):
            space = full_space(sim.spec)
            self.escapes += 1
        result = get_next_sys_state(
            spec=sim.spec,
            current=self._state,
            observed_rate=rate,
            n_threads=app.n_threads,
            target=target,
            space=space,
            perf_estimator=self.perf_estimator,
            power_estimator=self.power_estimator,
        )
        self.states_explored_total += result.states_explored
        if result.state != self._state:
            self.adaptations += 1
            self._apply(sim, result.state)

    def _apply(self, sim: "Simulation", state: SystemState) -> None:
        if not self.stage_aware:
            super()._apply(sim, state)
        else:
            app = sim.app(self.app_name)
            sim.dvfs.set_frequency(BIG, state.f_big_mhz)
            sim.dvfs.set_frequency(LITTLE, state.f_little_mhz)
            estimate = self.perf_estimator.estimate(state, app.n_threads)
            assignment = estimate.assignment
            apply_stage_aware_assignment(
                app,
                app.model,
                assignment,
                first_n(sim.spec, BIG, assignment.used_big),
                first_n(sim.spec, LITTLE, assignment.used_little),
            )
            self._state = state
            self._used = (assignment.used_big, assignment.used_little)
            self._assignment = assignment
        # A new state invalidates the predictor's rate estimate and the
        # settled-observation clock.
        if self.predictor is not None:
            self.predictor.reset()
        self._settled_periods = 0
