"""AdaptiveHarsManager: HARS plus the paper's discussion-section upgrades.

Each upgrade is a plugin of one MAPE-K stage (see
:mod:`repro.kernel.mape`), individually optional:

* **Kalman workload prediction** (§3.1.4 #1) — a Monitor-stage rate
  filter: adaptation decisions use a Kalman-smoothed rate instead of
  the raw windowed rate; the filter resets after every state change
  (the old rate no longer applies).
* **Stage-aware scheduling** (§3.1.4 #2) — an Execute-stage placement:
  each pipeline stage splits across the clusters in the T_B:T_L
  proportion.
* **Online ratio learning** (§5.1.2 future work) — a Knowledge
  updater: settled (state, rate) observations refit the big:little
  ratio, replacing the fixed r0 = 1.5 and fixing the blackscholes
  misprediction.
* **Local-optimum escape** (§3.1.4 #4) — a Plan-stage escape hook:
  repeated fruitless adaptation periods trigger a one-shot full-space
  search.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.manager import (
    DEFAULT_ADAPT_EVERY,
    DEFAULT_STATE_EVAL_COST_S,
    HarsManager,
)
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HarsPolicy
from repro.core.power_estimator import PowerEstimator
from repro.core.state import SystemState
from repro.extensions.escape import StuckDetector, full_space
from repro.extensions.kalman import RatePredictor
from repro.extensions.ratio_learning import OnlineRatioLearner
from repro.kernel.mape import Knowledge, Monitor, Observation, SearchPlanner
from repro.platform.cluster import BIG, LITTLE
from repro.platform.topology import first_n

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp


class _SettledRatioUpdater:
    """Knowledge updater: the settled-observation clock + ratio refit.

    State changes land on adaptation-period boundaries and the rate
    window spans one period, so the first check after a change already
    measures the new state cleanly.
    """

    def __init__(self, manager: "AdaptiveHarsManager"):
        self.manager = manager

    def update(
        self,
        knowledge: Knowledge,
        app: "SimApp",
        current: SystemState,
        observation: Observation,
    ) -> None:
        manager = self.manager
        manager._settled_periods += 1
        if manager.ratio_learner is not None and manager._settled_periods >= 1:
            manager.ratio_learner.observe(
                current, observation.rate, app.n_threads, manager._assignment
            )
            knowledge.estimation.set_perf_estimator(
                manager.ratio_learner.estimator()
            )


class AdaptiveHarsManager(HarsManager):
    """HARS with prediction, ratio learning, escape, and stage awareness."""

    def __init__(
        self,
        app_name: str,
        policy: HarsPolicy,
        perf_estimator: PerformanceEstimator,
        power_estimator: PowerEstimator,
        adapt_every: int = DEFAULT_ADAPT_EVERY,
        state_eval_cost_s: float = DEFAULT_STATE_EVAL_COST_S,
        initial_state: Optional[SystemState] = None,
        predictor: Optional[RatePredictor] = None,
        ratio_learner: Optional[OnlineRatioLearner] = None,
        stuck_detector: Optional[StuckDetector] = None,
        stage_aware: bool = False,
        cache_estimates: bool = True,
    ):
        # Plugins must exist before super().__init__ wires the MAPE
        # stages through the _build_* hooks below.
        self.predictor = predictor
        self.ratio_learner = ratio_learner
        self.stuck_detector = stuck_detector
        self.stage_aware = stage_aware
        self._settled_periods = 0
        super().__init__(
            app_name=app_name,
            policy=policy,
            perf_estimator=perf_estimator,
            power_estimator=power_estimator,
            adapt_every=adapt_every,
            state_eval_cost_s=state_eval_cost_s,
            initial_state=initial_state,
            cache_estimates=cache_estimates,
        )

    # -- MAPE-K wiring ---------------------------------------------------------

    def _build_monitor(self, adapt_every: int) -> Monitor:
        return Monitor(adapt_every, rate_filter=self.predictor)

    def _build_planner(self) -> SearchPlanner:
        return SearchPlanner(
            self.policy,
            escape=self.stuck_detector,
            escape_space=full_space if self.stuck_detector is not None else None,
        )

    def _build_updaters(self) -> tuple:
        return (_SettledRatioUpdater(self),)

    @property
    def escapes(self) -> int:
        """Full-space escape searches triggered so far."""
        return self.mape.planner.escapes

    # -- state application -------------------------------------------------------

    def _apply(self, sim: "Simulation", state: SystemState) -> None:
        if not self.stage_aware:
            super()._apply(sim, state)
        else:
            app = sim.app(self.app_name)
            actuator = sim.actuator
            actuator.set_frequency(BIG, state.f_big_mhz)
            actuator.set_frequency(LITTLE, state.f_little_mhz)
            estimate = self.perf_estimator.estimate(state, app.n_threads)
            assignment = estimate.assignment
            actuator.place_stage_aware(
                app,
                assignment,
                first_n(sim.spec, BIG, assignment.used_big),
                first_n(sim.spec, LITTLE, assignment.used_little),
            )
            self.knowledge.set_state(app.name, state)
            self._used = (assignment.used_big, assignment.used_little)
            self._assignment = assignment
            actuator.announce(
                app.name, state, assignment.used_big, assignment.used_little
            )
        # A new state invalidates the predictor's rate estimate and the
        # settled-observation clock.
        if self.predictor is not None:
            self.predictor.reset()
        self._settled_periods = 0
