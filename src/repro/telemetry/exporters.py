"""Telemetry exporters: JSONL, Prometheus text format, CSV/summary.

All three exporters are pure functions over a registry
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` (and, where
it makes sense, a :class:`~repro.sim.tracing.TraceRecorder`), so they
can run after the simulation without touching it.  The JSONL and
Prometheus formats are *round-trippable*: ``snapshot_from_jsonl``
reconstructs the exact snapshot dict, and ``parse_prometheus`` recovers
the same flat samples ``flatten_snapshot`` produces — the exporter
tests and ``bench_telemetry_overhead`` assert both.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.tracing import TraceRecorder
from repro.telemetry.registry import SNAPSHOT_SCHEMA, flatten_snapshot

# -- JSONL ---------------------------------------------------------------------


def snapshot_to_jsonl(snapshot: Dict[str, Any]) -> str:
    """One JSON record per line: a header, then instruments and series.

    The stream is self-describing (every line carries a ``record``
    discriminator) and ordered exactly like the snapshot, so the reader
    reconstructs a byte-identical snapshot dict.
    """
    lines: List[str] = [
        json.dumps(
            {"record": "header", "schema": snapshot["schema"]},
            sort_keys=True,
        )
    ]
    for entry in snapshot["instruments"]:
        declaration = {
            "record": "instrument",
            "name": entry["name"],
            "kind": entry["kind"],
            "help": entry["help"],
        }
        if "buckets" in entry:
            declaration["buckets"] = entry["buckets"]
        lines.append(json.dumps(declaration, sort_keys=True))
        for row in entry["series"]:
            lines.append(
                json.dumps(
                    {"record": "series", "name": entry["name"], **row},
                    sort_keys=True,
                )
            )
    return "\n".join(lines) + "\n"


def snapshot_from_jsonl(text: str) -> Dict[str, Any]:
    """Inverse of :func:`snapshot_to_jsonl`."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigurationError("empty JSONL telemetry stream")
    header = json.loads(lines[0])
    if header.get("record") != "header":
        raise ConfigurationError("JSONL stream must start with a header")
    if header.get("schema") != SNAPSHOT_SCHEMA:
        raise ConfigurationError(
            f"unsupported telemetry schema {header.get('schema')!r} "
            f"(this build reads version {SNAPSHOT_SCHEMA})"
        )
    instruments: List[Dict[str, Any]] = []
    for line in lines[1:]:
        record = json.loads(line)
        tag = record.pop("record", None)
        if tag == "instrument":
            record["series"] = []
            instruments.append(record)
        elif tag == "series":
            name = record.pop("name", None)
            if not instruments or instruments[-1]["name"] != name:
                raise ConfigurationError(
                    f"series line for {name!r} outside its instrument block"
                )
            instruments[-1]["series"].append(record)
        else:
            raise ConfigurationError(f"unknown JSONL record {tag!r}")
    return {"schema": header["schema"], "instruments": instruments}


def write_jsonl(snapshot: Dict[str, Any], path: str) -> None:
    """Write the JSONL stream to disk."""
    with open(path, "w") as handle:
        handle.write(snapshot_to_jsonl(snapshot))


def read_jsonl(path: str) -> Dict[str, Any]:
    """Read a JSONL stream back into a snapshot dict."""
    with open(path) as handle:
        return snapshot_from_jsonl(handle.read())


# -- Prometheus text format ----------------------------------------------------

#: How instrument kinds map onto Prometheus metric types.  Timers have
#: no native type, so their three derived samples export as gauges.
_PROM_TYPES = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    """HELP-line escaping per the exposition format (``\\`` and ``\\n``).

    Help text is free-form but the format is line-oriented: an unescaped
    newline would split the comment mid-way and leave a half-line the
    parser then tries to read as a sample.
    """
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def snapshot_to_prometheus(
    snapshot: Dict[str, Any],
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Prometheus exposition text for every sample in the snapshot.

    ``extra_labels`` are merged into every sample's label set — the ACP
    daemon uses this to stamp each tenant's metrics with its session id
    so multi-session scrapes stay disjoint.
    """
    lines: List[str] = []
    for entry in snapshot["instruments"]:
        name, kind = entry["name"], entry["kind"]
        if entry["help"]:
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {_PROM_TYPES.get(kind, 'gauge')}")
        for row in entry["series"]:
            labels = dict(row["labels"])
            if extra_labels:
                labels.update(extra_labels)
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(row['value'])}"
                )
            elif kind == "histogram":
                bounds = [*entry["buckets"], float("inf")]
                for bound, count in zip(bounds, row["counts"]):
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    bucket_labels = {**labels, "le": le}
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{_format_value(count)}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(row['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} "
                    f"{_format_value(row['count'])}"
                )
            else:  # timer
                for suffix in ("count", "sum_s", "max_s"):
                    lines.append(
                        f"{name}_{suffix}{_format_labels(labels)} "
                        f"{_format_value(row[suffix])}"
                    )
    return "\n".join(lines) + "\n"


def parse_prometheus(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text back to flat ``{(name, labels): value}``.

    Exactly the representation :func:`~repro.telemetry.registry.flatten_snapshot`
    yields, which is what the round-trip tests compare.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            labels: Dict[str, str] = {}
            for part in _split_labels(label_text):
                key, _, raw = part.partition("=")
                # Remove exactly the two delimiting quotes.  str.strip('"')
                # would also eat an *escaped* quote at the end of the
                # value (serialized ``"a\""``), corrupting round-trips of
                # label values that end in a quote character.
                raw = raw.strip()
                if len(raw) >= 2 and raw[0] == '"' and raw[-1] == '"':
                    raw = raw[1:-1]
                labels[key.strip()] = _unescape_label(raw)
        else:
            name, _, value_text = line.partition(" ")
            labels = {}
        value_text = value_text.strip()
        value = float("inf") if value_text == "+Inf" else float(value_text)
        samples[(name.strip(), tuple(sorted(labels.items())))] = value
    return samples


def _split_labels(label_text: str) -> Iterable[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    part: List[str] = []
    quoted = False
    i = 0
    while i < len(label_text):
        ch = label_text[i]
        if ch == "\\" and quoted:
            part.append(label_text[i : i + 2])
            i += 2
            continue
        if ch == '"':
            quoted = not quoted
        if ch == "," and not quoted:
            if part:
                yield "".join(part)
                part = []
        else:
            part.append(ch)
        i += 1
    if part:
        yield "".join(part)


# -- CSV / summary table -------------------------------------------------------


def snapshot_to_csv(snapshot: Dict[str, Any]) -> str:
    """Flat samples as ``sample,labels,value`` CSV rows."""
    lines = ["sample,labels,value"]
    flat = flatten_snapshot(snapshot)
    for (name, labels) in sorted(flat):
        label_text = ";".join(f"{k}={v}" for k, v in labels)
        lines.append(f"{name},{label_text},{_format_value(flat[(name, labels)])}")
    return "\n".join(lines) + "\n"


def summary_table(snapshot: Dict[str, Any], max_rows: int = 0) -> str:
    """Aligned human-readable table of every scalar sample."""
    # Imported lazily: report lives in the experiments package, whose
    # __init__ pulls in the runner (which imports the telemetry hub).
    from repro.experiments.report import format_table

    flat = flatten_snapshot(snapshot)
    rows: List[List[object]] = []
    for (name, labels) in sorted(flat):
        label_text = " ".join(f"{k}={v}" for k, v in labels) or "-"
        rows.append([name, label_text, float(flat[(name, labels)])])
    if max_rows and len(rows) > max_rows:
        rows = rows[:max_rows]
    if not rows:
        return "(no telemetry recorded)"
    return format_table(
        ["sample", "labels", "value"], rows, float_format="{:.6g}"
    )


def trace_to_csv(trace: TraceRecorder) -> str:
    """Per-app behaviour series as CSV, one row per trace point.

    Uses :meth:`TraceRecorder.columns` so the exporter follows the
    recorder's schema instead of hard-coding it.
    """
    columns = trace.columns()
    lines = ["app,time_s,hb_index," + ",".join(columns)]
    for app_name in sorted(trace.app_names):
        for point in trace.points(app_name):
            cells = [app_name, repr(point.time_s), str(point.hb_index)]
            for column in columns:
                value = getattr(point, column)
                cells.append("" if value is None else repr(float(value)))
            lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
