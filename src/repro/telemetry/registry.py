"""The metrics registry: one namespace of typed instruments.

A :class:`MetricsRegistry` is the single object a run's telemetry hangs
off: instrumentation sites get-or-create instruments by name, exporters
read one deterministic :meth:`~MetricsRegistry.snapshot` at the end.

Snapshots are plain JSON-compatible dicts with every instrument and
every label series in sorted order, so two identical runs produce
byte-identical exports — the determinism contract every experiment in
this repository relies on (``docs/modelling.md`` §9 and §12).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.telemetry.instruments import (
    Counter,
    Gauge,
    Histogram,
    LabelledInstrument,
    Timer,
)

#: Snapshot schema version (bumped whenever the layout changes; the
#: JSONL reader refuses other versions).
SNAPSHOT_SCHEMA = 1


class MetricsRegistry:
    """Get-or-create registry of labelled instruments."""

    def __init__(self) -> None:
        self._instruments: Dict[str, LabelledInstrument] = {}

    def _get_or_create(
        self, cls: Type[LabelledInstrument], name: str, help: str, **kwargs
    ) -> LabelledInstrument:
        got = self._instruments.get(name)
        if got is not None:
            if not isinstance(got, cls):
                raise ConfigurationError(
                    f"instrument {name!r} already registered as {got.kind}, "
                    f"not {cls.kind}"
                )
            return got
        made = cls(name, help, **kwargs)
        self._instruments[name] = made
        return made

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        if buckets is not None:
            return self._get_or_create(
                Histogram, name, help, buckets=buckets
            )
        return self._get_or_create(Histogram, name, help)

    def timer(self, name: str, help: str = "") -> Timer:
        return self._get_or_create(Timer, name, help)

    def get(self, name: str) -> Optional[LabelledInstrument]:
        """The instrument registered under ``name``, if any."""
        return self._instruments.get(name)

    def names(self) -> Tuple[str, ...]:
        """Registered instrument names, sorted."""
        return tuple(sorted(self._instruments))

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything measured so far, as a sorted plain-data dict."""
        instruments: List[Dict[str, Any]] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            entry: Dict[str, Any] = {
                "name": name,
                "kind": instrument.kind,
                "help": instrument.help,
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
            series = []
            for labels, child in instrument.series():
                row: Dict[str, Any] = {"labels": dict(labels)}
                if isinstance(instrument, (Counter, Gauge)):
                    row["value"] = child.value
                elif isinstance(instrument, Histogram):
                    row["counts"] = list(child.counts)
                    row["sum"] = child.sum
                    row["count"] = child.count
                else:  # Timer
                    row["count"] = child.count
                    row["sum_s"] = child.sum_s
                    row["max_s"] = child.max_s
                series.append(row)
            entry["series"] = series
            instruments.append(entry)
        return {"schema": SNAPSHOT_SCHEMA, "instruments": instruments}


def flatten_snapshot(
    snapshot: Dict[str, Any]
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Flatten a snapshot to ``{(sample_name, labels): value}``.

    This is the common denominator the exporter round-trip tests compare
    on: histograms expand to ``_bucket``/``_sum``/``_count`` samples and
    timers to ``_count``/``_sum_s``/``_max_s``, exactly the samples the
    Prometheus exporter writes.
    """
    flat: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}

    def put(name: str, labels: Dict[str, str], value: float) -> None:
        flat[(name, tuple(sorted(labels.items())))] = float(value)

    for entry in snapshot["instruments"]:
        name = entry["name"]
        for row in entry["series"]:
            labels = row["labels"]
            kind = entry["kind"]
            if kind in ("counter", "gauge"):
                put(name, labels, row["value"])
            elif kind == "histogram":
                bounds = [*entry["buckets"], float("inf")]
                for bound, count in zip(bounds, row["counts"]):
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    put(f"{name}_bucket", {**labels, "le": le}, count)
                put(f"{name}_sum", labels, row["sum"])
                put(f"{name}_count", labels, row["count"])
            elif kind == "timer":
                put(f"{name}_count", labels, row["count"])
                put(f"{name}_sum_s", labels, row["sum_s"])
                put(f"{name}_max_s", labels, row["max_s"])
            else:  # pragma: no cover - future kinds
                raise ConfigurationError(f"unknown instrument kind {kind!r}")
    return flat
