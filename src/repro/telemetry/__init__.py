"""Zero-dependency metrics and tracing for the HARS reproduction.

The runtime's whole argument is quantitative — normalized performance
per watt, adaptation latency, estimator accuracy — so the kernel's
internals (search pruning, estimation-cache hits, MAPE phase costs)
need to be observable *outside* tests.  This package provides:

* :mod:`repro.telemetry.instruments` — typed instruments (``Counter``,
  ``Gauge``, fixed-bucket ``Histogram``, sim-clock ``Timer``);
* :mod:`repro.telemetry.registry` — the :class:`MetricsRegistry`
  namespace with deterministic snapshots;
* :mod:`repro.telemetry.hub` — built-in instrumentation wired through
  the kernel bus, the MAPE loops, Algorithm 2, and the estimation
  layer (:class:`TelemetryHub`, enabled per run via
  :class:`~repro.experiments.runner.RunConfig` ``telemetry=``);
* :mod:`repro.telemetry.exporters` — JSONL, Prometheus text format,
  and CSV/summary exporters, all round-trippable.

Telemetry is strictly observation-only: a telemetry-on run is
bit-identical (metrics *and* traces) to a telemetry-off run, with
overhead measured by ``benchmarks/bench_telemetry_overhead.py``.
"""

from repro.telemetry.exporters import (
    parse_prometheus,
    read_jsonl,
    snapshot_from_jsonl,
    snapshot_to_csv,
    snapshot_to_jsonl,
    snapshot_to_prometheus,
    summary_table,
    trace_to_csv,
    write_jsonl,
)
from repro.telemetry.hub import MapeTelemetry, TelemetryConfig, TelemetryHub
from repro.telemetry.instruments import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Timer,
)
from repro.telemetry.registry import (
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    flatten_snapshot,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MapeTelemetry",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
    "TelemetryConfig",
    "TelemetryHub",
    "Timer",
    "flatten_snapshot",
    "parse_prometheus",
    "read_jsonl",
    "snapshot_from_jsonl",
    "snapshot_to_csv",
    "snapshot_to_jsonl",
    "snapshot_to_prometheus",
    "summary_table",
    "trace_to_csv",
    "write_jsonl",
]
