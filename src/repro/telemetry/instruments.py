"""Typed telemetry instruments.

Four instrument kinds cover everything the runtime measures about
itself:

* :class:`Counter` — monotonically-increasing totals (heartbeats seen,
  candidates explored, faults injected);
* :class:`Gauge` — last-written values (current allocation, cache
  sizes, cluster frequencies);
* :class:`Histogram` — value distributions over *fixed* bucket
  boundaries chosen at creation time (observed heartbeat rates), so two
  runs of the same configuration always produce comparable buckets;
* :class:`Timer` — duration accumulators (MAPE phase costs).  Durations
  come either from explicit :meth:`Timer.record` calls (the modelled
  manager costs of ``docs/modelling.md`` §7) or from
  :meth:`Timer.span`, a context manager over a caller-supplied clock —
  the *simulated* clock in every built-in use, so timer values are
  deterministic and never read the host's wall clock.

Instruments are labelled: each carries any number of label sets
(series), and a series is addressed by keyword arguments
(``counter.inc(app="swaptions-0")``).  Hot callers pre-bind a series
once with :meth:`LabelledInstrument.child` and update it without the
per-call label lookup.

Everything here is observation-only and zero-dependency; no instrument
ever feeds back into the simulation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

#: A canonical label set: name-sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default Histogram buckets: decade-spanning, fine around 1–100 (the
#: heartbeat-rate range the paper's benchmarks live in).
DEFAULT_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
)


def label_key(labels: Dict[str, str]) -> LabelKey:
    """Canonicalize a label dict (sorted, stringified) for keying."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class LabelledInstrument:
    """Base: a named instrument holding one child per label set."""

    kind = "instrument"

    def __init__(self, name: str, help: str = ""):
        if not name or not name.replace("_", "a").isalnum():
            raise ConfigurationError(
                f"instrument name must be [a-zA-Z0-9_]+, got {name!r}"
            )
        self.name = name
        self.help = help
        self._children: Dict[LabelKey, object] = {}

    def _new_child(self) -> object:  # pragma: no cover - abstract
        raise NotImplementedError

    def child(self, **labels: str):
        """The series for one label set, creating it on first use."""
        key = label_key(labels)
        got = self._children.get(key)
        if got is None:
            got = self._children[key] = self._new_child()
        return got

    def series(self) -> Iterator[Tuple[LabelKey, object]]:
        """``(labels, child)`` pairs in deterministic (sorted) order."""
        for key in sorted(self._children):
            yield key, self._children[key]

    def __len__(self) -> int:
        return len(self._children)


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Counter(LabelledInstrument):
    """A monotonically-increasing total."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.child(**labels).inc(amount)

    def value(self, **labels: str) -> float:
        return self.child(**labels).value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Gauge(LabelledInstrument):
    """A last-written value."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: str) -> None:
        self.child(**labels).set(value)

    def value(self, **labels: str) -> float:
        return self.child(**labels).value


class _HistogramChild:
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        # counts[i] counts observations <= bounds[i]; the final slot is
        # the +Inf overflow bucket (cumulative style, like Prometheus).
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
        self.counts[-1] += 1


class Histogram(LabelledInstrument):
    """A distribution over fixed, creation-time bucket boundaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                "histogram buckets must be strictly increasing"
            )
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        self.child(**labels).observe(value)


class _TimerChild:
    __slots__ = ("count", "sum_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("durations cannot be negative")
        self.count += 1
        self.sum_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds


class _Span:
    """Context manager recording one clocked duration into a timer."""

    __slots__ = ("_child", "_clock", "_start")

    def __init__(self, child: _TimerChild, clock: Callable[[], float]):
        self._child = child
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._child.record(self._clock() - self._start)


class Timer(LabelledInstrument):
    """Accumulated durations (count, sum, max) in seconds."""

    kind = "timer"

    def _new_child(self) -> _TimerChild:
        return _TimerChild()

    def record(self, seconds: float, **labels: str) -> None:
        self.child(**labels).record(seconds)

    def span(self, clock: Callable[[], float], **labels: str) -> _Span:
        """Time a ``with`` block against ``clock`` (the sim clock in
        every built-in use — wall clocks would break determinism)."""
        return _Span(self.child(**labels), clock)
