"""Built-in instrumentation: the telemetry hub.

The :class:`TelemetryHub` is a :class:`~repro.sim.controller.Controller`
that turns the existing observation seams into metrics without touching
any of them:

* every observation-relevant kernel bus event becomes a counter/gauge
  update (heartbeats, applied states, finished apps, fault
  injections/recoveries, supervision transitions, controller restores);
* every MAPE-K manager gets a :class:`MapeTelemetry` recorder installed
  on its loop, metering the monitor/analyze/plan/execute phases with
  the *modelled* manager costs of ``docs/modelling.md`` §7 (so timer
  values are deterministic), Algorithm 2's search counters (states
  evaluated, pruned by Manhattan distance, estimation failures), and
  the observed-rate distribution;
* at :meth:`finalize` the hub harvests everything the engine already
  accounts exactly — tick count, per-rail energy and average power,
  the estimation layer's cache hit/miss totals, trace volume, and the
  simulated end time — without ever riding the per-tick hot path.

The hub is strictly observation-only: with it attached, a run's
metrics and traces are bit-identical to a run without it
(``benchmarks/bench_telemetry_overhead.py`` asserts this the same way
``bench_fault_tolerance`` asserts the fault layer's zero-rate
identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.kernel.bus import (
    AppEvicted,
    AppFinished,
    AppQuarantined,
    AppSuspected,
    ControllerRestored,
    FaultInjected,
    FaultRecovered,
    GuardrailReleased,
    GuardrailTripped,
    HeartbeatEmitted,
    PolicySwapped,
    StateApplied,
)
from repro.platform.sensor import CHANNELS
from repro.sim.controller import Controller
from repro.telemetry.instruments import DEFAULT_BUCKETS
from repro.telemetry.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.mape import Analysis, Observation, PlanResult
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class TelemetryConfig:
    """What the hub instruments.

    Everything defaults on.  The hub deliberately never subscribes to
    the per-tick bus events — the engine skips publishing them when
    nobody listens, and a tick-rate subscriber alone costs tens of
    percent of a fast-profile run.  Tick counts and per-rail energy are
    harvested once at :meth:`TelemetryHub.finalize` from the engine's
    own tick index and the power sensor's exact integrals instead.
    """

    #: Record ``sim_ticks_total`` from the engine's tick index.
    track_ticks: bool = True
    #: Record per-rail ``energy_joules_total`` / average ``power_watts``
    #: from the sensor's integrated channels.
    track_power: bool = True
    #: Bucket boundaries for the observed heartbeat-rate histogram.
    rate_buckets: Tuple[float, ...] = DEFAULT_BUCKETS


class MapeTelemetry:
    """Per-manager MAPE phase recorder installed on a
    :class:`~repro.kernel.mape.MapeLoop` (``loop.telemetry``).

    Phase timers carry the modelled costs Figure 5.3(b) meters — poll
    cost per monitored heartbeat, candidate-evaluation cost per planned
    state — never host wall time, so telemetry output is deterministic.
    """

    __slots__ = (
        "poll_cost_s",
        "state_eval_cost_s",
        "_monitor_timer",
        "_plan_timer",
        "_monitor_count",
        "_analyze_count",
        "_plan_count",
        "_execute_count",
        "_held_count",
        "_out_of_window",
        "_adaptations",
        "_escapes",
        "_rate_hist",
        "_explored",
        "_pruned",
        "_failures",
        "_filtered",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        controller: str,
        poll_cost_s: float = 0.0,
        state_eval_cost_s: float = 0.0,
        rate_buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.poll_cost_s = poll_cost_s
        self.state_eval_cost_s = state_eval_cost_s
        self._monitor_timer = registry.timer(
            "mape_monitor_seconds",
            "Modelled Monitor-phase CPU seconds (poll cost per heartbeat).",
        ).child(controller=controller)
        self._plan_timer = registry.timer(
            "mape_plan_seconds",
            "Modelled Plan-phase CPU seconds (eval cost per candidate).",
        ).child(controller=controller)
        phases = registry.counter(
            "mape_phase_total", "MAPE phase executions per manager."
        )
        self._monitor_count = phases.child(
            controller=controller, phase="monitor"
        )
        self._analyze_count = phases.child(
            controller=controller, phase="analyze"
        )
        self._plan_count = phases.child(controller=controller, phase="plan")
        self._execute_count = phases.child(
            controller=controller, phase="execute"
        )
        self._held_count = registry.counter(
            "mape_held_cycles_total",
            "Cycles holding the last good state on a degraded observation.",
        ).child(controller=controller)
        self._out_of_window = registry.counter(
            "mape_out_of_window_total",
            "Boundary observations classified outside the target window.",
        ).child(controller=controller)
        self._adaptations = registry.counter(
            "mape_adaptations_total",
            "Executed plans that changed the system state.",
        ).child(controller=controller)
        self._escapes = registry.counter(
            "search_escapes_total",
            "Plans that widened to the local-optimum escape space.",
        ).child(controller=controller)
        self._rate_hist = registry.histogram(
            "mape_observed_rate",
            "Filtered heartbeat rates observed at adaptation boundaries.",
            buckets=rate_buckets,
        ).child(controller=controller)
        self._explored = registry.counter(
            "search_states_explored_total",
            "Algorithm 2 candidates actually estimated.",
        ).child(controller=controller)
        self._pruned = registry.counter(
            "search_pruned_total",
            "Neighbourhood candidates pruned by Manhattan distance.",
        ).child(controller=controller)
        self._failures = registry.counter(
            "search_estimation_failures_total",
            "Candidates skipped because their estimate raised.",
        ).child(controller=controller)
        self._filtered = registry.counter(
            "search_filtered_total",
            "Candidates a guardrail filter vetoed (budget caps) — kept "
            "separate from the Manhattan-distance prune.",
        ).child(controller=controller)

    # -- hooks called by MapeLoop.on_heartbeat --------------------------------

    def on_monitor(self, observation: Optional["Observation"]) -> None:
        self._monitor_count.inc()
        if self.poll_cost_s:
            self._monitor_timer.record(self.poll_cost_s)
        if observation is not None:
            self._rate_hist.observe(observation.rate)

    def on_held(self) -> None:
        self._held_count.inc()

    def on_analysis(self, analysis: "Analysis") -> None:
        self._analyze_count.inc()
        if analysis.out_of_window:
            self._out_of_window.inc()

    def on_plan(self, plan: "PlanResult") -> None:
        self._plan_count.inc()
        self._plan_timer.record(plan.states_explored * self.state_eval_cost_s)
        if plan.states_explored:
            self._explored.inc(plan.states_explored)
        if plan.pruned:
            self._pruned.inc(plan.pruned)
        if plan.estimation_failures:
            self._failures.inc(plan.estimation_failures)
        if plan.filtered:
            self._filtered.inc(plan.filtered)
        if plan.escaped:
            self._escapes.inc()

    def on_execute(self, adapted: bool) -> None:
        self._execute_count.inc()
        if adapted:
            self._adaptations.inc()


class TelemetryHub(Controller):
    """Bus-attached metrics collector for one simulation run."""

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or TelemetryConfig()
        self.registry = registry or MetricsRegistry()
        self.trace = None  # the sim's TraceRecorder, set on attach
        self._sim: Optional["Simulation"] = None
        self._finalized = False
        # Pre-created instruments (children resolved lazily per label).
        reg = self.registry
        self._heartbeats = reg.counter(
            "heartbeats_total", "Heartbeats delivered to the bus, per app."
        )
        self._states_applied = reg.counter(
            "states_applied_total", "Execute-stage state applications, per app."
        )
        self._big_cores = reg.gauge(
            "app_big_cores", "Big cores currently allocated to the app."
        )
        self._little_cores = reg.gauge(
            "app_little_cores", "Little cores currently allocated to the app."
        )
        self._cluster_freq = reg.gauge(
            "cluster_freq_mhz", "Cluster frequency from the last applied state."
        )
        self._finished = reg.counter(
            "apps_finished_total", "Apps that consumed their last work unit."
        )
        self._faults_injected = reg.counter(
            "faults_injected_total", "Fault injections on the bus, per kind."
        )
        self._faults_recovered = reg.counter(
            "faults_recovered_total", "Fault recoveries on the bus, per kind."
        )
        self._supervision = reg.counter(
            "supervision_transitions_total",
            "Supervisor state transitions (suspected/quarantined/evicted).",
        )
        self._restores = reg.counter(
            "controller_restores_total",
            "Controller crash+restart recoveries, warm or cold.",
        )
        self._policy_swaps = reg.counter(
            "policy_swaps_total",
            "Live policy hot-swaps applied to a running controller.",
        )
        self._guardrail_trips = reg.counter(
            "guardrail_trips_total",
            "Guardrail engagements on the bus, per guard.",
        )
        self._guardrail_releases = reg.counter(
            "guardrail_releases_total",
            "Guardrail disengagements on the bus, per guard.",
        )
        self._ticks = reg.counter("sim_ticks_total", "Engine ticks executed.")
        self._power_w = reg.gauge(
            "power_watts", "Average per-rail power over the run."
        )
        self._energy_j = reg.counter(
            "energy_joules_total", "Per-rail energy integrated over the run."
        )
        # Hot-path child caches (avoid the label sort per event).
        self._hb_children: Dict[str, object] = {}
        self._run_info = reg.gauge(
            "run_info", "Constant 1; labels identify the run."
        )

    # -- wiring ---------------------------------------------------------------

    def set_run_info(self, **labels: str) -> None:
        """Attach identifying labels (version, profile, …) to the run."""
        self._run_info.set(1.0, **labels)

    def attach(self, sim: "Simulation") -> None:
        self._sim = sim
        self.trace = sim.trace
        bus = sim.bus
        bus.subscribe(HeartbeatEmitted, self._on_heartbeat)
        bus.subscribe(StateApplied, self._on_state_applied)
        bus.subscribe(AppFinished, self._on_app_finished)
        bus.subscribe(FaultInjected, self._on_fault_injected)
        bus.subscribe(FaultRecovered, self._on_fault_recovered)
        bus.subscribe(AppSuspected, self._on_suspected)
        bus.subscribe(AppQuarantined, self._on_quarantined)
        bus.subscribe(AppEvicted, self._on_evicted)
        bus.subscribe(ControllerRestored, self._on_restored)
        bus.subscribe(PolicySwapped, self._on_policy_swapped)
        bus.subscribe(GuardrailTripped, self._on_guardrail_tripped)
        bus.subscribe(GuardrailReleased, self._on_guardrail_released)
        # No TickStart/PowerSample subscriptions: the engine elides those
        # publishes entirely when unsubscribed, and listening would put
        # event construction + dispatch on every tick of the hot loop.
        # finalize() harvests both series exactly instead.

    def on_start(self, sim: "Simulation") -> None:
        # Install the MAPE recorder on every manager exposing a MAPE
        # loop.  Runs after the managers' own on_start, so costs and
        # checkpoint ids are settled.
        for index, controller in enumerate(sim.controllers):
            mape = getattr(controller, "mape", None)
            if mape is None or getattr(mape, "telemetry", None) is not None:
                continue
            name = getattr(controller, "checkpoint_id", None) or (
                f"{type(controller).__name__.lower()}-{index}"
            )
            mape.telemetry = MapeTelemetry(
                self.registry,
                controller=name,
                poll_cost_s=getattr(controller, "poll_cost_s", 0.0),
                state_eval_cost_s=getattr(
                    controller, "state_eval_cost_s", 0.0
                ),
                rate_buckets=self.config.rate_buckets,
            )

    # -- bus handlers (observation only) --------------------------------------

    def _on_heartbeat(self, event: HeartbeatEmitted) -> None:
        name = event.app.name
        child = self._hb_children.get(name)
        if child is None:
            child = self._hb_children[name] = self._heartbeats.child(app=name)
        child.inc()

    def _on_state_applied(self, event: StateApplied) -> None:
        app = event.app_name
        self._states_applied.inc(app=app)
        self._big_cores.set(event.big_cores, app=app)
        self._little_cores.set(event.little_cores, app=app)
        state = event.state
        self._cluster_freq.set(state.f_big_mhz, cluster="big")
        self._cluster_freq.set(state.f_little_mhz, cluster="little")

    def _on_app_finished(self, event: AppFinished) -> None:
        self._finished.inc(app=event.app_name)

    def _on_fault_injected(self, event: FaultInjected) -> None:
        self._faults_injected.inc(kind=event.kind)

    def _on_fault_recovered(self, event: FaultRecovered) -> None:
        self._faults_recovered.inc(kind=event.kind)

    def _on_suspected(self, event: AppSuspected) -> None:
        self._supervision.inc(transition="suspected", kind=event.kind)

    def _on_quarantined(self, event: AppQuarantined) -> None:
        self._supervision.inc(transition="quarantined", kind=event.kind)

    def _on_evicted(self, event: AppEvicted) -> None:
        self._supervision.inc(transition="evicted", kind=event.kind)

    def _on_restored(self, event: ControllerRestored) -> None:
        self._restores.inc(
            controller=event.controller,
            warm="true" if event.warm else "false",
        )

    def _on_policy_swapped(self, event: PolicySwapped) -> None:
        self._policy_swaps.inc(
            controller=event.controller, policy=event.new_policy
        )

    def _on_guardrail_tripped(self, event: GuardrailTripped) -> None:
        self._guardrail_trips.inc(guard=event.guard)

    def _on_guardrail_released(self, event: GuardrailReleased) -> None:
        self._guardrail_releases.inc(guard=event.guard)

    # -- end-of-run harvest ---------------------------------------------------

    def finalize(self) -> MetricsRegistry:
        """Harvest snapshot-time series (idempotent); returns the registry."""
        sim = self._sim
        if sim is None or self._finalized:
            return self.registry
        self._finalized = True
        reg = self.registry
        if self.config.track_ticks:
            self._ticks.inc(sim._tick_index)
        if self.config.track_power and sim.sensor.elapsed_s > 0:
            for rail in CHANNELS:
                self._energy_j.inc(sim.sensor.energy_j(rail), rail=rail)
                self._power_w.set(
                    sim.sensor.average_power_w(rail), rail=rail
                )
        clamped = getattr(sim.sensor, "clamped_samples", 0)
        if clamped:
            reg.counter(
                "sensor_clamped_total",
                "Periodic samples with a negative channel clamped to 0.",
            ).inc(clamped)
        reg.gauge(
            "sim_time_seconds", "Simulated time at the end of the run."
        ).set(sim.clock.now_s)
        reg.gauge(
            "trace_points_total", "Behaviour-trace rows recorded."
        ).set(len(sim.trace))
        cache = reg.gauge(
            "estimation_cache_lookups",
            "Estimation-layer cache hits/misses per manager and model.",
        )
        backend_gauge = reg.gauge(
            "planner_backend",
            "Active planner backend per manager (1 under the labelled "
            "backend).",
        )
        rebuilds = reg.counter(
            "planner_tensor_rebuilds_total",
            "State-space tensor (re)builds per manager — one per model "
            "pair after every swap or invalidation.",
        )
        for index, controller in enumerate(sim.controllers):
            knowledge = getattr(controller, "knowledge", None)
            estimation = getattr(knowledge, "estimation", None)
            stats = getattr(estimation, "stats", None)
            if stats is None:
                continue
            name = getattr(controller, "checkpoint_id", None) or (
                f"{type(controller).__name__.lower()}-{index}"
            )
            counts = stats()
            for key, value in counts.items():
                model, _, result = key.partition("_")
                cache.set(value, controller=name, model=model, result=result)
            planner = getattr(getattr(controller, "mape", None), "planner", None)
            if planner is not None:
                backend_gauge.set(
                    1.0,
                    controller=name,
                    backend=getattr(planner, "backend", "scalar"),
                )
            builds = counts.get("tensor_builds", 0)
            if builds:
                rebuilds.inc(builds, controller=name)
        plan_service = getattr(sim, "plan_service", None)
        if plan_service is not None and plan_service.batch_sizes:
            batch_hist = reg.histogram(
                "planner_batch_apps",
                "Apps/partitions planned per batch-planner invocation.",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            )
            for size in plan_service.batch_sizes:
                batch_hist.observe(size)
        for controller in sim.controllers:
            stats_fn = getattr(controller, "guardrail_stats", None)
            if stats_fn is None:
                continue
            guard_gauge = reg.gauge(
                "guardrail_stats",
                "Guardrail-layer scalar stats (trips, streaks, margins).",
            )
            for stat, value in stats_fn().items():
                guard_gauge.set(value, stat=stat)
            residuals = controller.residuals()
            if residuals:
                hist = reg.histogram(
                    "watchdog_residual",
                    "Signed watchdog residuals: (observed-est)/est for "
                    "rate and power of every applied state.",
                    buckets=(
                        -0.5, -0.25, -0.1, -0.05, 0.0, 0.05, 0.1, 0.25, 0.5
                    ),
                )
                for residual in residuals:
                    hist.observe(residual)
        return self.registry

    def snapshot(self):
        """Finalize (if a sim is attached) and snapshot the registry."""
        return self.finalize().snapshot()
