"""Heartbeat monitor: the observation stage of self-adaptive computing.

A :class:`HeartbeatMonitor` pairs a :class:`HeartbeatLog` with a
:class:`PerformanceTarget` and answers the questions the runtime managers
ask every adaptation period: what is the current rate, is it inside the
window, and — for the experiments — what was the time-averaged normalized
performance of the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.heartbeats.record import HeartbeatLog
from repro.heartbeats.targets import PerformanceTarget, Satisfaction

#: Default trailing window (beats) over which rates are measured.
DEFAULT_RATE_WINDOW = 5


@dataclass(frozen=True)
class Observation:
    """One adaptation-period observation handed to a runtime manager."""

    index: int
    time_s: float
    rate: float
    satisfaction: Satisfaction


class HeartbeatMonitor:
    """Windowed-rate observer over one application's heartbeat stream."""

    def __init__(
        self,
        log: HeartbeatLog,
        target: PerformanceTarget,
        rate_window: int = DEFAULT_RATE_WINDOW,
    ):
        if rate_window < 1:
            raise ConfigurationError("rate window must be at least 1")
        self.log = log
        self.target = target
        self.rate_window = rate_window

    def current_rate(self) -> Optional[float]:
        """Trailing-window rate, or ``None`` until enough beats exist."""
        return self.log.window_rate(self.rate_window)

    def observe(self) -> Optional[Observation]:
        """Snapshot rate + satisfaction at the latest heartbeat."""
        rate = self.current_rate()
        last = self.log.last
        if rate is None or last is None:
            return None
        return Observation(
            index=last.index,
            time_s=last.time_s,
            rate=rate,
            satisfaction=self.target.classify(rate),
        )

    def needs_adaptation(self) -> bool:
        """Algorithm 1 line 7 over the current window rate."""
        rate = self.current_rate()
        return rate is not None and self.target.out_of_window(rate)

    def timed_rate(
        self, now_s: float, span_s: float, start_s: float = 0.0
    ) -> Optional[float]:
        """Completion rate over the trailing timed window ``(now_s - span_s,
        now_s]``, in beats per second.

        The divisor is the window's *elapsed* span, not ``span_s``: a
        window cut short by the start of the stream (``start_s``) — or
        queried mid-window when a run terminates — covers less than the
        nominal span, and dividing by the full span would understate the
        rate by exactly the uncovered fraction.  At a steady 10 beats/s
        observed 0.3 s into the run, a full-span divisor over a 1 s
        window reports 3 beats/s and misclassifies the stream as deeply
        underperforming; the elapsed-span divisor reports 10.

        Returns ``None`` when the window has no elapsed time yet.
        """
        if span_s <= 0:
            raise ConfigurationError("span must be positive")
        window_start = max(now_s - span_s, start_s)
        elapsed = now_s - window_start
        if elapsed <= 0:
            return None
        return self.log.count_between(window_start, now_s) / elapsed

    def timed_rate_series(
        self, span_s: float, end_s: float, start_s: float = 0.0
    ) -> List[Tuple[float, float]]:
        """``(window_end_s, rate)`` per tumbling window of ``span_s``.

        Windows tile ``[start_s, end_s)``; the final window — cut short
        when the run ends mid-window — is scaled by its elapsed span,
        the same partial-window correction as :meth:`timed_rate`.
        """
        if span_s <= 0:
            raise ConfigurationError("span must be positive")
        if end_s <= start_s:
            return []
        series: List[Tuple[float, float]] = []
        window_start = start_s
        while window_start < end_s - 1e-12:
            window_end = min(window_start + span_s, end_s)
            elapsed = window_end - window_start
            count = self.log.count_between(window_start, window_end)
            series.append((window_end, count / elapsed))
            window_start += span_s
        return series

    def last_beat_age_s(self, now_s: float) -> Optional[float]:
        """Seconds since the newest logged heartbeat (``None`` before any).

        Clamped at zero: a beat emitted at the end of the current engine
        tick carries a timestamp slightly ahead of the mid-tick clock.
        """
        last = self.log.last
        if last is None:
            return None
        return max(0.0, now_s - last.time_s)

    def is_stale(self, now_s: float, max_age_s: float) -> bool:
        """Whether the heartbeat stream has gone quiet.

        A silent stream — the app stalled, or delivery is faulty — means
        the windowed rate describes the past; runtime managers hold their
        last good state rather than adapt on it.  ``True`` also before
        the first beat (nothing observed is the stalest possible state).
        """
        if max_age_s <= 0:
            raise ConfigurationError("max_age_s must be positive")
        age = self.last_beat_age_s(now_s)
        return age is None or age > max_age_s

    # -- run-level metrics --------------------------------------------------

    def normalized_performance_series(self) -> List[Tuple[int, float]]:
        """``(index, min(g, h)/g)`` per windowed measurement."""
        return [
            (index, self.target.normalized_performance(rate))
            for index, rate in self.log.rate_series(self.rate_window)
        ]

    def mean_normalized_performance(self) -> float:
        """Run-level normalized performance: the numerator of perf/watt.

        Averages ``min(g, h)/g`` across every windowed rate measurement;
        a run pinned below target scores < 1, a run at-or-above scores 1.
        """
        series = self.normalized_performance_series()
        if not series:
            raise ConfigurationError(
                f"{self.log.app_name}: too few heartbeats for a rate window"
            )
        return sum(v for _, v in series) / len(series)

    def satisfaction_series(self) -> List[Tuple[int, Satisfaction]]:
        """Per-measurement satisfaction classes (for behaviour traces)."""
        return [
            (index, self.target.classify(rate))
            for index, rate in self.log.rate_series(self.rate_window)
        ]
