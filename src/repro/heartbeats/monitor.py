"""Heartbeat monitor: the observation stage of self-adaptive computing.

A :class:`HeartbeatMonitor` pairs a :class:`HeartbeatLog` with a
:class:`PerformanceTarget` and answers the questions the runtime managers
ask every adaptation period: what is the current rate, is it inside the
window, and — for the experiments — what was the time-averaged normalized
performance of the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.heartbeats.record import HeartbeatLog
from repro.heartbeats.targets import PerformanceTarget, Satisfaction

#: Default trailing window (beats) over which rates are measured.
DEFAULT_RATE_WINDOW = 5


@dataclass(frozen=True)
class Observation:
    """One adaptation-period observation handed to a runtime manager."""

    index: int
    time_s: float
    rate: float
    satisfaction: Satisfaction


class HeartbeatMonitor:
    """Windowed-rate observer over one application's heartbeat stream."""

    def __init__(
        self,
        log: HeartbeatLog,
        target: PerformanceTarget,
        rate_window: int = DEFAULT_RATE_WINDOW,
    ):
        if rate_window < 1:
            raise ConfigurationError("rate window must be at least 1")
        self.log = log
        self.target = target
        self.rate_window = rate_window

    def current_rate(self) -> Optional[float]:
        """Trailing-window rate, or ``None`` until enough beats exist."""
        return self.log.window_rate(self.rate_window)

    def observe(self) -> Optional[Observation]:
        """Snapshot rate + satisfaction at the latest heartbeat."""
        rate = self.current_rate()
        last = self.log.last
        if rate is None or last is None:
            return None
        return Observation(
            index=last.index,
            time_s=last.time_s,
            rate=rate,
            satisfaction=self.target.classify(rate),
        )

    def needs_adaptation(self) -> bool:
        """Algorithm 1 line 7 over the current window rate."""
        rate = self.current_rate()
        return rate is not None and self.target.out_of_window(rate)

    def last_beat_age_s(self, now_s: float) -> Optional[float]:
        """Seconds since the newest logged heartbeat (``None`` before any).

        Clamped at zero: a beat emitted at the end of the current engine
        tick carries a timestamp slightly ahead of the mid-tick clock.
        """
        last = self.log.last
        if last is None:
            return None
        return max(0.0, now_s - last.time_s)

    def is_stale(self, now_s: float, max_age_s: float) -> bool:
        """Whether the heartbeat stream has gone quiet.

        A silent stream — the app stalled, or delivery is faulty — means
        the windowed rate describes the past; runtime managers hold their
        last good state rather than adapt on it.  ``True`` also before
        the first beat (nothing observed is the stalest possible state).
        """
        if max_age_s <= 0:
            raise ConfigurationError("max_age_s must be positive")
        age = self.last_beat_age_s(now_s)
        return age is None or age > max_age_s

    # -- run-level metrics --------------------------------------------------

    def normalized_performance_series(self) -> List[Tuple[int, float]]:
        """``(index, min(g, h)/g)`` per windowed measurement."""
        return [
            (index, self.target.normalized_performance(rate))
            for index, rate in self.log.rate_series(self.rate_window)
        ]

    def mean_normalized_performance(self) -> float:
        """Run-level normalized performance: the numerator of perf/watt.

        Averages ``min(g, h)/g`` across every windowed rate measurement;
        a run pinned below target scores < 1, a run at-or-above scores 1.
        """
        series = self.normalized_performance_series()
        if not series:
            raise ConfigurationError(
                f"{self.log.app_name}: too few heartbeats for a rate window"
            )
        return sum(v for _, v in series) / len(series)

    def satisfaction_series(self) -> List[Tuple[int, Satisfaction]]:
        """Per-measurement satisfaction classes (for behaviour traces)."""
        return [
            (index, self.target.classify(rate))
            for index, rate in self.log.rate_series(self.rate_window)
        ]
