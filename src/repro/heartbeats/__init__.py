"""Application Heartbeats framework (Hoffmann et al., ICAC'10) substrate.

Applications emit a heartbeat per completed work unit; observers derive
application-level performance from windowed heartbeat rates and compare
it against a :class:`PerformanceTarget` window.
"""

from repro.heartbeats.monitor import (
    DEFAULT_RATE_WINDOW,
    HeartbeatMonitor,
    Observation,
)
from repro.heartbeats.record import Heartbeat, HeartbeatLog
from repro.heartbeats.registry import HeartbeatRegistry
from repro.heartbeats.targets import PerformanceTarget, Satisfaction

__all__ = [
    "DEFAULT_RATE_WINDOW",
    "Heartbeat",
    "HeartbeatLog",
    "HeartbeatMonitor",
    "HeartbeatRegistry",
    "Observation",
    "PerformanceTarget",
    "Satisfaction",
]
