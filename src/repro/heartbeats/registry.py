"""Registry of heartbeat-producing applications.

The Application Heartbeats framework registers each application in a
shared segment that the external observer (HARS / MP-HARS) attaches to.
The registry is that attachment point: it maps application names to their
monitors and lets MP-HARS iterate "one application at a time" exactly as
Algorithm 3's linked-list walk does.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.heartbeats.monitor import DEFAULT_RATE_WINDOW, HeartbeatMonitor
from repro.heartbeats.record import HeartbeatLog
from repro.heartbeats.targets import PerformanceTarget


class HeartbeatRegistry:
    """Name → (log, monitor) registry with stable iteration order.

    Iteration order is registration order, matching the paper's
    linked-list traversal.
    """

    def __init__(self) -> None:
        self._logs: Dict[str, HeartbeatLog] = {}
        self._monitors: Dict[str, HeartbeatMonitor] = {}
        self._order: List[str] = []

    def register(
        self,
        app_name: str,
        target: PerformanceTarget,
        rate_window: int = DEFAULT_RATE_WINDOW,
    ) -> HeartbeatLog:
        """Create and register a fresh log/monitor pair for ``app_name``."""
        if app_name in self._logs:
            raise ConfigurationError(f"app {app_name!r} already registered")
        log = HeartbeatLog(app_name=app_name)
        self._logs[app_name] = log
        self._monitors[app_name] = HeartbeatMonitor(log, target, rate_window)
        self._order.append(app_name)
        return log

    def unregister(self, app_name: str) -> None:
        """Detach an application (e.g. when it exits)."""
        if app_name not in self._logs:
            raise ConfigurationError(f"app {app_name!r} not registered")
        del self._logs[app_name]
        del self._monitors[app_name]
        self._order.remove(app_name)

    def log(self, app_name: str) -> HeartbeatLog:
        """The application's heartbeat log."""
        try:
            return self._logs[app_name]
        except KeyError:
            raise ConfigurationError(f"app {app_name!r} not registered") from None

    def monitor(self, app_name: str) -> HeartbeatMonitor:
        """The application's monitor (rate window + target)."""
        try:
            return self._monitors[app_name]
        except KeyError:
            raise ConfigurationError(f"app {app_name!r} not registered") from None

    def target(self, app_name: str) -> PerformanceTarget:
        """The application's performance target."""
        return self.monitor(app_name).target

    @property
    def app_names(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, app_name: str) -> bool:
        return app_name in self._logs

    def __iter__(self) -> Iterator[Tuple[str, HeartbeatMonitor]]:
        """Iterate ``(name, monitor)`` pairs in registration order."""
        for name in self._order:
            yield name, self._monitors[name]

    def current_rates(self) -> Dict[str, Optional[float]]:
        """Latest windowed rate per application (``None`` if too early)."""
        return {
            name: monitor.current_rate() for name, monitor in self
        }
