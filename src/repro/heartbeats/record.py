"""Heartbeat records and logs — the Application Heartbeats substrate.

The Application Heartbeats framework (Hoffmann et al., ICAC'10) lets an
application emit a *heartbeat* each time it completes a unit of work; an
external observer derives application-level performance from the
heartbeat rate.  This module is the data layer: immutable heartbeat
records and an append-only log with windowed-rate queries.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Heartbeat:
    """One emitted heartbeat.

    ``index`` counts from 0 in emission order; ``time_s`` is the simulated
    timestamp; ``tag`` optionally carries the workload phase for traces.
    """

    index: int
    time_s: float
    tag: str = ""


class HeartbeatLog:
    """Append-only heartbeat history with rate queries.

    Rates are heartbeats per second, computed over a trailing window of
    ``window`` beats: ``window / (t_last - t_first_of_window)``.
    """

    def __init__(self, app_name: str = ""):
        self.app_name = app_name
        self._beats: List[Heartbeat] = []
        # Parallel timestamp list for O(log n) timed-window counting.
        self._times: List[float] = []

    def emit(self, time_s: float, tag: str = "") -> Heartbeat:
        """Append a heartbeat at ``time_s`` and return it."""
        if self._beats and time_s < self._beats[-1].time_s:
            raise ConfigurationError(
                f"{self.app_name}: heartbeat time went backwards "
                f"({time_s} < {self._beats[-1].time_s})"
            )
        beat = Heartbeat(index=len(self._beats), time_s=time_s, tag=tag)
        self._beats.append(beat)
        self._times.append(time_s)
        return beat

    def __len__(self) -> int:
        return len(self._beats)

    @property
    def beats(self) -> Sequence[Heartbeat]:
        """All heartbeats, oldest first (read-only view)."""
        return tuple(self._beats)

    def beat(self, index: int) -> Heartbeat:
        """The heartbeat at ``index`` without copying the whole log.

        Cursor-style consumers (the fleet nodes harvest each lane's new
        beats every tick) would pay O(n) per tick through :attr:`beats`.
        """
        return self._beats[index]

    def count_between(self, start_s: float, end_s: float) -> int:
        """Beats with ``start_s < time_s <= end_s`` (half-open window).

        The half-open convention makes consecutive tumbling windows
        partition the stream: a beat on a boundary belongs to exactly
        one window.
        """
        return bisect_right(self._times, end_s) - bisect_right(
            self._times, start_s
        )

    @property
    def last(self) -> Optional[Heartbeat]:
        """Most recent heartbeat, or ``None`` before the first one."""
        return self._beats[-1] if self._beats else None

    def window_rate(self, window: int) -> Optional[float]:
        """Rate over the trailing ``window`` beats, or ``None`` if the log
        is too short or the window spans zero time."""
        if window < 1:
            raise ConfigurationError("window must be at least 1 beat")
        if len(self._beats) < window + 1:
            return None
        newest = self._beats[-1]
        oldest = self._beats[-1 - window]
        span = newest.time_s - oldest.time_s
        if span <= 0:
            return None
        return window / span

    def overall_rate(self) -> Optional[float]:
        """Rate from the first to the last heartbeat."""
        if len(self._beats) < 2:
            return None
        span = self._beats[-1].time_s - self._beats[0].time_s
        if span <= 0:
            return None
        return (len(self._beats) - 1) / span

    def rate_series(self, window: int) -> List[tuple]:
        """``(index, rate)`` pairs for every beat where the window closes.

        This is the "HPS" series the paper's behaviour graphs
        (Figures 5.5–5.7) plot against the heartbeat index.
        """
        series: List[tuple] = []
        for i in range(window, len(self._beats)):
            span = self._beats[i].time_s - self._beats[i - window].time_s
            if span > 0:
                series.append((self._beats[i].index, window / span))
        return series
