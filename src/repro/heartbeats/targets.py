"""Performance-target windows and satisfaction classification.

The paper gives each application a target window ``[t.min, t.max]``
around a center ``t.avg`` (e.g. 50 % ± 5 % of the maximum achievable
heartbeat rate).  Adaptation triggers when the observed rate leaves the
window (``|rate − t.avg| > (t.max − t.min)/2``, Algorithm 1 line 7), and
the MP-HARS decision table (Table 4.3) classifies each application as
*underperforming*, *achieving*, or *overperforming*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Satisfaction(enum.Enum):
    """How an observed rate relates to the target window."""

    UNDERPERF = "underperf"
    ACHIEVE = "achieve"
    OVERPERF = "overperf"


@dataclass(frozen=True)
class PerformanceTarget:
    """A target window in heartbeats per second.

    ``avg`` is the normalization point ``g`` of the paper's normalized
    performance ``min(g, h)/g``.
    """

    min_rate: float
    avg_rate: float
    max_rate: float

    def __post_init__(self) -> None:
        if not 0 < self.min_rate <= self.avg_rate <= self.max_rate:
            raise ConfigurationError(
                f"invalid target window ({self.min_rate}, {self.avg_rate}, "
                f"{self.max_rate})"
            )

    @classmethod
    def fraction_of(
        cls, max_achievable: float, fraction: float, tolerance: float = 0.05
    ) -> "PerformanceTarget":
        """Build the paper's targets: ``fraction ± tolerance`` of the
        maximum achievable rate (default target 50 % ± 5 %, high target
        75 % ± 5 %)."""
        if max_achievable <= 0:
            raise ConfigurationError("max achievable rate must be positive")
        if not 0 < fraction <= 1:
            raise ConfigurationError("fraction must be in (0, 1]")
        if not 0 <= tolerance < fraction:
            raise ConfigurationError("tolerance must be in [0, fraction)")
        return cls(
            min_rate=(fraction - tolerance) * max_achievable,
            avg_rate=fraction * max_achievable,
            max_rate=(fraction + tolerance) * max_achievable,
        )

    @property
    def half_width(self) -> float:
        """``(t.max − t.min)/2`` — the adaptation trigger threshold."""
        return (self.max_rate - self.min_rate) / 2.0

    def out_of_window(self, rate: float) -> bool:
        """Algorithm 1 line 7: does the rate call for adaptation?"""
        return abs(rate - self.avg_rate) > self.half_width

    def classify(self, rate: float) -> Satisfaction:
        """Satisfaction class for Table 4.3 and the behaviour traces."""
        if rate < self.min_rate:
            return Satisfaction.UNDERPERF
        if rate > self.max_rate:
            return Satisfaction.OVERPERF
        return Satisfaction.ACHIEVE

    def normalized_performance(self, rate: float) -> float:
        """The paper's ``min(g, h)/g`` with ``g = t.avg``.

        Overperformance is capped at 1 — "there is no benefit in
        overperformance" (Section 3.1.3).
        """
        if rate < 0:
            raise ConfigurationError("negative rate")
        return min(self.avg_rate, rate) / self.avg_rate


#: Bounds on the latency-pressure multiplier a :class:`DeadlineTarget`
#: applies to the observed rate (guards against a single pathological
#: tail sample slamming the window to an unreachable point).
_PRESSURE_BOUNDS = (0.2, 5.0)

#: Rate floor keeping the window well-formed before any observation.
_RATE_FLOOR = 1e-9


class DeadlineTarget:
    """A tail-latency target wearing a :class:`PerformanceTarget` face.

    Serving fleets steer on latency percentiles against a deadline, but
    the whole MAPE-K stack — Analyzer classification, Algorithm 2
    feasibility (``est_rate >= min_rate``), the Table 4.3 decision table,
    the vectorized batch planner — speaks heartbeat-rate windows.  A
    ``DeadlineTarget`` bridges the two: it exposes the same
    ``min_rate`` / ``avg_rate`` / ``max_rate`` window and the same
    ``classify`` / ``out_of_window`` / ``normalized_performance``
    methods, but the window is *derived*, re-centered every tick from
    the observed completion rate and the windowed tail latency:

        pressure = tail / ((1 - slack) * deadline)
        avg_rate = observed_rate * clamp(pressure)

    Tail at the comfort point → the window brackets the observed rate
    (ACHIEVE, hold).  Tail approaching the deadline → the window moves
    above the observed rate (UNDERPERF, grow allocation / frequency).
    Tail far below comfort → the window drops below the observed rate
    (OVERPERF, shrink and save energy).  Unlike
    :class:`PerformanceTarget` this object is deliberately mutable —
    the target *is* the controller's moving setpoint.
    """

    def __init__(
        self,
        deadline_s: float,
        percentile: float = 95.0,
        slack: float = 0.4,
        tolerance: float = 0.15,
    ):
        if deadline_s <= 0:
            raise ConfigurationError("deadline must be positive")
        if not 0 < percentile <= 100:
            raise ConfigurationError("percentile must be in (0, 100]")
        if not 0 < slack < 1:
            raise ConfigurationError("slack must be in (0, 1)")
        if not 0 < tolerance < 1:
            raise ConfigurationError("tolerance must be in (0, 1)")
        self.deadline_s = deadline_s
        self.percentile = percentile
        self.slack = slack
        self.tolerance = tolerance
        # Permissive until the first update: anything classifies as
        # ACHIEVE, so an idle or warming-up lane never triggers
        # adaptation on no data.
        self.min_rate = _RATE_FLOOR
        self.avg_rate = 1.0
        self.max_rate = float("inf")
        #: Latest tail latency fed in (telemetry convenience).
        self.last_tail_s: float | None = None

    @property
    def comfort_s(self) -> float:
        """The tail latency the controller steers toward."""
        return (1.0 - self.slack) * self.deadline_s

    def update(
        self, observed_rate: float | None, tail_latency_s: float | None
    ) -> None:
        """Re-center the rate window from the current SLO observation.

        With no usable observation (an idle lane, or one that has not
        yet filled a rate window) the target goes permissive instead of
        keeping a stale setpoint.
        """
        self.last_tail_s = tail_latency_s
        if (
            observed_rate is None
            or observed_rate <= 0
            or tail_latency_s is None
            or tail_latency_s <= 0
        ):
            self.min_rate = _RATE_FLOOR
            self.max_rate = float("inf")
            return
        low, high = _PRESSURE_BOUNDS
        pressure = min(max(tail_latency_s / self.comfort_s, low), high)
        avg = max(observed_rate * pressure, _RATE_FLOOR)
        self.avg_rate = avg
        self.min_rate = avg * (1.0 - self.tolerance)
        self.max_rate = avg * (1.0 + self.tolerance)

    @property
    def half_width(self) -> float:
        return (self.max_rate - self.min_rate) / 2.0

    def out_of_window(self, rate: float) -> bool:
        """Adaptation trigger — asymmetric windows use classification."""
        return self.classify(rate) is not Satisfaction.ACHIEVE

    def classify(self, rate: float) -> Satisfaction:
        if rate < self.min_rate:
            return Satisfaction.UNDERPERF
        if rate > self.max_rate:
            return Satisfaction.OVERPERF
        return Satisfaction.ACHIEVE

    def normalized_performance(self, rate: float) -> float:
        """Same ``min(g, h)/g`` shape the planners expect (and compute
        inline on the vector path — the formulas must stay in lockstep).
        """
        if rate < 0:
            raise ConfigurationError("negative rate")
        return min(self.avg_rate, rate) / self.avg_rate
