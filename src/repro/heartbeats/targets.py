"""Performance-target windows and satisfaction classification.

The paper gives each application a target window ``[t.min, t.max]``
around a center ``t.avg`` (e.g. 50 % ± 5 % of the maximum achievable
heartbeat rate).  Adaptation triggers when the observed rate leaves the
window (``|rate − t.avg| > (t.max − t.min)/2``, Algorithm 1 line 7), and
the MP-HARS decision table (Table 4.3) classifies each application as
*underperforming*, *achieving*, or *overperforming*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Satisfaction(enum.Enum):
    """How an observed rate relates to the target window."""

    UNDERPERF = "underperf"
    ACHIEVE = "achieve"
    OVERPERF = "overperf"


@dataclass(frozen=True)
class PerformanceTarget:
    """A target window in heartbeats per second.

    ``avg`` is the normalization point ``g`` of the paper's normalized
    performance ``min(g, h)/g``.
    """

    min_rate: float
    avg_rate: float
    max_rate: float

    def __post_init__(self) -> None:
        if not 0 < self.min_rate <= self.avg_rate <= self.max_rate:
            raise ConfigurationError(
                f"invalid target window ({self.min_rate}, {self.avg_rate}, "
                f"{self.max_rate})"
            )

    @classmethod
    def fraction_of(
        cls, max_achievable: float, fraction: float, tolerance: float = 0.05
    ) -> "PerformanceTarget":
        """Build the paper's targets: ``fraction ± tolerance`` of the
        maximum achievable rate (default target 50 % ± 5 %, high target
        75 % ± 5 %)."""
        if max_achievable <= 0:
            raise ConfigurationError("max achievable rate must be positive")
        if not 0 < fraction <= 1:
            raise ConfigurationError("fraction must be in (0, 1]")
        if not 0 <= tolerance < fraction:
            raise ConfigurationError("tolerance must be in [0, fraction)")
        return cls(
            min_rate=(fraction - tolerance) * max_achievable,
            avg_rate=fraction * max_achievable,
            max_rate=(fraction + tolerance) * max_achievable,
        )

    @property
    def half_width(self) -> float:
        """``(t.max − t.min)/2`` — the adaptation trigger threshold."""
        return (self.max_rate - self.min_rate) / 2.0

    def out_of_window(self, rate: float) -> bool:
        """Algorithm 1 line 7: does the rate call for adaptation?"""
        return abs(rate - self.avg_rate) > self.half_width

    def classify(self, rate: float) -> Satisfaction:
        """Satisfaction class for Table 4.3 and the behaviour traces."""
        if rate < self.min_rate:
            return Satisfaction.UNDERPERF
        if rate > self.max_rate:
            return Satisfaction.OVERPERF
        return Satisfaction.ACHIEVE

    def normalized_performance(self, rate: float) -> float:
        """The paper's ``min(g, h)/g`` with ``g = t.avg``.

        Overperformance is capped at 1 — "there is no benefit in
        overperformance" (Section 3.1.3).
        """
        if rate < 0:
            raise ConfigurationError("negative rate")
        return min(self.avg_rate, rate) / self.avg_rate
