"""Load-tracking constants and helpers for the GTS scheduler model.

Linux's big.LITTLE Global Task Scheduling migrates tasks between the
clusters by comparing each task's tracked load against two thresholds:
an *up-migration* threshold (heavy tasks move to big) and a
*down-migration* threshold (light tasks move to little).  The tracked
signal itself is the exponentially-decayed runnable demand maintained in
:meth:`repro.sim.thread.SimThread.update_load`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Load above which a task prefers the big cluster (fraction of full).
UP_MIGRATION_THRESHOLD = 0.80

#: Load below which a task prefers the little cluster.
DOWN_MIGRATION_THRESHOLD = 0.25


def validate_thresholds(up: float, down: float) -> None:
    """Ensure a (down, up) threshold pair is sane."""
    if not 0.0 <= down < up <= 1.0:
        raise ConfigurationError(
            f"migration thresholds must satisfy 0 <= down < up <= 1, "
            f"got down={down}, up={up}"
        )


def preferred_cluster(load: float, current: str, up: float, down: float) -> str:
    """Which cluster a task with ``load`` prefers.

    Tasks between the thresholds stay where they are (hysteresis).
    """
    if load >= up:
        return "big"
    if load <= down:
        return "little"
    return current
