"""Linux HMP Global Task Scheduling (GTS) model.

GTS tracks per-task load and migrates heavy tasks to the big cluster and
light tasks to the little cluster.  Crucially — and this is the baseline
pathology the paper builds on (Section 4.1.1) — GTS keeps CPU-intensive
tasks on the big cluster even when it is oversubscribed: eight hungry
threads time-share four big cores while the little cores idle.

Within the preferred cluster the model load-balances by spreading
threads across the allowed cores evenly, preferring a thread's current
core on ties to avoid gratuitous migration.

Per-thread affinity and per-app cpusets are honoured, so the same class
also serves HARS's pinned placement: once HARS restricts a thread to one
cluster's allocated cores, the up/down migration logic has no freedom
left and the class degrades to a within-set load balancer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.errors import SchedulingError
from repro.platform.cluster import BIG, LITTLE
from repro.sched.base import Placement, Scheduler
from repro.sched.load_tracking import (
    DOWN_MIGRATION_THRESHOLD,
    UP_MIGRATION_THRESHOLD,
    preferred_cluster,
    validate_thresholds,
)
from repro.sim.thread import SimThread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class GtsScheduler(Scheduler):
    """Load-threshold cluster selection + within-cluster balancing."""

    def __init__(
        self,
        up_threshold: float = UP_MIGRATION_THRESHOLD,
        down_threshold: float = DOWN_MIGRATION_THRESHOLD,
    ):
        validate_thresholds(up_threshold, down_threshold)
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    #: Floor weight so even a freshly-idle thread occupies queue space.
    MIN_TASK_WEIGHT = 0.1

    def place(self, sim: "Simulation") -> Placement:
        online = sim.machine.online_core_ids()
        placement: Placement = {}
        # Run-queue weight per core: the balancer spreads *load*, not
        # thread count (CFS load balancing), so a heavy stage thread is
        # not stuck sharing a core with another heavy one while light
        # threads underuse a neighbour.
        load_counts: Dict[int, float] = {core: 0.0 for core in online}

        for app in sim.apps:
            if app.is_done():
                continue
            for thread in app.threads:
                if not app.model.wants_cpu(thread.local_index):
                    continue
                allowed = app.allowed_cores(thread, online)
                core = self._pick_core(sim, thread, allowed, load_counts)
                placement.setdefault(core, []).append(thread)
                load_counts[core] += max(thread.load, self.MIN_TASK_WEIGHT)
                thread.current_core = core
        return placement

    # -- internals -----------------------------------------------------------

    def _pick_core(
        self,
        sim: "Simulation",
        thread: SimThread,
        allowed: frozenset,
        load_counts: Dict[int, int],
    ) -> int:
        big_cores = sorted(
            c for c in allowed if sim.machine.spec.big.contains_core(c)
        )
        little_cores = sorted(
            c for c in allowed if sim.machine.spec.little.contains_core(c)
        )
        if not big_cores and not little_cores:
            raise SchedulingError(f"{thread.key()}: no allowed online cores")

        candidates: List[int]
        if big_cores and little_cores:
            current = self._current_cluster(sim, thread)
            desired = preferred_cluster(
                thread.load, current, self.up_threshold, self.down_threshold
            )
            candidates = big_cores if desired == BIG else little_cores
        else:
            candidates = big_cores or little_cores

        # A small stickiness bonus keeps a thread on its current core
        # unless another core is meaningfully lighter (migration cost).
        return min(
            candidates,
            key=lambda c: (
                load_counts[c] - (0.05 if c == thread.current_core else 0.0),
                c,
            ),
        )

    def _current_cluster(self, sim: "Simulation", thread: SimThread) -> str:
        if thread.current_core is None:
            return BIG  # fresh hungry tasks start on big (fork placement)
        if sim.machine.spec.big.contains_core(thread.current_core):
            return BIG
        return LITTLE
