"""Linux HMP Global Task Scheduling (GTS) model.

GTS tracks per-task load and migrates heavy tasks to the big cluster and
light tasks to the little cluster.  Crucially — and this is the baseline
pathology the paper builds on (Section 4.1.1) — GTS keeps CPU-intensive
tasks on the big cluster even when it is oversubscribed: eight hungry
threads time-share four big cores while the little cores idle.

Within the preferred cluster the model load-balances by spreading
threads across the allowed cores evenly, preferring a thread's current
core on ties to avoid gratuitous migration.

Per-thread affinity and per-app cpusets are honoured, so the same class
also serves HARS's pinned placement: once HARS restricts a thread to one
cluster's allocated cores, the up/down migration logic has no freedom
left and the class degrades to a within-set load balancer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.errors import SchedulingError
from repro.platform.cluster import BIG, LITTLE
from repro.sched.base import Placement, Scheduler
from repro.sched.load_tracking import (
    DOWN_MIGRATION_THRESHOLD,
    UP_MIGRATION_THRESHOLD,
    preferred_cluster,
    validate_thresholds,
)
from repro.sim.thread import SimThread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class GtsScheduler(Scheduler):
    """Load-threshold cluster selection + within-cluster balancing."""

    def __init__(
        self,
        up_threshold: float = UP_MIGRATION_THRESHOLD,
        down_threshold: float = DOWN_MIGRATION_THRESHOLD,
        cache_partitions: bool = False,
    ):
        validate_thresholds(up_threshold, down_threshold)
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        #: Memoize each thread's allowed-core big/little partition.  The
        #: partition depends only on (affinity, cpuset, online set); all
        #: three are replaced wholesale when they change, so cache
        #: entries validate by object identity.
        self.cache_partitions = cache_partitions

    #: Floor weight so even a freshly-idle thread occupies queue space.
    MIN_TASK_WEIGHT = 0.1

    def place(self, sim: "Simulation") -> Placement:
        online = sim.machine.online_core_ids()
        placement: Placement = {}
        # Run-queue weight per core: the balancer spreads *load*, not
        # thread count (CFS load balancing), so a heavy stage thread is
        # not stuck sharing a core with another heavy one while light
        # threads underuse a neighbour.
        load_counts: Dict[int, float] = {core: 0.0 for core in online}
        use_cache = self.cache_partitions
        min_weight = self.MIN_TASK_WEIGHT

        for app in sim.apps:
            if app.is_done() or app.halted:
                continue
            cpuset = app.cpuset
            model = app.model
            for thread in app.threads:
                if not model.wants_cpu(thread.local_index):
                    continue
                if use_cache:
                    entry = thread._gts_entry
                    if (
                        entry is None
                        or entry[0] is not thread.affinity
                        or entry[1] is not cpuset
                        or entry[2] is not online
                    ):
                        big_cores, little_cores = self._partition(
                            sim, app.allowed_cores(thread, online)
                        )
                        # A fully-pinned thread (HARS placement) has one
                        # allowed core: the pick is forced, so the hot
                        # path can skip the balancer entirely.
                        single = (
                            (big_cores or little_cores)[0]
                            if len(big_cores) + len(little_cores) == 1
                            else None
                        )
                        entry = (
                            thread.affinity,
                            cpuset,
                            online,
                            big_cores,
                            little_cores,
                            single,
                        )
                        thread._gts_entry = entry
                    core = entry[5]
                    if core is None:
                        core = self._pick_partitioned(
                            sim, thread, entry[3], entry[4], load_counts
                        )
                else:
                    allowed = app.allowed_cores(thread, online)
                    core = self._pick_core(sim, thread, allowed, load_counts)
                if core in placement:
                    placement[core].append(thread)
                else:
                    placement[core] = [thread]
                load = thread.load
                load_counts[core] += load if load > min_weight else min_weight
                thread.current_core = core
        return placement

    # -- internals -----------------------------------------------------------

    def _partition(
        self, sim: "Simulation", allowed: frozenset
    ) -> Tuple[List[int], List[int]]:
        big_cores = sorted(
            c for c in allowed if sim.machine.spec.big.contains_core(c)
        )
        little_cores = sorted(
            c for c in allowed if sim.machine.spec.little.contains_core(c)
        )
        return big_cores, little_cores

    def _pick_core(
        self,
        sim: "Simulation",
        thread: SimThread,
        allowed: frozenset,
        load_counts: Dict[int, int],
    ) -> int:
        big_cores, little_cores = self._partition(sim, allowed)
        return self._pick_partitioned(
            sim, thread, big_cores, little_cores, load_counts
        )

    def _pick_partitioned(
        self,
        sim: "Simulation",
        thread: SimThread,
        big_cores: List[int],
        little_cores: List[int],
        load_counts: Dict[int, float],
    ) -> int:
        if not big_cores and not little_cores:
            raise SchedulingError(f"{thread.key()}: no allowed online cores")

        candidates: List[int]
        if big_cores and little_cores:
            current = self._current_cluster(sim, thread)
            desired = preferred_cluster(
                thread.load, current, self.up_threshold, self.down_threshold
            )
            candidates = big_cores if desired == BIG else little_cores
        else:
            candidates = big_cores or little_cores

        # A small stickiness bonus keeps a thread on its current core
        # unless another core is meaningfully lighter (migration cost).
        # Manual min over the ascending candidate list: ties keep the
        # lowest core id, exactly the tuple-key min it replaces.
        current_core = thread.current_core
        best = candidates[0]
        best_score = (
            load_counts[best] - 0.05 if best == current_core else load_counts[best]
        )
        for c in candidates[1:]:
            score = load_counts[c] - 0.05 if c == current_core else load_counts[c]
            if score < best_score:
                best = c
                best_score = score
        return best

    def _current_cluster(self, sim: "Simulation", thread: SimThread) -> str:
        if thread.current_core is None:
            return BIG  # fresh hungry tasks start on big (fork placement)
        if sim.machine.spec.big.contains_core(thread.current_core):
            return BIG
        return LITTLE
