"""Scheduler interface for the simulation engine.

A scheduler's job each tick is placement: decide which core every
CPU-demanding thread runs on this tick, honouring per-thread affinity and
per-app cpusets.  The engine then divides each core's capacity fairly
among the threads placed on it.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, List

from repro.sim.thread import SimThread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation

#: A placement: core id → threads running there this tick.
Placement = Dict[int, List[SimThread]]


class Scheduler(abc.ABC):
    """Abstract OS-scheduler model."""

    @abc.abstractmethod
    def place(self, sim: "Simulation") -> Placement:
        """Place every demanding thread on a core for the coming tick.

        Implementations must respect ``thread.affinity`` and the owning
        app's cpuset (via :meth:`repro.sim.process.SimApp.allowed_cores`)
        and must update ``thread.current_core``.
        """
