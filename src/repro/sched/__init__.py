"""OS scheduler models (Linux HMP GTS and the placement interface)."""

from repro.sched.base import Placement, Scheduler
from repro.sched.gts import GtsScheduler
from repro.sched.load_tracking import (
    DOWN_MIGRATION_THRESHOLD,
    UP_MIGRATION_THRESHOLD,
    preferred_cluster,
    validate_thresholds,
)

__all__ = [
    "DOWN_MIGRATION_THRESHOLD",
    "GtsScheduler",
    "Placement",
    "Scheduler",
    "UP_MIGRATION_THRESHOLD",
    "preferred_cluster",
    "validate_thresholds",
]
