"""Seeded ACP wire chaos: drop, duplicate, reorder, corrupt, delay, tear.

:class:`AcpFaultConfig` is the control-plane counterpart of
:class:`~repro.fleet.chaos.FleetFaultConfig`: it turns wire mortality
into a configurable, exactly reproducible schedule.  Each fault kind
draws from its own *per-kind, per-session* RNG stream
(``Random(f"{seed}:{kind}:{session}")`` — PR 8's convention), so one
session's fault history never depends on another session's traffic, and
the same timeline replays over loopback, Unix socket, or HTTP: the
streams are consumed per *frame*, and the frame sequence is what the
carrier transports, not what it decides.

:class:`FaultyTransport` wraps any client transport (an object with
``exchange(line, timeout_s) -> List[str]`` and optionally
``send_torn``).  Faults map onto the failure modes the resilience layer
must absorb:

========== =================================================================
kind       what the wrapped exchange does
========== =================================================================
drop       the frame (50/50) never reaches the server, or reaches it but
           its *response* is lost — the second case is the one that makes
           the server's replay cache earn its keep: the command applied,
           the client must retry the same seq and be answered from cache
dup        the frame is delivered twice; the server's
           :class:`~repro.acp.wire.SeqWindow` applies it once and replays
           the cached response for the echo
reorder    the previous frame is re-delivered (stale, out of order) just
           before the current one; its late response is discarded
corrupt    one byte of the line is mutated in flight; the server answers
           with a typed ``bad-frame`` error the client treats as retryable
delay      the exchange stalls for ``delay_s`` before delivery
disconnect the connection tears mid-write (a partial line, no newline) —
           the server-side torn-line hardening must contain it
========== =================================================================

Daemon kill/restart is the one fault a transport wrapper cannot inject
honestly; ``kill_times_s`` carries its schedule for the process-level
harness (``scripts/acp_chaos_drill.py``) which SIGKILLs a real daemon
subprocess and restarts it against the same state dir.

A disabled config (all rates zero) must leave the wrapped transport's
bytes untouched — ``AcpClient(faults=AcpFaultConfig())`` runs are gated
bit-identical to plain loopback runs in ``tests/acp/test_chaos.py``.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.acp.client import AcpTransportError

#: Wire fault kinds, in the order their streams are consulted per frame.
ACP_FAULT_KINDS = ("drop", "dup", "reorder", "corrupt", "delay", "disconnect")

#: Rate fields of :class:`AcpFaultConfig`, aligned with the kinds above.
_RATE_FIELDS = (
    "drop_rate",
    "dup_rate",
    "reorder_rate",
    "corrupt_rate",
    "delay_rate",
    "disconnect_rate",
)


@dataclass(frozen=True)
class AcpFaultConfig:
    """Wire mortality model for one client's control-plane traffic.

    Rates are per-frame probabilities in ``[0, 1]``.  With every rate
    zero and no kill schedule the config is *disabled* and the wrapper
    must be a byte-transparent pass-through.

    Parameters
    ----------
    seed:
        Base seed of the per-kind, per-session RNG streams.
    drop_rate / dup_rate / reorder_rate / corrupt_rate / delay_rate /
    disconnect_rate:
        Per-frame probability of each fault kind.
    delay_s:
        Stall length of an injected delay.
    kill_times_s:
        Daemon SIGKILL instants (seconds into the run) for the
        process-level drill harness; ignored by the in-wire wrapper.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    disconnect_rate: float = 0.0
    delay_s: float = 0.05
    kill_times_s: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate!r}"
                )
        if self.delay_s < 0:
            raise ConfigurationError("delay_s must be >= 0")
        for at_s in self.kill_times_s:
            if at_s < 0:
                raise ConfigurationError("kill times must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether any in-wire fault can fire at all."""
        return any(getattr(self, name) > 0 for name in _RATE_FIELDS)


def _session_of(line: str) -> str:
    """The session stream a frame belongs to ('' for pre-session
    frames like hello/attach — they share one stream per kind)."""
    try:
        data = json.loads(line)
    except ValueError:
        return ""
    if isinstance(data, dict):
        sid = data.get("session_id", "")
        if isinstance(sid, str):
            return sid
    return ""


class FaultyTransport:
    """A chaos shim between :class:`~repro.acp.client.AcpClient` and a
    real transport.

    Every outgoing frame consults each fault kind's seeded stream once,
    in :data:`ACP_FAULT_KINDS` order, so the fire/no-fire timeline is a
    deterministic function of ``(config, session, frame index)`` alone
    — identical over any carrier.  ``injected`` counts fired faults per
    kind for assertions and benchmark reports.
    """

    def __init__(self, inner: Any, config: AcpFaultConfig):
        if not isinstance(config, AcpFaultConfig):
            raise ConfigurationError(
                "FaultyTransport needs an AcpFaultConfig"
            )
        self.inner = inner
        self.config = config
        self.injected: Dict[str, int] = {k: 0 for k in ACP_FAULT_KINDS}
        self._streams: Dict[Tuple[str, str], random.Random] = {}
        self._previous_line: Optional[str] = None

    def _stream(self, kind: str, session: str) -> random.Random:
        key = (kind, session)
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(f"{self.config.seed}:{kind}:{session}")
            self._streams[key] = stream
        return stream

    def _fire(self, kind: str, rate: float, session: str) -> bool:
        # Draw even at rate 0?  No: a zero rate never consults the
        # stream, and a disabled config therefore builds no RNG at all
        # — but a *nonzero* rate draws on every frame, fired or not,
        # keeping that kind's timeline aligned across retries.
        if rate <= 0.0:
            return False
        fired = self._stream(kind, session).random() < rate
        if fired:
            self.injected[kind] += 1
        return fired

    def exchange(self, line: str, timeout_s: float) -> List[str]:
        config = self.config
        if not config.enabled:
            return self.inner.exchange(line, timeout_s)
        session = _session_of(line)
        previous, self._previous_line = self._previous_line, line

        if self._fire("drop", config.drop_rate, session):
            if self._stream("drop", session).random() < 0.5:
                # Request-side loss: the server never saw it.
                raise AcpTransportError("chaos: request dropped in flight")
            # Response-side loss: applied server-side, answer lost —
            # the retry must be served from the replay cache.
            try:
                self.inner.exchange(line, timeout_s)
            except (OSError, EOFError):
                pass
            raise AcpTransportError("chaos: response dropped in flight")

        if self._fire("disconnect", config.disconnect_rate, session):
            cut = 1 + self._stream("disconnect", session).randrange(
                max(1, len(line) - 1)
            )
            torn = getattr(self.inner, "send_torn", None)
            if torn is not None:
                try:
                    torn(line[:cut], timeout_s)
                except (OSError, EOFError):
                    pass
            raise AcpTransportError("chaos: connection torn mid-write")

        if self._fire("delay", config.delay_rate, session):
            time.sleep(min(config.delay_s, max(0.0, timeout_s * 0.5)))

        if self._fire("reorder", config.reorder_rate, session) and previous:
            # The previous frame arrives again, late and out of order;
            # whatever the server says to it is lost to the void.
            try:
                self.inner.exchange(previous, timeout_s)
            except (OSError, EOFError):
                pass

        deliver = line
        if self._fire("corrupt", config.corrupt_rate, session):
            stream = self._stream("corrupt", session)
            pos = stream.randrange(len(deliver)) if deliver else 0
            garble = chr(33 + stream.randrange(90))
            deliver = deliver[:pos] + garble + deliver[pos + 1 :]

        if self._fire("dup", config.dup_rate, session):
            # First copy delivered and discarded; the caller gets the
            # echo's response — the dedup cache must make them equal.
            try:
                self.inner.exchange(deliver, timeout_s)
            except (OSError, EOFError):
                pass
        return self.inner.exchange(deliver, timeout_s)

    def send_torn(self, prefix: str, timeout_s: float) -> None:
        torn = getattr(self.inner, "send_torn", None)
        if torn is None:
            raise AcpTransportError(
                "wrapped transport cannot tear a write"
            )
        torn(prefix, timeout_s)
