"""Daemon shells around :class:`~repro.acp.server.AcpServer`.

Two transports carry the same JSONL frames the loopback client speaks:

* **Unix socket** — one frame per line; each line is answered with the
  response batch (event frames, then the terminating non-event frame).
  A connection may send any number of lines; clients usually open one
  per request.
* **HTTP** — ``POST /v1/frames`` with a JSONL body answers with a JSONL
  body; ``GET /metrics`` serves live Prometheus text for scrapers;
  ``GET /v1/sessions`` serves the registry snapshot as plain JSON.

Both run on daemon threads inside :class:`AcpDaemon`, so one process
serves both endpoints over a single session registry.  A client
disconnect (mid-run or otherwise) only closes that connection: sessions
live in the registry, not in the socket, which is what lets a crashed
client reattach.
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import ConfigurationError
from repro.acp.server import AcpServer
from repro.acp import wire


class _UnixHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        acp = self.server.acp
        for raw in self.rfile:
            if not raw.endswith(b"\n"):
                # A client died mid-write: the trailing line is torn.
                # Discard it — half a frame must never reach dispatch —
                # count it, and tell whoever is still listening.
                acp.note_corrupt_frame()
                self._reply(
                    [
                        acp.error_line(
                            "",
                            "torn trailing line discarded "
                            f"({len(raw)} bytes, no newline)",
                            code=wire.ERR_TORN_LINE,
                        )
                    ]
                )
                return
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                acp.note_corrupt_frame()
                if not self._reply(
                    [
                        acp.error_line(
                            "",
                            "undecodable frame bytes (not utf-8)",
                            code=wire.ERR_BAD_FRAME,
                        )
                    ]
                ):
                    return
                continue
            if not line:
                continue
            if not self._reply(acp.handle_line(line)):
                return  # the client went away; the sessions did not

    def _reply(self, lines) -> bool:
        try:
            for out in lines:
                self.wfile.write((out + "\n").encode("utf-8"))
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False


class _UnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, path: str, acp: AcpServer):
        self.acp = acp
        super().__init__(path, _UnixHandler)


class _HttpHandler(BaseHTTPRequestHandler):
    def log_message(self, *args) -> None:  # keep the daemon's stdout clean
        pass

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        acp: AcpServer = self.server.acp
        if self.path == "/metrics":
            self._send(
                200,
                "text/plain; version=0.0.4",
                acp.metrics_text().encode("utf-8"),
            )
        elif self.path == "/v1/sessions":
            frames = acp.handle_frame(
                wire.make_frame("sessions", "", 0, {})
            )
            self._send(
                200,
                "application/json",
                json.dumps(frames[-1].payload).encode("utf-8"),
            )
        else:
            self._send(404, "text/plain", b"not found\n")

    def do_POST(self) -> None:
        if self.path != "/v1/frames":
            self._send(404, "text/plain", b"not found\n")
            return
        acp: AcpServer = self.server.acp
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            acp.note_corrupt_frame()
            self._send(400, "text/plain", b"bad Content-Length\n")
            return
        try:
            body = self.rfile.read(length).decode("utf-8")
        except UnicodeDecodeError:
            acp.note_corrupt_frame()
            out = [
                acp.error_line(
                    "",
                    "undecodable frame bytes (not utf-8)",
                    code=wire.ERR_BAD_FRAME,
                )
            ]
            self._send(
                200,
                "application/jsonl",
                ("\n".join(out) + "\n").encode("utf-8"),
            )
            return
        out = []
        for line in body.splitlines():
            if line.strip():
                out.extend(acp.handle_line(line))
        self._send(
            200, "application/jsonl", ("\n".join(out) + "\n").encode("utf-8")
        )


class _HttpServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, acp: AcpServer):
        self.acp = acp
        super().__init__(address, _HttpHandler)


class AcpDaemon:
    """One control plane, optionally exposed on both transports."""

    def __init__(
        self,
        acp: Optional[AcpServer] = None,
        socket_path: Optional[str] = None,
        http_port: Optional[int] = None,
        http_host: str = "127.0.0.1",
        state_dir: Optional[str] = None,
        quantum_s: Optional[float] = None,
        lease_ttl_s: Optional[float] = None,
    ):
        if socket_path is None and http_port is None:
            raise ConfigurationError(
                "the daemon needs a socket path, an http port, or both"
            )
        if acp is None:
            kwargs = {"state_dir": state_dir, "threaded": True}
            if quantum_s is not None:
                kwargs["quantum_s"] = quantum_s
            if lease_ttl_s is not None:
                kwargs["lease_ttl_s"] = lease_ttl_s
            acp = AcpServer(**kwargs)
        self.acp = acp
        self.socket_path = socket_path
        self._http_host = http_host
        self._http_port_requested = http_port
        #: The bound HTTP port (resolves ``http_port=0`` after start()).
        self.http_port: Optional[int] = None
        self._unix: Optional[_UnixServer] = None
        self._http: Optional[_HttpServer] = None
        self._threads: list = []

    def start(self) -> None:
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)  # a stale socket from a crash
            self._unix = _UnixServer(self.socket_path, self.acp)
            thread = threading.Thread(
                target=self._unix.serve_forever,
                name="acp-unix",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self._http_port_requested is not None:
            self._http = _HttpServer(
                (self._http_host, self._http_port_requested), self.acp
            )
            self.http_port = self._http.server_address[1]
            thread = threading.Thread(
                target=self._http.serve_forever,
                name="acp-http",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def endpoints(self) -> list:
        """The endpoint strings clients can attach to, in start order."""
        out = []
        if self.socket_path is not None:
            out.append(f"unix://{self.socket_path}")
        if self.http_port is not None:
            out.append(f"http://{self._http_host}:{self.http_port}")
        return out

    def stop(self) -> None:
        self.acp.shutdown()
        for server in (self._unix, self._http):
            if server is not None:
                server.shutdown()
                server.server_close()
        if self.socket_path is not None and os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def __enter__(self) -> "AcpDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
