"""The Adaptation Control Plane: session registry + frame dispatch.

:class:`AcpServer` is the transport-agnostic core of the daemon.  It
speaks exactly one language — :mod:`repro.acp.wire` frames in, frames
out — so every transport (the in-process loopback, the Unix socket, the
HTTP endpoint in :mod:`repro.acp.transport`) is a thin shell around
:meth:`AcpServer.handle_line`.

Responsibilities:

* **Session registry** — attach/detach of managed systems, each an
  :class:`~repro.acp.session.AcpSession` with a server-assigned id.
* **Crash quarantine** — an exception out of one session marks *that
  session* quarantined and answers the request with an ``error`` frame;
  the daemon and its other tenants keep running.
* **Checkpoint persistence** — with a ``state_dir``, every session's
  :class:`~repro.supervision.CheckpointStore` is dumped atomically to
  ``<state_dir>/<session_id>.json``; on construction the server scans
  the directory with :meth:`CheckpointStore.recover`, so a restarted
  daemon offers the surviving snapshots for warm re-attachment (and
  surfaces a ledger entry for every torn file it had to cold-start
  past).
* **Execution modes** — ``threaded=False`` (the loopback default) runs
  sessions inline on the caller's thread, deterministically;
  ``threaded=True`` (the daemon default) drives ``run`` requests on a
  background thread per session so control frames keep flowing while a
  tenant executes.
* **Observability** — :meth:`metrics_text` renders live Prometheus
  text: control-plane counters plus every tenant's telemetry snapshot,
  stamped with a ``session`` label.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.supervision import CheckpointStore
from repro.acp import wire
from repro.acp.session import (
    DEFAULT_QUANTUM_S,
    FINISHED,
    ORPHANED,
    QUARANTINED,
    RUNNING,
    AcpSession,
    resolve_policy,
)

#: Simulated seconds a background driver advances between stop-flag
#: checks: coarse enough to amortize the loop, fine enough that detach
#: and shutdown respond within a fraction of a second of wall time.
_DRIVE_CHUNK_QUANTA = 10

#: Wall-clock seconds a control command (swap/checkpoint) may wait for a
#: busy session's next segment boundary before the server gives up.
_COMMAND_TIMEOUT_S = 30.0

#: Default wall-clock seconds a ``result`` request waits for a threaded
#: session to finish.
_RESULT_TIMEOUT_S = 600.0

#: Wall-clock seconds between lease sweeps of the background reaper a
#: threaded server starts once its first leased session attaches.
_REAPER_INTERVAL_S = 0.25


class _Refusal(ConfigurationError):
    """A refusal that carries a machine-readable wire error code."""

    def __init__(self, message: str, code: str = ""):
        super().__init__(message)
        self.code = code


class _Lease:
    """One session's liveness contract: refreshed by any client frame,
    expired when the TTL elapses with none."""

    __slots__ = ("ttl_s", "deadline")

    def __init__(self, ttl_s: float, now: float):
        self.ttl_s = ttl_s
        self.deadline = now + ttl_s

    def touch(self, now: float) -> None:
        self.deadline = now + self.ttl_s

    def expired(self, now: float) -> bool:
        return now >= self.deadline


class AcpServer:
    """Frame-in/frame-out control plane; see the module docstring."""

    def __init__(
        self,
        state_dir: Optional[str] = None,
        quantum_s: float = DEFAULT_QUANTUM_S,
        threaded: bool = False,
        lease_ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if lease_ttl_s is not None and lease_ttl_s <= 0:
            raise ConfigurationError("lease_ttl_s must be positive (or None)")
        self.state_dir = state_dir
        self.quantum_s = quantum_s
        self.threaded = threaded
        #: Default lease TTL granted at attach (None = sessions never
        #: expire; an attach payload can still request one).
        self.lease_ttl_s = lease_ttl_s
        #: Injectable monotonic clock so lease tests control time.
        self.clock = clock
        self._sessions: Dict[str, AcpSession] = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._stop_flags: Dict[str, threading.Event] = {}
        self._finished: Dict[str, threading.Event] = {}
        #: Per-session seq windows (kept after detach/orphan so retried
        #: frames still replay their cached responses).
        self._windows: Dict[str, wire.SeqWindow] = {}
        self._leases: Dict[str, _Lease] = {}
        #: Final status of lease-expired sessions, by id.
        self._orphaned: Dict[str, Dict[str, Any]] = {}
        #: Canonical attach payload per session id: a retried attach
        #: (same id, same payload) replays the original response
        #: instead of refusing with "already attached".
        self._attach_fingerprints: Dict[str, str] = {}
        self._attach_responses: Dict[str, List[wire.Frame]] = {}
        self._reaper: Optional[threading.Thread] = None
        self._reaper_stop = threading.Event()
        self._lock = threading.RLock()
        self._counter = 0
        self._seq = 0
        self.frames_in = 0
        self.frames_out = 0
        #: Resilience counters, surfaced on ``/metrics``.
        self.retries_seen = 0
        self.dedup_hits = 0
        self.lease_expirations = 0
        self.frames_corrupt = 0
        #: Checkpoint stores recovered from ``state_dir`` at startup,
        #: keyed by the session id they were dumped under.
        self.recovered: Dict[str, CheckpointStore] = {}
        #: Cold-start fallback entries from :meth:`CheckpointStore.recover`.
        self.ledger: List[Dict[str, Any]] = []
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
            for name in sorted(os.listdir(state_dir)):
                if not name.endswith(".json"):
                    continue
                store = CheckpointStore.recover(os.path.join(state_dir, name))
                self.recovered[name[: -len(".json")]] = store
                self.ledger.extend(store.ledger)

    # -- transport surface ----------------------------------------------------

    def handle_line(self, line: str) -> List[str]:
        """One request line → encoded response lines (error frames on
        malformed input; the transport never sees an exception)."""
        try:
            frame = wire.decode_frame(line)
        except ConfigurationError as exc:
            self.note_corrupt_frame()
            return [
                wire.encode_frame(
                    self._error("", str(exc), code=wire.ERR_BAD_FRAME)
                )
            ]
        return [wire.encode_frame(f) for f in self.handle_frame(frame)]

    def handle_frame(self, frame: wire.Frame) -> List[wire.Frame]:
        """Dispatch one request frame; always returns at least one
        non-event frame (the response terminator).

        At-least-once delivery discipline: frames addressed to a session
        pass its :class:`~repro.acp.wire.SeqWindow` first — a duplicate
        seq replays the cached response (never a second application), a
        stale or colliding seq gets a typed error, and an in-flight seq
        is refused retryably.  Responses (error responses included) are
        recorded so the next re-delivery is a pure replay.
        """
        self.frames_in += 1
        attempt = frame.extra.get("attempt")
        if (
            isinstance(attempt, int)
            and not isinstance(attempt, bool)
            and attempt > 1
        ):
            with self._lock:
                self.retries_seen += 1
        self.reap_expired()
        window = self._windows.get(frame.session_id) if frame.session_id else None
        if window is not None:
            verdict, cached = window.admit(frame.seq, frame.type)
            if verdict == wire.SEQ_DUPLICATE:
                with self._lock:
                    self.dedup_hits += 1
                self.frames_out += len(cached)
                return cached
            if verdict != wire.SEQ_NEW:
                error = self._seq_refusal(frame, verdict)
                self.frames_out += 1
                return [error]
        self._touch_lease(frame.session_id)
        try:
            frames = self._dispatch(frame)
        except ConfigurationError as exc:
            frames = [
                self._error(
                    frame.session_id, str(exc), code=getattr(exc, "code", "")
                )
            ]
        except Exception as exc:  # fuzz containment: never an unhandled
            frames = [  # exception out of the dispatch layer
                self._error(
                    frame.session_id,
                    f"internal error: {type(exc).__name__}: {exc}",
                    code=wire.ERR_INTERNAL,
                )
            ]
        if window is not None:
            window.record(frame.seq, frame.type, frames)
        self.frames_out += len(frames)
        return frames

    def _seq_refusal(self, frame: wire.Frame, verdict: str) -> wire.Frame:
        sid = frame.session_id
        if verdict == wire.SEQ_PENDING:
            return self._error(
                sid,
                f"seq {frame.seq} is still being applied; retry for the "
                "cached response",
                code=wire.ERR_IN_FLIGHT,
            )
        if verdict == wire.SEQ_MISMATCH:
            return self._error(
                sid,
                f"seq {frame.seq} was already used by a different "
                f"request type (got {frame.type!r})",
                code=wire.ERR_STALE_SEQ,
            )
        return self._error(
            sid,
            f"stale seq {frame.seq} on session {sid} (window is past it "
            "and no cached response remains)",
            code=wire.ERR_STALE_SEQ,
        )

    def note_corrupt_frame(self) -> None:
        """Count a line that never parsed into a frame (corruption or a
        torn write) — transports call this on their own decode failures
        too, so ``acp_frames_corrupt_total`` covers every carrier."""
        with self._lock:
            self.frames_corrupt += 1

    def error_line(
        self, session_id: str, message: str, code: str = ""
    ) -> str:
        """An encoded error frame, for transports answering failures
        they detected themselves (torn lines, undecodable bytes)."""
        return wire.encode_frame(self._error(session_id, message, code=code))

    def _dispatch(self, frame: wire.Frame) -> List[wire.Frame]:
        handler = _HANDLERS.get(frame.type)
        if handler is None:
            raise ConfigurationError(
                f"unknown request frame type {frame.type!r}"
            )
        return handler(self, frame)

    # -- request handlers ------------------------------------------------------

    def _handle_hello(self, frame: wire.Frame) -> List[wire.Frame]:
        from repro import __version__

        with self._lock:
            count = len(self._sessions)
        return [
            self._respond(
                "welcome",
                frame.session_id,
                {
                    "server": "hars-repro-acp",
                    "version": __version__,
                    "schema_version": wire.WIRE_SCHEMA_VERSION,
                    "sessions": count,
                },
            )
        ]

    def _handle_attach(self, frame: wire.Frame) -> List[wire.Frame]:
        payload = frame.payload
        version = payload["version"]
        shapes = [wire.shape_from_wire(s) for s in payload["shapes"]]
        config = wire.config_from_wire(payload["config"])
        stream_events = bool(payload.get("stream_events", False))
        ttl = payload.get("lease_ttl_s", self.lease_ttl_s)
        if ttl is not None and (
            not isinstance(ttl, (int, float))
            or isinstance(ttl, bool)
            or ttl <= 0
        ):
            raise ConfigurationError(
                "attach: 'lease_ttl_s' must be a positive number"
            )
        fingerprint = json.dumps(payload, sort_keys=True, default=repr)
        with self._lock:
            self._counter += 1
            session_id = payload.get("session_id") or f"s{self._counter:04d}"
            if not isinstance(session_id, str):
                raise ConfigurationError("attach: 'session_id' must be a string")
            if session_id in self._sessions:
                # A retried attach (the first response was lost in
                # delivery) replays the original answer instead of
                # refusing — idempotency for explicitly named sessions.
                if self._attach_fingerprints.get(session_id) == fingerprint:
                    self.dedup_hits += 1
                    return list(self._attach_responses[session_id])
                raise ConfigurationError(
                    f"session id {session_id!r} is already attached"
                )
            resume_store = self._resume_store_for(payload, session_id)
            try:
                session = AcpSession(
                    session_id,
                    version,
                    shapes,
                    config,
                    stream_events=stream_events,
                    resume_store=resume_store,
                    quantum_s=self.quantum_s,
                )
            except ConfigurationError:
                raise
            except Exception as exc:  # a broken attach must not kill the daemon
                raise ConfigurationError(
                    f"attach failed: {type(exc).__name__}: {exc}"
                ) from None
            self._sessions[session_id] = session
            self._windows[session_id] = wire.SeqWindow()
            self._orphaned.pop(session_id, None)
            if ttl is not None:
                self._leases[session_id] = _Lease(float(ttl), self.clock())
                self._ensure_reaper()
        status = dict(session.status())
        if ttl is not None:
            status["lease_ttl_s"] = float(ttl)
        if resume_store is not None:
            status["resumed_from"] = sorted(resume_store.controller_ids)
            status["resume_ledger"] = list(resume_store.ledger)
        response = [self._respond("attached", session_id, status)]
        with self._lock:
            self._attach_fingerprints[session_id] = fingerprint
            self._attach_responses[session_id] = list(response)
        return response

    def _resume_store_for(
        self, payload: Dict[str, Any], session_id: str
    ) -> Optional[CheckpointStore]:
        resume = payload.get("resume")
        if resume is None or resume is False:
            return None
        key = session_id if resume is True else resume
        if not isinstance(key, str):
            raise ConfigurationError(
                "attach: 'resume' must be true or a session id"
            )
        store = self.recovered.get(key)
        if store is None and self.state_dir is not None:
            store = CheckpointStore.recover(
                os.path.join(self.state_dir, f"{key}.json")
            )
            self.recovered[key] = store
            self.ledger.extend(store.ledger)
        if store is None:
            raise ConfigurationError(
                f"attach: no recovered checkpoint store for {key!r} "
                "(server has no state_dir)"
            )
        return store

    def _handle_run(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        seconds = frame.payload.get("seconds")
        if seconds is not None and (
            not isinstance(seconds, (int, float)) or isinstance(seconds, bool)
        ):
            raise ConfigurationError("run: 'seconds' must be a number")
        if self.threaded and seconds is None:
            self._start_driver(session)
            return [
                self._respond("advanced", session.session_id, session.status())
            ]
        if self._thread_alive(session.session_id):
            raise ConfigurationError(
                f"session {session.session_id} is already running"
            )
        status = self._guarded(session, lambda: session.advance(seconds))
        self._persist(session)
        return [self._respond("advanced", session.session_id, status)]

    def _handle_swap(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        policy = frame.payload["policy"]
        resolve_policy(policy)  # reject a bad name before it reaches the queue
        adapt_every = frame.payload.get("adapt_every")
        result = self._call_on_session(
            session, lambda: session.swap_policy(policy, adapt_every)
        )
        return [self._respond("swap-ack", session.session_id, result)]

    def _handle_checkpoint(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        result = self._call_on_session(session, session.checkpoint_now)
        self._persist(session)
        return [
            wire.checkpoint_frame(
                session.session_id,
                self._next_seq(),
                result["time_s"],
                result["store"],
            )
        ]

    def _handle_result(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        timeout = frame.payload.get("timeout_s")
        if timeout is None:
            timeout = _RESULT_TIMEOUT_S
        if self._thread_alive(session.session_id):
            finished = self._finished[session.session_id]
            if not finished.wait(float(timeout)):
                raise ConfigurationError(
                    f"session {session.session_id} did not finish within "
                    f"{timeout}s"
                )
        elif session.state not in (FINISHED, QUARANTINED):
            # Inline mode: a result request drives the run to completion,
            # exactly like the in-process runner would.
            self._guarded(session, lambda: session.advance(None))
            self._persist(session)
        if session.state == QUARANTINED:
            raise ConfigurationError(
                f"session {session.session_id} is quarantined: {session.error}"
            )
        payload = session.result_payload()
        return [
            wire.make_frame(
                "result", session.session_id, self._next_seq(), payload
            )
        ]

    def _handle_events(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        since = frame.payload.get("since_seq", 0)
        if not isinstance(since, int) or isinstance(since, bool):
            raise ConfigurationError("events: 'since_seq' must be an int")
        batch = [f for f in session.events if f.seq > since]
        last = batch[-1].seq if batch else since
        return [
            *batch,
            self._respond(
                "event-batch",
                session.session_id,
                {"count": len(batch), "last_seq": last},
            ),
        ]

    def _handle_sessions(self, frame: wire.Frame) -> List[wire.Frame]:
        with self._lock:
            statuses = []
            for sid in sorted(self._sessions):
                status = dict(self._sessions[sid].status())
                window = self._windows.get(sid)
                if window is not None:
                    # A reconnecting client adopts this so its next seq
                    # stays ahead of the session's window.
                    status["last_seq"] = window.last_seq
                lease = self._leases.get(sid)
                if lease is not None:
                    status["lease_expires_in_s"] = max(
                        0.0, lease.deadline - self.clock()
                    )
                statuses.append(status)
            orphaned = [
                dict(self._orphaned[sid]) for sid in sorted(self._orphaned)
            ]
        return [
            self._respond(
                "session-list",
                frame.session_id,
                {
                    "sessions": statuses,
                    "orphaned": orphaned,
                    "recovered": sorted(self.recovered),
                    "ledger": list(self.ledger),
                },
            )
        ]

    def _handle_metrics(self, frame: wire.Frame) -> List[wire.Frame]:
        return [
            self._respond(
                "metrics-text", frame.session_id, {"text": self.metrics_text()}
            )
        ]

    def _handle_detach(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        stop = self._stop_flags.get(session.session_id)
        if stop is not None:
            stop.set()
        thread = self._threads.get(session.session_id)
        if thread is not None and thread.is_alive():
            thread.join(timeout=_COMMAND_TIMEOUT_S)
        session.detach()
        self._persist(session)
        with self._lock:
            # The seq window survives on purpose: a retried detach (its
            # response lost in delivery) replays "detached" from cache
            # instead of failing with "no such session".
            self._sessions.pop(session.session_id, None)
            self._threads.pop(session.session_id, None)
            self._stop_flags.pop(session.session_id, None)
            self._finished.pop(session.session_id, None)
            self._leases.pop(session.session_id, None)
        return [
            self._respond(
                "detached",
                session.session_id,
                {"session_id": session.session_id, "state": session.state},
            )
        ]

    # -- execution plumbing ----------------------------------------------------

    def _session(self, session_id: str) -> AcpSession:
        with self._lock:
            session = self._sessions.get(session_id)
            orphaned = session_id in self._orphaned
        if session is None:
            if orphaned:
                raise _Refusal(
                    f"session {session_id!r} is orphaned (its lease "
                    f"expired); attach with resume={session_id!r} to "
                    "recover it",
                    code=wire.ERR_ORPHANED,
                )
            raise ConfigurationError(f"no such session: {session_id!r}")
        return session

    # -- leases ----------------------------------------------------------------

    def _touch_lease(self, session_id: str) -> None:
        if not session_id:
            return
        with self._lock:
            lease = self._leases.get(session_id)
        if lease is not None:
            lease.touch(self.clock())

    def reap_expired(self, now: Optional[float] = None) -> List[str]:
        """Orphan every session whose lease has expired; returns their
        ids.  Called on every inbound frame (cheap when no leases
        exist) and by the background reaper of a threaded server."""
        if not self._leases:
            return []
        if now is None:
            now = self.clock()
        with self._lock:
            expired = []
            for sid, lease in self._leases.items():
                if not lease.expired(now) or sid not in self._sessions:
                    continue
                window = self._windows.get(sid)
                if window is not None and window.has_pending:
                    # A frame is mid-dispatch (e.g. a blocking `result`
                    # wait): the client is provably live even though the
                    # wire is quiet.  Refresh instead of orphaning.
                    lease.touch(now)
                    continue
                expired.append(sid)
        return [sid for sid in expired if self._orphan_session(sid)]

    def _orphan_session(self, session_id: str) -> bool:
        """Lease expiry: stop the driver, persist the checkpoints,
        release the session's resources — keeping just enough (the
        checkpoint store, the seq window, a final status) for a later
        ``attach(resume=...)`` to warm-restore it."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            return False
        stop = self._stop_flags.get(session_id)
        if stop is not None:
            stop.set()
        thread = self._threads.get(session_id)
        if thread is not None and thread.is_alive():
            thread.join(timeout=_COMMAND_TIMEOUT_S)
        prior_state = session.state
        if prior_state not in (FINISHED, QUARANTINED):
            try:
                # A final snapshot so the resume picks up the freshest
                # controller state, not just the last cadence write.
                session.checkpoint_now()
            except Exception:
                pass  # best effort: an unstartable session still orphans
        session.orphan()
        self._persist(session)
        store = session.prepared.checkpoint_store
        status = dict(session.status())
        status["prior_state"] = prior_state
        with self._lock:
            self._sessions.pop(session_id, None)
            self._threads.pop(session_id, None)
            self._stop_flags.pop(session_id, None)
            self._finished.pop(session_id, None)
            self._leases.pop(session_id, None)
            self._orphaned[session_id] = status
            if store is not None and len(store) > 0:
                # Resumable with or without a state_dir: the in-memory
                # store is registered exactly like a recovered dump.
                self.recovered[session_id] = store
            self.lease_expirations += 1
        return True

    def _ensure_reaper(self) -> None:
        """Threaded servers sweep leases in the background too — an
        abandoned session must orphan even if no frame ever arrives
        again.  Inline servers rely on the per-frame sweep, keeping
        loopback runs deterministic."""
        if not self.threaded or self._reaper is not None:
            return
        self._reaper_stop.clear()
        self._reaper = threading.Thread(
            target=self._reap_loop, name="acp-reaper", daemon=True
        )
        self._reaper.start()

    def _reap_loop(self) -> None:
        while not self._reaper_stop.wait(_REAPER_INTERVAL_S):
            try:
                self.reap_expired()
            except Exception:
                pass  # the reaper must outlive any single sweep failure

    def _thread_alive(self, session_id: str) -> bool:
        thread = self._threads.get(session_id)
        return thread is not None and thread.is_alive()

    def _guarded(self, session: AcpSession, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on the caller's thread, converting a managed-system
        crash into a quarantine + error (never a daemon crash)."""
        try:
            return fn()
        except ConfigurationError:
            raise  # a refusal, not a crash: the session stays healthy
        except Exception as exc:
            session.quarantine(exc)
            raise ConfigurationError(
                f"session {session.session_id} quarantined: {session.error}"
            ) from None

    def _start_driver(self, session: AcpSession) -> None:
        sid = session.session_id
        if self._thread_alive(sid):
            raise ConfigurationError(f"session {sid} is already running")
        if session.state in (FINISHED, QUARANTINED):
            raise ConfigurationError(
                f"session {sid} is {session.state}; cannot run"
            )
        stop = threading.Event()
        finished = threading.Event()
        chunk_s = _DRIVE_CHUNK_QUANTA * session.quantum_s

        def drive() -> None:
            try:
                while not session.done and not stop.is_set():
                    session.advance(seconds=chunk_s)
                    # Persist at every chunk boundary: a SIGKILLed
                    # daemon loses at most one chunk of checkpoints,
                    # not the whole run (the crash-drill guarantee).
                    self._persist(session)
            except ConfigurationError as exc:
                session.quarantine(exc)
            except Exception as exc:
                session.quarantine(exc)
            finally:
                self._persist(session)
                finished.set()

        thread = threading.Thread(
            target=drive, name=f"acp-{sid}", daemon=True
        )
        with self._lock:
            self._threads[sid] = thread
            self._stop_flags[sid] = stop
            self._finished[sid] = finished
        thread.start()

    def _call_on_session(
        self,
        session: AcpSession,
        fn: Callable[[], Any],
        timeout_s: float = _COMMAND_TIMEOUT_S,
    ) -> Any:
        """Apply a control action either inline (idle session) or at the
        next segment boundary of its driver thread (running session)."""
        sid = session.session_id
        if not self._thread_alive(sid):
            return self._guarded(session, fn)
        box: Dict[str, Any] = {}
        applied = threading.Event()

        def command() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # surfaced to the requester below
                box["exc"] = exc
            finally:
                applied.set()

        session.enqueue(command)
        if not applied.wait(timeout_s):
            if not self._thread_alive(sid):
                # The driver exited between enqueue and its final drain;
                # the session is idle now, so drain on this thread.
                session._drain_commands()
            if not applied.is_set():
                raise ConfigurationError(
                    f"session {sid}: command not applied within {timeout_s}s"
                )
        if "exc" in box:
            exc = box["exc"]
            if isinstance(exc, ConfigurationError):
                raise exc
            session.quarantine(exc)
            raise ConfigurationError(
                f"session {sid} quarantined: {session.error}"
            ) from None
        return box["value"]

    def _persist(self, session: AcpSession) -> None:
        if self.state_dir is None:
            return
        store = session.prepared.checkpoint_store
        if store is None or len(store) == 0:
            return
        store.dump(
            os.path.join(self.state_dir, f"{session.session_id}.json")
        )

    # -- responses / observability --------------------------------------------

    def _next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _respond(
        self, frame_type: str, session_id: str, payload: Dict[str, Any]
    ) -> wire.Frame:
        return wire.make_frame(
            frame_type, session_id, self._next_seq(), payload
        )

    def _error(
        self, session_id: str, message: str, code: str = ""
    ) -> wire.Frame:
        return wire.error_frame(
            session_id, self._next_seq(), message, code=code
        )

    def metrics_text(self) -> str:
        """Live Prometheus text: control-plane counters + every tenant's
        telemetry snapshot stamped with its ``session`` label."""
        from repro.telemetry.exporters import snapshot_to_prometheus

        with self._lock:
            sessions = dict(self._sessions)
        by_state: Dict[str, int] = {}
        for session in sessions.values():
            by_state[session.state] = by_state.get(session.state, 0) + 1
        lines = [
            "# HELP acp_sessions_attached_total Sessions ever attached.",
            "# TYPE acp_sessions_attached_total counter",
            f"acp_sessions_attached_total {float(self._counter)!r}",
            "# HELP acp_sessions Current sessions by state.",
            "# TYPE acp_sessions gauge",
        ]
        for state in (RUNNING, FINISHED, QUARANTINED):
            lines.append(
                f'acp_sessions{{state="{state}"}} '
                f"{float(by_state.get(state, 0))!r}"
            )
        for state in sorted(set(by_state) - {RUNNING, FINISHED, QUARANTINED}):
            lines.append(
                f'acp_sessions{{state="{state}"}} {float(by_state[state])!r}'
            )
        lines.append(
            f'acp_sessions{{state="{ORPHANED}"}} '
            f"{float(len(self._orphaned))!r}"
        )
        lines += [
            "# HELP acp_frames_total Wire frames handled, by direction.",
            "# TYPE acp_frames_total counter",
            f'acp_frames_total{{direction="in"}} {float(self.frames_in)!r}',
            f'acp_frames_total{{direction="out"}} {float(self.frames_out)!r}',
            "# HELP acp_retries_total Client re-deliveries observed "
            "(attempt > 1 markers).",
            "# TYPE acp_retries_total counter",
            f"acp_retries_total {float(self.retries_seen)!r}",
            "# HELP acp_dedup_hits_total Duplicate frames answered from "
            "the replay cache instead of re-applied.",
            "# TYPE acp_dedup_hits_total counter",
            f"acp_dedup_hits_total {float(self.dedup_hits)!r}",
            "# HELP acp_lease_expired_total Sessions orphaned by lease "
            "expiry.",
            "# TYPE acp_lease_expired_total counter",
            f"acp_lease_expired_total {float(self.lease_expirations)!r}",
            "# HELP acp_frames_corrupt_total Lines that never parsed "
            "into a frame (corruption, torn writes).",
            "# TYPE acp_frames_corrupt_total counter",
            f"acp_frames_corrupt_total {float(self.frames_corrupt)!r}",
        ]
        parts = ["\n".join(lines) + "\n"]
        for sid in sorted(sessions):
            hub = sessions[sid].prepared.telemetry
            if hub is None:
                continue
            parts.append(
                snapshot_to_prometheus(
                    hub.registry.snapshot(), extra_labels={"session": sid}
                )
            )
        return "".join(parts)

    def shutdown(self) -> None:
        """Stop every driver thread; sessions stay readable."""
        self._reaper_stop.set()
        reaper = self._reaper
        if reaper is not None and reaper.is_alive():
            reaper.join(timeout=5.0)
        self._reaper = None
        with self._lock:
            flags = list(self._stop_flags.values())
            threads = list(self._threads.values())
        for flag in flags:
            flag.set()
        for thread in threads:
            if thread.is_alive():
                thread.join(timeout=_COMMAND_TIMEOUT_S)


_HANDLERS: Dict[str, Callable[[AcpServer, wire.Frame], List[wire.Frame]]] = {
    "hello": AcpServer._handle_hello,
    "attach": AcpServer._handle_attach,
    "run": AcpServer._handle_run,
    "swap": AcpServer._handle_swap,
    "checkpoint": AcpServer._handle_checkpoint,
    "result": AcpServer._handle_result,
    "events": AcpServer._handle_events,
    "sessions": AcpServer._handle_sessions,
    "metrics": AcpServer._handle_metrics,
    "detach": AcpServer._handle_detach,
}
