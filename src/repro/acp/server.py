"""The Adaptation Control Plane: session registry + frame dispatch.

:class:`AcpServer` is the transport-agnostic core of the daemon.  It
speaks exactly one language — :mod:`repro.acp.wire` frames in, frames
out — so every transport (the in-process loopback, the Unix socket, the
HTTP endpoint in :mod:`repro.acp.transport`) is a thin shell around
:meth:`AcpServer.handle_line`.

Responsibilities:

* **Session registry** — attach/detach of managed systems, each an
  :class:`~repro.acp.session.AcpSession` with a server-assigned id.
* **Crash quarantine** — an exception out of one session marks *that
  session* quarantined and answers the request with an ``error`` frame;
  the daemon and its other tenants keep running.
* **Checkpoint persistence** — with a ``state_dir``, every session's
  :class:`~repro.supervision.CheckpointStore` is dumped atomically to
  ``<state_dir>/<session_id>.json``; on construction the server scans
  the directory with :meth:`CheckpointStore.recover`, so a restarted
  daemon offers the surviving snapshots for warm re-attachment (and
  surfaces a ledger entry for every torn file it had to cold-start
  past).
* **Execution modes** — ``threaded=False`` (the loopback default) runs
  sessions inline on the caller's thread, deterministically;
  ``threaded=True`` (the daemon default) drives ``run`` requests on a
  background thread per session so control frames keep flowing while a
  tenant executes.
* **Observability** — :meth:`metrics_text` renders live Prometheus
  text: control-plane counters plus every tenant's telemetry snapshot,
  stamped with a ``session`` label.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.supervision import CheckpointStore
from repro.acp import wire
from repro.acp.session import (
    DEFAULT_QUANTUM_S,
    FINISHED,
    QUARANTINED,
    RUNNING,
    AcpSession,
    resolve_policy,
)

#: Simulated seconds a background driver advances between stop-flag
#: checks: coarse enough to amortize the loop, fine enough that detach
#: and shutdown respond within a fraction of a second of wall time.
_DRIVE_CHUNK_QUANTA = 10

#: Wall-clock seconds a control command (swap/checkpoint) may wait for a
#: busy session's next segment boundary before the server gives up.
_COMMAND_TIMEOUT_S = 30.0

#: Default wall-clock seconds a ``result`` request waits for a threaded
#: session to finish.
_RESULT_TIMEOUT_S = 600.0


class AcpServer:
    """Frame-in/frame-out control plane; see the module docstring."""

    def __init__(
        self,
        state_dir: Optional[str] = None,
        quantum_s: float = DEFAULT_QUANTUM_S,
        threaded: bool = False,
    ):
        self.state_dir = state_dir
        self.quantum_s = quantum_s
        self.threaded = threaded
        self._sessions: Dict[str, AcpSession] = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._stop_flags: Dict[str, threading.Event] = {}
        self._finished: Dict[str, threading.Event] = {}
        self._lock = threading.RLock()
        self._counter = 0
        self._seq = 0
        self.frames_in = 0
        self.frames_out = 0
        #: Checkpoint stores recovered from ``state_dir`` at startup,
        #: keyed by the session id they were dumped under.
        self.recovered: Dict[str, CheckpointStore] = {}
        #: Cold-start fallback entries from :meth:`CheckpointStore.recover`.
        self.ledger: List[Dict[str, Any]] = []
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
            for name in sorted(os.listdir(state_dir)):
                if not name.endswith(".json"):
                    continue
                store = CheckpointStore.recover(os.path.join(state_dir, name))
                self.recovered[name[: -len(".json")]] = store
                self.ledger.extend(store.ledger)

    # -- transport surface ----------------------------------------------------

    def handle_line(self, line: str) -> List[str]:
        """One request line → encoded response lines (error frames on
        malformed input; the transport never sees an exception)."""
        try:
            frame = wire.decode_frame(line)
        except ConfigurationError as exc:
            return [wire.encode_frame(self._error("", str(exc)))]
        return [wire.encode_frame(f) for f in self.handle_frame(frame)]

    def handle_frame(self, frame: wire.Frame) -> List[wire.Frame]:
        """Dispatch one request frame; always returns at least one
        non-event frame (the response terminator)."""
        self.frames_in += 1
        try:
            frames = self._dispatch(frame)
        except ConfigurationError as exc:
            frames = [self._error(frame.session_id, str(exc))]
        self.frames_out += len(frames)
        return frames

    def _dispatch(self, frame: wire.Frame) -> List[wire.Frame]:
        handler = _HANDLERS.get(frame.type)
        if handler is None:
            raise ConfigurationError(
                f"unknown request frame type {frame.type!r}"
            )
        return handler(self, frame)

    # -- request handlers ------------------------------------------------------

    def _handle_hello(self, frame: wire.Frame) -> List[wire.Frame]:
        from repro import __version__

        with self._lock:
            count = len(self._sessions)
        return [
            self._respond(
                "welcome",
                frame.session_id,
                {
                    "server": "hars-repro-acp",
                    "version": __version__,
                    "schema_version": wire.WIRE_SCHEMA_VERSION,
                    "sessions": count,
                },
            )
        ]

    def _handle_attach(self, frame: wire.Frame) -> List[wire.Frame]:
        payload = frame.payload
        version = payload["version"]
        shapes = [wire.shape_from_wire(s) for s in payload["shapes"]]
        config = wire.config_from_wire(payload["config"])
        stream_events = bool(payload.get("stream_events", False))
        with self._lock:
            self._counter += 1
            session_id = payload.get("session_id") or f"s{self._counter:04d}"
            if not isinstance(session_id, str):
                raise ConfigurationError("attach: 'session_id' must be a string")
            if session_id in self._sessions:
                raise ConfigurationError(
                    f"session id {session_id!r} is already attached"
                )
            resume_store = self._resume_store_for(payload, session_id)
            try:
                session = AcpSession(
                    session_id,
                    version,
                    shapes,
                    config,
                    stream_events=stream_events,
                    resume_store=resume_store,
                    quantum_s=self.quantum_s,
                )
            except ConfigurationError:
                raise
            except Exception as exc:  # a broken attach must not kill the daemon
                raise ConfigurationError(
                    f"attach failed: {type(exc).__name__}: {exc}"
                ) from None
            self._sessions[session_id] = session
        status = dict(session.status())
        if resume_store is not None:
            status["resumed_from"] = sorted(resume_store.controller_ids)
            status["resume_ledger"] = list(resume_store.ledger)
        return [self._respond("attached", session_id, status)]

    def _resume_store_for(
        self, payload: Dict[str, Any], session_id: str
    ) -> Optional[CheckpointStore]:
        resume = payload.get("resume")
        if resume is None or resume is False:
            return None
        key = session_id if resume is True else resume
        if not isinstance(key, str):
            raise ConfigurationError(
                "attach: 'resume' must be true or a session id"
            )
        store = self.recovered.get(key)
        if store is None and self.state_dir is not None:
            store = CheckpointStore.recover(
                os.path.join(self.state_dir, f"{key}.json")
            )
            self.recovered[key] = store
            self.ledger.extend(store.ledger)
        if store is None:
            raise ConfigurationError(
                f"attach: no recovered checkpoint store for {key!r} "
                "(server has no state_dir)"
            )
        return store

    def _handle_run(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        seconds = frame.payload.get("seconds")
        if seconds is not None and (
            not isinstance(seconds, (int, float)) or isinstance(seconds, bool)
        ):
            raise ConfigurationError("run: 'seconds' must be a number")
        if self.threaded and seconds is None:
            self._start_driver(session)
            return [
                self._respond("advanced", session.session_id, session.status())
            ]
        if self._thread_alive(session.session_id):
            raise ConfigurationError(
                f"session {session.session_id} is already running"
            )
        status = self._guarded(session, lambda: session.advance(seconds))
        self._persist(session)
        return [self._respond("advanced", session.session_id, status)]

    def _handle_swap(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        policy = frame.payload["policy"]
        resolve_policy(policy)  # reject a bad name before it reaches the queue
        adapt_every = frame.payload.get("adapt_every")
        result = self._call_on_session(
            session, lambda: session.swap_policy(policy, adapt_every)
        )
        return [self._respond("swap-ack", session.session_id, result)]

    def _handle_checkpoint(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        result = self._call_on_session(session, session.checkpoint_now)
        self._persist(session)
        return [
            wire.checkpoint_frame(
                session.session_id,
                self._next_seq(),
                result["time_s"],
                result["store"],
            )
        ]

    def _handle_result(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        timeout = frame.payload.get("timeout_s")
        if timeout is None:
            timeout = _RESULT_TIMEOUT_S
        if self._thread_alive(session.session_id):
            finished = self._finished[session.session_id]
            if not finished.wait(float(timeout)):
                raise ConfigurationError(
                    f"session {session.session_id} did not finish within "
                    f"{timeout}s"
                )
        elif session.state not in (FINISHED, QUARANTINED):
            # Inline mode: a result request drives the run to completion,
            # exactly like the in-process runner would.
            self._guarded(session, lambda: session.advance(None))
            self._persist(session)
        if session.state == QUARANTINED:
            raise ConfigurationError(
                f"session {session.session_id} is quarantined: {session.error}"
            )
        payload = session.result_payload()
        return [
            wire.make_frame(
                "result", session.session_id, self._next_seq(), payload
            )
        ]

    def _handle_events(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        since = frame.payload.get("since_seq", 0)
        if not isinstance(since, int) or isinstance(since, bool):
            raise ConfigurationError("events: 'since_seq' must be an int")
        batch = [f for f in session.events if f.seq > since]
        last = batch[-1].seq if batch else since
        return [
            *batch,
            self._respond(
                "event-batch",
                session.session_id,
                {"count": len(batch), "last_seq": last},
            ),
        ]

    def _handle_sessions(self, frame: wire.Frame) -> List[wire.Frame]:
        with self._lock:
            statuses = [
                self._sessions[sid].status() for sid in sorted(self._sessions)
            ]
        return [
            self._respond(
                "session-list",
                frame.session_id,
                {
                    "sessions": statuses,
                    "recovered": sorted(self.recovered),
                    "ledger": list(self.ledger),
                },
            )
        ]

    def _handle_metrics(self, frame: wire.Frame) -> List[wire.Frame]:
        return [
            self._respond(
                "metrics-text", frame.session_id, {"text": self.metrics_text()}
            )
        ]

    def _handle_detach(self, frame: wire.Frame) -> List[wire.Frame]:
        session = self._session(frame.session_id)
        stop = self._stop_flags.get(session.session_id)
        if stop is not None:
            stop.set()
        thread = self._threads.get(session.session_id)
        if thread is not None and thread.is_alive():
            thread.join(timeout=_COMMAND_TIMEOUT_S)
        session.detach()
        self._persist(session)
        with self._lock:
            self._sessions.pop(session.session_id, None)
            self._threads.pop(session.session_id, None)
            self._stop_flags.pop(session.session_id, None)
            self._finished.pop(session.session_id, None)
        return [
            self._respond(
                "detached",
                session.session_id,
                {"session_id": session.session_id, "state": session.state},
            )
        ]

    # -- execution plumbing ----------------------------------------------------

    def _session(self, session_id: str) -> AcpSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ConfigurationError(f"no such session: {session_id!r}")
        return session

    def _thread_alive(self, session_id: str) -> bool:
        thread = self._threads.get(session_id)
        return thread is not None and thread.is_alive()

    def _guarded(self, session: AcpSession, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on the caller's thread, converting a managed-system
        crash into a quarantine + error (never a daemon crash)."""
        try:
            return fn()
        except ConfigurationError:
            raise  # a refusal, not a crash: the session stays healthy
        except Exception as exc:
            session.quarantine(exc)
            raise ConfigurationError(
                f"session {session.session_id} quarantined: {session.error}"
            ) from None

    def _start_driver(self, session: AcpSession) -> None:
        sid = session.session_id
        if self._thread_alive(sid):
            raise ConfigurationError(f"session {sid} is already running")
        if session.state in (FINISHED, QUARANTINED):
            raise ConfigurationError(
                f"session {sid} is {session.state}; cannot run"
            )
        stop = threading.Event()
        finished = threading.Event()
        chunk_s = _DRIVE_CHUNK_QUANTA * session.quantum_s

        def drive() -> None:
            try:
                while not session.done and not stop.is_set():
                    session.advance(seconds=chunk_s)
            except ConfigurationError as exc:
                session.quarantine(exc)
            except Exception as exc:
                session.quarantine(exc)
            finally:
                self._persist(session)
                finished.set()

        thread = threading.Thread(
            target=drive, name=f"acp-{sid}", daemon=True
        )
        with self._lock:
            self._threads[sid] = thread
            self._stop_flags[sid] = stop
            self._finished[sid] = finished
        thread.start()

    def _call_on_session(
        self,
        session: AcpSession,
        fn: Callable[[], Any],
        timeout_s: float = _COMMAND_TIMEOUT_S,
    ) -> Any:
        """Apply a control action either inline (idle session) or at the
        next segment boundary of its driver thread (running session)."""
        sid = session.session_id
        if not self._thread_alive(sid):
            return self._guarded(session, fn)
        box: Dict[str, Any] = {}
        applied = threading.Event()

        def command() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # surfaced to the requester below
                box["exc"] = exc
            finally:
                applied.set()

        session.enqueue(command)
        if not applied.wait(timeout_s):
            if not self._thread_alive(sid):
                # The driver exited between enqueue and its final drain;
                # the session is idle now, so drain on this thread.
                session._drain_commands()
            if not applied.is_set():
                raise ConfigurationError(
                    f"session {sid}: command not applied within {timeout_s}s"
                )
        if "exc" in box:
            exc = box["exc"]
            if isinstance(exc, ConfigurationError):
                raise exc
            session.quarantine(exc)
            raise ConfigurationError(
                f"session {sid} quarantined: {session.error}"
            ) from None
        return box["value"]

    def _persist(self, session: AcpSession) -> None:
        if self.state_dir is None:
            return
        store = session.prepared.checkpoint_store
        if store is None or len(store) == 0:
            return
        store.dump(
            os.path.join(self.state_dir, f"{session.session_id}.json")
        )

    # -- responses / observability --------------------------------------------

    def _next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _respond(
        self, frame_type: str, session_id: str, payload: Dict[str, Any]
    ) -> wire.Frame:
        return wire.make_frame(
            frame_type, session_id, self._next_seq(), payload
        )

    def _error(self, session_id: str, message: str) -> wire.Frame:
        return wire.error_frame(session_id, self._next_seq(), message)

    def metrics_text(self) -> str:
        """Live Prometheus text: control-plane counters + every tenant's
        telemetry snapshot stamped with its ``session`` label."""
        from repro.telemetry.exporters import snapshot_to_prometheus

        with self._lock:
            sessions = dict(self._sessions)
        by_state: Dict[str, int] = {}
        for session in sessions.values():
            by_state[session.state] = by_state.get(session.state, 0) + 1
        lines = [
            "# HELP acp_sessions_attached_total Sessions ever attached.",
            "# TYPE acp_sessions_attached_total counter",
            f"acp_sessions_attached_total {float(self._counter)!r}",
            "# HELP acp_sessions Current sessions by state.",
            "# TYPE acp_sessions gauge",
        ]
        for state in (RUNNING, FINISHED, QUARANTINED):
            lines.append(
                f'acp_sessions{{state="{state}"}} '
                f"{float(by_state.get(state, 0))!r}"
            )
        for state in sorted(set(by_state) - {RUNNING, FINISHED, QUARANTINED}):
            lines.append(
                f'acp_sessions{{state="{state}"}} {float(by_state[state])!r}'
            )
        lines += [
            "# HELP acp_frames_total Wire frames handled, by direction.",
            "# TYPE acp_frames_total counter",
            f'acp_frames_total{{direction="in"}} {float(self.frames_in)!r}',
            f'acp_frames_total{{direction="out"}} {float(self.frames_out)!r}',
        ]
        parts = ["\n".join(lines) + "\n"]
        for sid in sorted(sessions):
            hub = sessions[sid].prepared.telemetry
            if hub is None:
                continue
            parts.append(
                snapshot_to_prometheus(
                    hub.registry.snapshot(), extra_labels={"session": sid}
                )
            )
        return "".join(parts)

    def shutdown(self) -> None:
        """Stop every driver thread; sessions stay readable."""
        with self._lock:
            flags = list(self._stop_flags.values())
            threads = list(self._threads.values())
        for flag in flags:
            flag.set()
        for thread in threads:
            if thread.is_alive():
                thread.join(timeout=_COMMAND_TIMEOUT_S)


_HANDLERS: Dict[str, Callable[[AcpServer, wire.Frame], List[wire.Frame]]] = {
    "hello": AcpServer._handle_hello,
    "attach": AcpServer._handle_attach,
    "run": AcpServer._handle_run,
    "swap": AcpServer._handle_swap,
    "checkpoint": AcpServer._handle_checkpoint,
    "result": AcpServer._handle_result,
    "events": AcpServer._handle_events,
    "sessions": AcpServer._handle_sessions,
    "metrics": AcpServer._handle_metrics,
    "detach": AcpServer._handle_detach,
}
