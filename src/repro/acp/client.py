"""The stable ACP client SDK: :class:`AcpClient` / :class:`SessionHandle`.

This module is the *supported* way to talk to an Adaptation Control
Plane.  The raw socket protocol underneath (one JSONL request frame per
connection, responses until the first non-event frame) is an internal
detail that may change between minor versions; these two classes are
covered by the repo's API-stability promise instead.

Endpoints:

* ``"loopback"``       — an in-process :class:`~repro.acp.server.AcpServer`
  (created privately, or passed in), stepped inline and deterministically;
* ``"unix:///path"``   — the daemon's Unix-socket JSONL transport;
* ``"http://host:p"``  — the daemon's HTTP transport (``POST /v1/frames``).

The headline guarantee: ``AcpClient.attach(...).result()`` over *any*
transport returns a :class:`~repro.experiments.runner.RunOutcome` whose
per-app summaries and trace rows are bit-identical to
``repro.experiments.run()`` in-process — the boundary serializes
observations and commands, never the physics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.acp import wire


class AcpError(ConfigurationError):
    """An error frame from the control plane, raised client-side.

    Subclasses :class:`~repro.errors.ConfigurationError` so existing
    ``except ConfigurationError`` call sites keep working.
    """


def _parse_endpoint(endpoint: str):
    if endpoint == "loopback":
        return ("loopback", None)
    if endpoint.startswith("unix://"):
        path = endpoint[len("unix://") :]
        if not path:
            raise ConfigurationError("unix:// endpoint needs a socket path")
        return ("unix", path)
    if endpoint.startswith("http://") or endpoint.startswith("https://"):
        return ("http", endpoint.rstrip("/"))
    raise ConfigurationError(
        f"unsupported ACP endpoint {endpoint!r} "
        "(use 'loopback', 'unix:///path', or 'http://host:port')"
    )


class AcpClient:
    """A connection-per-request client for one ACP endpoint."""

    def __init__(
        self,
        endpoint: str = "loopback",
        server: Optional[Any] = None,
        timeout_s: float = 120.0,
    ):
        self._kind, self._target = _parse_endpoint(endpoint)
        self.endpoint = endpoint
        self.timeout_s = timeout_s
        self._seq = 0
        if self._kind == "loopback":
            if server is None:
                from repro.acp.server import AcpServer

                server = AcpServer(threaded=False)
            self._server = server
        elif server is not None:
            raise ConfigurationError(
                "server= is only meaningful with the loopback endpoint"
            )
        else:
            self._server = None

    # -- transport -------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _exchange(self, frame: wire.Frame) -> List[wire.Frame]:
        line = wire.encode_frame(frame)
        if self._kind == "loopback":
            return [wire.decode_frame(l) for l in self._server.handle_line(line)]
        if self._kind == "unix":
            return self._exchange_unix(line)
        return self._exchange_http(line)

    def _exchange_unix(self, line: str) -> List[wire.Frame]:
        import socket

        frames: List[wire.Frame] = []
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout_s)
            sock.connect(self._target)
            sock.sendall((line + "\n").encode("utf-8"))
            sock.shutdown(socket.SHUT_WR)
            with sock.makefile("r", encoding="utf-8") as stream:
                for response in stream:
                    if not response.strip():
                        continue
                    frame = wire.decode_frame(response)
                    frames.append(frame)
                    if not frame.is_event:
                        break
        return frames

    def _exchange_http(self, line: str) -> List[wire.Frame]:
        import urllib.request

        request = urllib.request.Request(
            self._target + "/v1/frames",
            data=(line + "\n").encode("utf-8"),
            headers={"Content-Type": "application/jsonl"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
            body = resp.read().decode("utf-8")
        return [
            wire.decode_frame(l) for l in body.splitlines() if l.strip()
        ]

    def _rpc(
        self,
        frame_type: str,
        session_id: str = "",
        payload: Optional[Dict[str, Any]] = None,
    ) -> List[wire.Frame]:
        frames = self._exchange(
            wire.make_frame(frame_type, session_id, self._next_seq(), payload)
        )
        if not frames:
            raise AcpError(f"{frame_type}: empty response from {self.endpoint}")
        terminal = frames[-1]
        if terminal.type == "error":
            raise AcpError(terminal.payload["error"])
        return frames

    # -- public surface --------------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        """Server identity: name, version, wire schema, session count."""
        return self._rpc("hello")[-1].payload

    def attach(
        self,
        version: str,
        shapes: Union[Any, Sequence[Any]],
        config: Optional[Any] = None,
        stream_events: bool = False,
        session_id: Optional[str] = None,
        resume: Union[bool, str, None] = None,
    ) -> "SessionHandle":
        """Attach a managed system; returns its :class:`SessionHandle`.

        ``shapes`` is one :class:`~repro.experiments.runner.RunShape` or
        a sequence of them (multi-app).  ``resume`` warm-restores the
        controllers from a server-side recovered checkpoint store:
        ``True`` uses ``session_id``'s store, a string names another
        session's.
        """
        from repro.experiments.runner import RunConfig

        shape_list = (
            list(shapes)
            if isinstance(shapes, (list, tuple))
            else [shapes]
        )
        payload: Dict[str, Any] = {
            "version": version,
            "shapes": [wire.shape_to_wire(s) for s in shape_list],
            "config": wire.config_to_wire(config or RunConfig()),
        }
        if stream_events:
            payload["stream_events"] = True
        if session_id is not None:
            payload["session_id"] = session_id
        if resume is not None:
            payload["resume"] = resume
        status = self._rpc("attach", "", payload)[-1].payload
        return SessionHandle(self, status["session_id"], status)

    def sessions(self) -> Dict[str, Any]:
        """Registry snapshot: live sessions, recovered stores, ledger."""
        return self._rpc("sessions")[-1].payload

    def metrics_text(self) -> str:
        """The daemon's live Prometheus exposition text."""
        return self._rpc("metrics")[-1].payload["text"]

    def session(self, session_id: str) -> "SessionHandle":
        """A handle for an already-attached session (e.g. after a
        client restart — the daemon keeps the session alive)."""
        return SessionHandle(self, session_id, {"session_id": session_id})


class SessionHandle:
    """Typed control surface for one attached session."""

    def __init__(
        self, client: AcpClient, session_id: str, status: Dict[str, Any]
    ):
        self._client = client
        self.session_id = session_id
        self.last_status = status

    def _rpc(
        self, frame_type: str, payload: Optional[Dict[str, Any]] = None
    ) -> List[wire.Frame]:
        return self._client._rpc(frame_type, self.session_id, payload)

    def status(self) -> Dict[str, Any]:
        """Current session state from the registry."""
        listing = self._client.sessions()["sessions"]
        for status in listing:
            if status["session_id"] == self.session_id:
                self.last_status = status
                return status
        raise AcpError(f"session {self.session_id} is no longer attached")

    def run(self) -> Dict[str, Any]:
        """Start (daemon) or perform (loopback) the run to completion."""
        status = self._rpc("run", {})[-1].payload
        self.last_status = status
        return status

    def advance(self, seconds: float) -> Dict[str, Any]:
        """Step the session by ``seconds`` of simulated time, inline."""
        status = self._rpc("run", {"seconds": seconds})[-1].payload
        self.last_status = status
        return status

    def swap_policy(
        self, policy: str, adapt_every: Optional[int] = None
    ) -> Dict[str, Any]:
        """Hot-swap the scheduling policy; effective within one
        adaptation period, recorded on the bus as ``PolicySwapped``."""
        payload: Dict[str, Any] = {"policy": policy}
        if adapt_every is not None:
            payload["adapt_every"] = adapt_every
        return self._rpc("swap", payload)[-1].payload

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot every checkpoint-capable controller right now;
        returns ``{"time_s", "store": {controller_id: envelope}}``."""
        return self._rpc("checkpoint", {})[-1].payload

    def events(self, since_seq: int = 0) -> List[wire.Frame]:
        """Event frames emitted after ``since_seq`` (plan/actuate always;
        heartbeat/sensor when attached with ``stream_events=True``)."""
        frames = self._rpc("events", {"since_seq": since_seq})
        return [f for f in frames if f.is_event]

    def result(self, timeout_s: Optional[float] = None):
        """Block until the run finishes; returns its
        :class:`~repro.experiments.runner.RunOutcome`."""
        payload: Dict[str, Any] = {}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        frame = self._rpc("result", payload)[-1]
        return _outcome_from_result(frame.payload)

    def detach(self) -> Dict[str, Any]:
        """Release the session (stops its driver thread, persists its
        checkpoints)."""
        return self._rpc("detach", {})[-1].payload


def _outcome_from_result(payload: Dict[str, Any]):
    """A ``result`` frame payload → :class:`RunOutcome` (bit-identical:
    JSON round-trips floats through ``repr``, losslessly)."""
    from repro.experiments.runner import RunOutcome
    from repro.experiments.serialize import run_metrics_from_dict
    from repro.heartbeats.targets import PerformanceTarget
    from repro.sim.tracing import TracePoint, TraceRecorder

    trace = TraceRecorder()
    for app_name, rows in payload["trace"].items():
        for row in rows:
            trace.record(
                app_name,
                TracePoint(
                    time_s=row[0],
                    hb_index=row[1],
                    rate=row[2],
                    big_cores=row[3],
                    little_cores=row[4],
                    big_freq_mhz=row[5],
                    little_freq_mhz=row[6],
                ),
            )
    target = payload["target"]
    return RunOutcome(
        metrics=run_metrics_from_dict(payload["metrics"]),
        trace=trace,
        target=PerformanceTarget(target[0], target[1], target[2]),
        max_rate=payload["max_rate"],
    )


def run_via_acp(version: str, shapes: Any, config: Any):
    """The ``RunConfig(acp=...)`` execution path of
    :func:`repro.experiments.run`: attach, run to completion, detach.

    The outcome is reconstructed from the ``result`` frame — same
    summaries, same trace rows, bit for bit.
    """
    if shapes is None:
        raise ConfigurationError("an acp run needs shapes")
    client = AcpClient(config.acp)
    handle = client.attach(version, shapes, config.with_(acp=None))
    try:
        return handle.result()
    finally:
        try:
            handle.detach()
        except (AcpError, OSError):
            pass  # best-effort cleanup; the outcome is already in hand
