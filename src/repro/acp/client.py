"""The stable ACP client SDK: :class:`AcpClient` / :class:`SessionHandle`.

This module is the *supported* way to talk to an Adaptation Control
Plane.  The raw socket protocol underneath (one JSONL request frame per
connection, responses until the first non-event frame) is an internal
detail that may change between minor versions; these two classes are
covered by the repo's API-stability promise instead.

Endpoints:

* ``"loopback"``       — an in-process :class:`~repro.acp.server.AcpServer`
  (created privately, or passed in), stepped inline and deterministically;
* ``"unix:///path"``   — the daemon's Unix-socket JSONL transport;
* ``"http://host:p"``  — the daemon's HTTP transport (``POST /v1/frames``).

The headline guarantee: ``AcpClient.attach(...).result()`` over *any*
transport returns a :class:`~repro.experiments.runner.RunOutcome` whose
per-app summaries and trace rows are bit-identical to
``repro.experiments.run()`` in-process — the boundary serializes
observations and commands, never the physics.

Failure semantics (the PR-10 resilience layer): every RPC is an
idempotent delivery attempt.  The client assigns each request one seq —
its idempotency key — and on a transient failure (socket error, torn
connection, a retryable typed error frame) re-sends the *same* frame
with a bounded exponential backoff, stamping an ``attempt`` marker in
the envelope.  The server's per-session
:class:`~repro.acp.wire.SeqWindow` turns that at-least-once delivery
into at-most-once application: a duplicate is answered from the replay
cache, never applied twice.  Reconnection is implicit — the transports
open one connection per request, so a restarted daemon is just the next
attempt succeeding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.acp import wire


class AcpError(ConfigurationError):
    """An error frame from the control plane, raised client-side.

    ``code`` carries the frame's machine-readable error code (empty for
    untyped errors).  Subclasses
    :class:`~repro.errors.ConfigurationError` so existing
    ``except ConfigurationError`` call sites keep working.
    """

    def __init__(self, message: str, code: str = ""):
        super().__init__(message)
        self.code = code


class AcpTransportError(AcpError):
    """The request never produced a response: connection refused, socket
    timeout, a torn write, or an injected chaos fault.  Always safe to
    retry — the seq window deduplicates any half-delivered copy."""

    def __init__(self, message: str):
        super().__init__(message, code="transport")


#: Exceptions the retry layer treats as transient delivery failures.
_TRANSIENT_EXCEPTIONS = (AcpTransportError, OSError, EOFError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for one RPC.

    ``max_attempts`` counts total deliveries (1 = the old single-shot
    behavior).  The delay before attempt *n+1* is
    ``backoff_s * multiplier**(n-1)`` capped at ``max_backoff_s`` —
    with the defaults: 50 ms, 100 ms, 200 ms, ...
    """

    max_attempts: int = 5
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("retry backoff must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("retry multiplier must be >= 1")

    def delay_s(self, completed_attempts: int) -> float:
        """Sleep before the next attempt, after ``completed_attempts``."""
        raw = self.backoff_s * self.multiplier ** max(
            0, completed_attempts - 1
        )
        return min(raw, self.max_backoff_s)


#: The single-shot policy loopback clients default to: no re-delivery,
#: so a deterministic inline exchange stays exactly one exchange.
SINGLE_ATTEMPT = RetryPolicy(max_attempts=1)


def _parse_endpoint(endpoint: str):
    if endpoint == "loopback":
        return ("loopback", None)
    if endpoint.startswith("unix://"):
        path = endpoint[len("unix://") :]
        if not path:
            raise ConfigurationError("unix:// endpoint needs a socket path")
        return ("unix", path)
    if endpoint.startswith("http://") or endpoint.startswith("https://"):
        return ("http", endpoint.rstrip("/"))
    raise ConfigurationError(
        f"unsupported ACP endpoint {endpoint!r} "
        "(use 'loopback', 'unix:///path', or 'http://host:port')"
    )


class LoopbackTransport:
    """Inline exchange against an in-process :class:`AcpServer`."""

    def __init__(self, server: Any):
        self.server = server

    def exchange(self, line: str, timeout_s: float) -> List[str]:
        return self.server.handle_line(line)

    def send_torn(self, prefix: str, timeout_s: float) -> None:
        # A torn loopback "write" is just an unparseable line; the
        # server counts it and the response is discarded unread.
        self.server.handle_line(prefix)


class UnixTransport:
    """One connection per request over the daemon's Unix socket."""

    def __init__(self, path: str):
        self.path = path

    def exchange(self, line: str, timeout_s: float) -> List[str]:
        import socket

        lines: List[str] = []
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout_s)
            sock.connect(self.path)
            sock.sendall((line + "\n").encode("utf-8"))
            sock.shutdown(socket.SHUT_WR)
            with sock.makefile("rb") as stream:
                for raw in stream:
                    response = raw.decode("utf-8", errors="replace").strip()
                    if not response:
                        continue
                    lines.append(response)
                    # Stop at the terminating non-event frame without
                    # decoding here (the caller validates).
                    if '"type":"' in response and not any(
                        f'"type":"{t}"' in response for t in wire.EVENT_TYPES
                    ):
                        break
        return lines

    def send_torn(self, prefix: str, timeout_s: float) -> None:
        """A client dying mid-write: partial bytes, no newline, gone."""
        import socket

        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout_s)
            sock.connect(self.path)
            sock.sendall(prefix.encode("utf-8"))
            # Closing without the newline leaves a torn trailing line.


class HttpTransport:
    """``POST /v1/frames`` per request against the daemon's HTTP port."""

    def __init__(self, base: str):
        self.base = base

    def exchange(self, line: str, timeout_s: float) -> List[str]:
        import urllib.request

        request = urllib.request.Request(
            self.base + "/v1/frames",
            data=(line + "\n").encode("utf-8"),
            headers={"Content-Type": "application/jsonl"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=timeout_s) as resp:
            body = resp.read().decode("utf-8")
        return [l for l in body.splitlines() if l.strip()]

    def send_torn(self, prefix: str, timeout_s: float) -> None:
        # HTTP has its own framing, so a "torn" line arrives complete
        # but unparseable; deliver it and discard the error response.
        try:
            self.exchange(prefix, timeout_s)
        except OSError:
            pass


class AcpClient:
    """A connection-per-request client for one ACP endpoint.

    ``retry`` defaults to a bounded :class:`RetryPolicy` on the real
    transports (unix/http) and to :data:`SINGLE_ATTEMPT` on loopback —
    pass one explicitly to override either.  ``faults`` wraps the
    transport in a seeded
    :class:`~repro.acp.chaos.FaultyTransport` (chaos testing); a
    fault-injecting loopback client defaults to the bounded policy too,
    since injected faults need re-delivery to terminate.
    """

    def __init__(
        self,
        endpoint: str = "loopback",
        server: Optional[Any] = None,
        timeout_s: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[Any] = None,
    ):
        self._kind, self._target = _parse_endpoint(endpoint)
        self.endpoint = endpoint
        self.timeout_s = timeout_s
        self._seq = 0
        #: Client-side resilience counters: retries, rpcs.
        self.stats: Dict[str, int] = {"rpcs": 0, "retries": 0}
        if self._kind == "loopback":
            if server is None:
                from repro.acp.server import AcpServer

                server = AcpServer(threaded=False)
            self._server = server
            transport: Any = LoopbackTransport(server)
        elif server is not None:
            raise ConfigurationError(
                "server= is only meaningful with the loopback endpoint"
            )
        else:
            self._server = None
            transport = (
                UnixTransport(self._target)
                if self._kind == "unix"
                else HttpTransport(self._target)
            )
        if faults is not None:
            from repro.acp.chaos import FaultyTransport

            transport = FaultyTransport(transport, faults)
        self._transport = transport
        if retry is None:
            retry = (
                SINGLE_ATTEMPT
                if self._kind == "loopback" and faults is None
                else RetryPolicy()
            )
        self.retry = retry

    # -- transport -------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _rpc(
        self,
        frame_type: str,
        session_id: str = "",
        payload: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> List[wire.Frame]:
        """One request/response exchange, retried under the client's
        :class:`RetryPolicy`.

        The frame's seq is assigned once and reused across attempts —
        it is the idempotency key the server's replay cache dedups on.
        ``deadline`` (a ``time.monotonic()`` instant) bounds the *total*
        wall clock across all attempts, not each attempt separately.
        """
        seq = self._next_seq()
        base = wire.make_frame(frame_type, session_id, seq, payload)
        policy = self.retry
        self.stats["rpcs"] += 1
        last_failure: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self.stats["retries"] += 1
                delay = policy.delay_s(attempt - 1)
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - time.monotonic()))
                if delay > 0:
                    time.sleep(delay)
            budget = self.timeout_s
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AcpError(
                        f"{frame_type}: deadline exhausted after "
                        f"{attempt - 1} attempts ({last_failure})",
                        code="deadline",
                    )
                budget = remaining
            frame = base if attempt == 1 else wire.Frame(
                type=base.type,
                session_id=base.session_id,
                seq=base.seq,
                payload=base.payload,
                extra={"attempt": attempt},
            )
            try:
                lines = self._transport.exchange(
                    wire.encode_frame(frame), timeout_s=budget
                )
                frames = [wire.decode_frame(l) for l in lines]
            except _TRANSIENT_EXCEPTIONS as exc:
                last_failure = exc
                continue
            except ConfigurationError as exc:
                # An undecodable *response* is a delivery failure too.
                last_failure = exc
                continue
            if not frames:
                last_failure = AcpError(
                    f"{frame_type}: empty response from {self.endpoint}"
                )
                continue
            terminal = frames[-1]
            if terminal.type == "error":
                code = terminal.payload.get("code", "")
                if (
                    code in wire.RETRYABLE_ERROR_CODES
                    and attempt < policy.max_attempts
                ):
                    last_failure = AcpError(
                        terminal.payload["error"], code=code
                    )
                    continue
                raise AcpError(terminal.payload["error"], code=code)
            return frames
        raise AcpError(
            f"{frame_type}: {policy.max_attempts} attempt(s) failed "
            f"against {self.endpoint}: {last_failure}",
            code="transport",
        )

    # -- public surface --------------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        """Server identity: name, version, wire schema, session count."""
        return self._rpc("hello")[-1].payload

    def attach(
        self,
        version: str,
        shapes: Union[Any, Sequence[Any]],
        config: Optional[Any] = None,
        stream_events: bool = False,
        session_id: Optional[str] = None,
        resume: Union[bool, str, None] = None,
        lease_ttl_s: Optional[float] = None,
    ) -> "SessionHandle":
        """Attach a managed system; returns its :class:`SessionHandle`.

        ``shapes`` is one :class:`~repro.experiments.runner.RunShape` or
        a sequence of them (multi-app).  ``resume`` warm-restores the
        controllers from a server-side recovered checkpoint store:
        ``True`` uses ``session_id``'s store, a string names another
        session's.  ``lease_ttl_s`` requests a session lease (expiry
        with no client frame orphans the session server-side).

        Under retry, pass an explicit ``session_id``: it makes a
        re-delivered attach idempotent (the server replays the original
        response); an auto-assigned id cannot be deduplicated and a
        retried attach may create a second session.
        """
        from repro.experiments.runner import RunConfig

        shape_list = (
            list(shapes)
            if isinstance(shapes, (list, tuple))
            else [shapes]
        )
        payload: Dict[str, Any] = {
            "version": version,
            "shapes": [wire.shape_to_wire(s) for s in shape_list],
            "config": wire.config_to_wire(config or RunConfig()),
        }
        if stream_events:
            payload["stream_events"] = True
        if session_id is not None:
            payload["session_id"] = session_id
        if resume is not None:
            payload["resume"] = resume
        if lease_ttl_s is not None:
            payload["lease_ttl_s"] = lease_ttl_s
        status = self._rpc("attach", "", payload)[-1].payload
        return SessionHandle(self, status["session_id"], status)

    def sessions(self) -> Dict[str, Any]:
        """Registry snapshot: live sessions, orphaned sessions,
        recovered stores, ledger."""
        return self._rpc("sessions")[-1].payload

    def metrics_text(self) -> str:
        """The daemon's live Prometheus exposition text."""
        return self._rpc("metrics")[-1].payload["text"]

    def session(self, session_id: str) -> "SessionHandle":
        """A handle for an already-attached session (e.g. after a
        client restart — the daemon keeps the session alive).

        Adopts the session's ``last_seq`` from the registry so this
        client's next frames land ahead of the seq window a previous
        client advanced.
        """
        status: Dict[str, Any] = {"session_id": session_id}
        try:
            for listed in self.sessions().get("sessions", []):
                if listed.get("session_id") == session_id:
                    status = listed
                    break
        except AcpError:
            pass  # an unreachable registry still yields a usable handle
        last_seq = status.get("last_seq")
        if isinstance(last_seq, int) and last_seq > self._seq:
            self._seq = last_seq
        return SessionHandle(self, session_id, status)


class SessionHandle:
    """Typed control surface for one attached session."""

    def __init__(
        self, client: AcpClient, session_id: str, status: Dict[str, Any]
    ):
        self._client = client
        self.session_id = session_id
        self.last_status = status

    def _rpc(
        self,
        frame_type: str,
        payload: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> List[wire.Frame]:
        return self._client._rpc(
            frame_type, self.session_id, payload, deadline=deadline
        )

    def status(self) -> Dict[str, Any]:
        """Current session state from the registry."""
        listing = self._client.sessions()["sessions"]
        for status in listing:
            if status["session_id"] == self.session_id:
                self.last_status = status
                return status
        raise AcpError(f"session {self.session_id} is no longer attached")

    def run(self) -> Dict[str, Any]:
        """Start (daemon) or perform (loopback) the run to completion."""
        status = self._rpc("run", {})[-1].payload
        self.last_status = status
        return status

    def advance(self, seconds: float) -> Dict[str, Any]:
        """Step the session by ``seconds`` of simulated time, inline."""
        status = self._rpc("run", {"seconds": seconds})[-1].payload
        self.last_status = status
        return status

    def swap_policy(
        self, policy: str, adapt_every: Optional[int] = None
    ) -> Dict[str, Any]:
        """Hot-swap the scheduling policy; effective within one
        adaptation period, recorded on the bus as ``PolicySwapped``.
        Safe under retry: a re-delivered swap replays the first
        response instead of swapping twice."""
        payload: Dict[str, Any] = {"policy": policy}
        if adapt_every is not None:
            payload["adapt_every"] = adapt_every
        return self._rpc("swap", payload)[-1].payload

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot every checkpoint-capable controller right now;
        returns ``{"time_s", "store": {controller_id: envelope}}``."""
        return self._rpc("checkpoint", {})[-1].payload

    def events(self, since_seq: int = 0) -> List[wire.Frame]:
        """Event frames emitted after ``since_seq`` (plan/actuate always;
        heartbeat/sensor when attached with ``stream_events=True``).
        This is also the resume seam: after a reconnect, ask for
        everything past the last seq you saw."""
        frames = self._rpc("events", {"since_seq": since_seq})
        return [f for f in frames if f.is_event]

    def result(self, timeout_s: Optional[float] = None):
        """Block until the run finishes; returns its
        :class:`~repro.experiments.runner.RunOutcome`.

        ``timeout_s`` is a *wall-clock deadline for the whole call*,
        honored across retries and reconnects — not a per-attempt
        budget that a flaky transport could multiply.
        """
        payload: Dict[str, Any] = {}
        deadline = None
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
            deadline = time.monotonic() + timeout_s
        frame = self._rpc("result", payload, deadline=deadline)[-1]
        return _outcome_from_result(frame.payload)

    def detach(self) -> Dict[str, Any]:
        """Release the session (stops its driver thread, persists its
        checkpoints)."""
        return self._rpc("detach", {})[-1].payload


def _outcome_from_result(payload: Dict[str, Any]):
    """A ``result`` frame payload → :class:`RunOutcome` (bit-identical:
    JSON round-trips floats through ``repr``, losslessly)."""
    from repro.experiments.runner import RunOutcome
    from repro.experiments.serialize import run_metrics_from_dict
    from repro.heartbeats.targets import PerformanceTarget
    from repro.sim.tracing import TracePoint, TraceRecorder

    trace = TraceRecorder()
    for app_name, rows in payload["trace"].items():
        for row in rows:
            trace.record(
                app_name,
                TracePoint(
                    time_s=row[0],
                    hb_index=row[1],
                    rate=row[2],
                    big_cores=row[3],
                    little_cores=row[4],
                    big_freq_mhz=row[5],
                    little_freq_mhz=row[6],
                ),
            )
    target = payload["target"]
    return RunOutcome(
        metrics=run_metrics_from_dict(payload["metrics"]),
        trace=trace,
        target=PerformanceTarget(target[0], target[1], target[2]),
        max_rate=payload["max_rate"],
    )


def run_via_acp(version: str, shapes: Any, config: Any):
    """The ``RunConfig(acp=...)`` execution path of
    :func:`repro.experiments.run`: attach, run to completion, detach.

    The outcome is reconstructed from the ``result`` frame — same
    summaries, same trace rows, bit for bit.
    """
    if shapes is None:
        raise ConfigurationError("an acp run needs shapes")
    client = AcpClient(config.acp)
    handle = client.attach(version, shapes, config.with_(acp=None))
    try:
        return handle.result()
    finally:
        try:
            handle.detach()
        except (AcpError, OSError):
            pass  # best-effort cleanup; the outcome is already in hand
