"""One managed system attached to the control plane.

A session wraps a :class:`~repro.experiments.runner.PreparedRun` — the
same object the in-process path runs — and steps it in bounded
*segments* so control frames can interleave with execution.  Between
segments the session drains its command queue: a policy swap lands there
and is applied before the next tick, which is why a swap always takes
effect within one adaptation period (the planner re-reads its policy at
every MAPE cycle).

Session state machine::

    ATTACHED ──run──▶ RUNNING ──work exhausted──▶ FINISHED
        │                │  ▲
        │                │  └─(bounded advance returns)
        │                ├──uncaught exception──▶ QUARANTINED
        │                ├──lease expired──────▶ ORPHANED
        └──detach──────▶ DETACHED ◀──detach───────┘

An orphaned session (its lease TTL ran out with no client frame) has
its driver stopped and checkpoints persisted by the server; attaching
with ``resume=<session id>`` warm-restores it into a fresh session.

A quarantined session keeps its error and event log for post-mortem but
never runs again; crucially, the exception is contained here — the
daemon and its other tenants are untouched.

Everything the session tells the outside world crosses
:mod:`repro.acp.wire`: bus events become typed event frames (heartbeat,
sensor, plan, actuate), and the final outcome becomes a ``result`` frame
that the client SDK reconstructs into a
:class:`~repro.experiments.runner.RunOutcome` — bit-identical to the
in-process one, because both are the same simulation.
"""

from __future__ import annotations

import queue
from typing import Any, Callable, Dict, List, Optional

from repro.core.policy import POLICY_BY_NAME, HarsPolicy
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    PreparedRun,
    RunConfig,
    RunShape,
    prepare_multi,
    prepare_single,
)
from repro.experiments.serialize import run_metrics_to_dict
from repro.kernel.bus import (
    AppEvicted,
    AppFinished,
    AppQuarantined,
    ControllerRestored,
    HeartbeatEmitted,
    PolicySwapped,
    PowerSample,
    StateApplied,
)
from repro.supervision import CheckpointStore
from repro.acp import wire

#: Session states (the machine documented above).
ATTACHED = "attached"
RUNNING = "running"
FINISHED = "finished"
QUARANTINED = "quarantined"
DETACHED = "detached"
#: The session's lease expired: its driver is stopped, its checkpoints
#: persisted, and its resources released — but unlike ``DETACHED`` the
#: server keeps its checkpoint store registered so a later
#: ``attach(resume=<id>)`` warm-restores exactly where it left off.
ORPHANED = "orphaned"

#: Simulated seconds per segment between command-queue drains.  With the
#: default 10 ms tick this is 50 ticks — far below one adaptation period
#: for every configuration in the repo, so a queued swap is always live
#: before the next period ends.
DEFAULT_QUANTUM_S = 0.5


def resolve_policy(name: str) -> HarsPolicy:
    """A policy by wire name: ``hars-i``/``HARS-E``/``mp-hars-ei``…"""
    cleaned = name.strip().upper()
    if cleaned.startswith("MP-"):
        cleaned = cleaned[3:]
    policy = POLICY_BY_NAME.get(cleaned)
    if policy is None:
        raise ConfigurationError(
            f"unknown policy {name!r}; valid: "
            f"{sorted(p.lower() for p in POLICY_BY_NAME)}"
        )
    return policy


class AcpSession:
    """Server-side session: a prepared run plus its control surface."""

    def __init__(
        self,
        session_id: str,
        version: str,
        shapes: List[RunShape],
        config: RunConfig,
        stream_events: bool = False,
        resume_store: Optional[CheckpointStore] = None,
        quantum_s: float = DEFAULT_QUANTUM_S,
    ):
        if quantum_s <= 0:
            raise ConfigurationError("session quantum must be positive")
        self.session_id = session_id
        self.version = version
        self.config = config
        self.stream_events = stream_events
        self.quantum_s = quantum_s
        self.state = ATTACHED
        self.error: Optional[str] = None
        #: Event frames in emission order (bounded, monotone seq).
        self.events: List[wire.Frame] = []
        self._seq = 0
        self._commands: "queue.Queue[Callable[[], None]]" = queue.Queue()
        self._resume_store = resume_store
        self._restored = False
        self._result_payload: Optional[Dict[str, Any]] = None
        self.prepared: PreparedRun = (
            prepare_single(
                version, shapes[0], config, checkpoint_store=resume_store
            )
            if len(shapes) == 1
            else prepare_multi(
                version, shapes, config, checkpoint_store=resume_store
            )
        )
        self.app_names = [app.name for app in self.prepared.apps]
        self._subscribe(self.prepared.sim.bus)
        if self.prepared.telemetry is not None:
            self.prepared.telemetry.set_run_info(
                version=version,
                profile=config.profile,
                session=session_id,
            )

    # -- observation: bus events → wire frames -------------------------------

    def _subscribe(self, bus) -> None:
        sim = self.prepared.sim
        if self.stream_events:
            bus.subscribe(
                HeartbeatEmitted,
                lambda e: self._emit(
                    wire.heartbeat_frame(
                        self.session_id,
                        self._next_seq(),
                        e.app.name,
                        e.heartbeat.index,
                        e.heartbeat.time_s,
                        rate=e.app.monitor.current_rate(),
                        tag=getattr(e.heartbeat, "tag", "") or "",
                    )
                ),
            )
            bus.subscribe(
                PowerSample,
                lambda e: self._emit(
                    wire.sensor_frame(
                        self.session_id,
                        self._next_seq(),
                        e.time_s,
                        {rail: w for rail, w in e.watts.items()},
                    )
                ),
            )
        bus.subscribe(StateApplied, lambda e: self._on_state_applied(sim, e))
        bus.subscribe(PolicySwapped, self._on_policy_swapped)
        bus.subscribe(ControllerRestored, self._on_restored)
        for event_type, label in (
            (AppFinished, "finished"),
            (AppQuarantined, "quarantined"),
            (AppEvicted, "evicted"),
        ):
            bus.subscribe(
                event_type,
                lambda e, label=label: self._emit(
                    wire.make_frame(
                        "lifecycle",
                        self.session_id,
                        self._next_seq(),
                        {
                            "event": label,
                            "app": e.app_name,
                            "time_s": e.time_s,
                        },
                    )
                ),
            )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _emit(self, frame: wire.Frame) -> None:
        self.events.append(frame)

    def _on_state_applied(self, sim, event: StateApplied) -> None:
        state = event.state
        quad = [state.c_big, state.c_little, state.f_big_mhz, state.f_little_mhz]
        now = sim.clock.now_s
        self._emit(
            wire.plan_frame(
                self.session_id, self._next_seq(), event.app_name, now, quad
            )
        )
        self._emit(
            wire.actuate_frame(
                self.session_id,
                self._next_seq(),
                event.app_name,
                now,
                event.big_cores,
                event.little_cores,
                state.f_big_mhz,
                state.f_little_mhz,
            )
        )

    def _on_policy_swapped(self, event: PolicySwapped) -> None:
        self._emit(
            wire.make_frame(
                "policy-swapped",
                self.session_id,
                self._next_seq(),
                {
                    "policy": event.new_policy,
                    "old_policy": event.old_policy,
                    "time_s": event.time_s,
                    "controllers": [event.controller],
                },
            )
        )

    def _on_restored(self, event: ControllerRestored) -> None:
        self._emit(
            wire.make_frame(
                "restored",
                self.session_id,
                self._next_seq(),
                {
                    "controller": event.controller,
                    "warm": event.warm,
                    "time_s": event.time_s,
                },
            )
        )

    # -- execution ------------------------------------------------------------

    @property
    def sim(self):
        return self.prepared.sim

    @property
    def done(self) -> bool:
        """Work exhausted or safety horizon reached."""
        sim = self.prepared.sim
        return sim._all_done() or (
            sim.clock.now_s >= self.prepared.horizon_s - 1e-9
        )

    def _ensure_started(self) -> None:
        """Run controller ``on_start`` hooks (and a warm restore, if this
        session resumed from a recovered checkpoint store) before the
        first tick."""
        sim = self.prepared.sim
        if not sim._started:
            # until_s = now: sets _started and fires on_start without
            # stepping — exactly the prefix of a normal run.
            sim.run(until_s=sim.clock.now_s)
        if self._resume_store is not None and not self._restored:
            self._restored = True
            for controller in sim.controllers:
                if hasattr(controller, "simulate_restart"):
                    controller.checkpoint_store = self._resume_store
                    controller.simulate_restart(sim)

    def enqueue(self, command: Callable[[], None]) -> None:
        """Queue a control action for the next segment boundary."""
        self._commands.put(command)

    def _drain_commands(self) -> None:
        while True:
            try:
                command = self._commands.get_nowait()
            except queue.Empty:
                return
            command()

    def advance(self, seconds: Optional[float] = None) -> Dict[str, Any]:
        """Step the simulation by up to ``seconds`` of simulated time.

        Commands are drained at each segment boundary.  ``None`` runs to
        completion.  Raises whatever the managed system raises — the
        server wraps this in :meth:`quarantine`.
        """
        if self.state in (FINISHED, QUARANTINED, DETACHED, ORPHANED):
            raise ConfigurationError(
                f"session {self.session_id} is {self.state}; cannot run"
            )
        self.state = RUNNING
        sim = self.prepared.sim
        self._ensure_started()
        deadline = (
            min(sim.clock.now_s + seconds, self.prepared.horizon_s)
            if seconds is not None
            else self.prepared.horizon_s
        )
        while not self.done and sim.clock.now_s < deadline - 1e-9:
            self._drain_commands()
            sim.run(until_s=min(sim.clock.now_s + self.quantum_s, deadline))
        self._drain_commands()
        if self.done:
            self._finalize()
        return self.status()

    def _finalize(self) -> None:
        if self._result_payload is not None:
            return
        outcome = self.prepared.finish()
        trace = outcome.trace
        rows: Dict[str, List[List[Any]]] = {}
        for app_name in trace.app_names:
            rows[app_name] = [
                [
                    point.time_s,
                    point.hb_index,
                    point.rate,
                    point.big_cores,
                    point.little_cores,
                    point.big_freq_mhz,
                    point.little_freq_mhz,
                ]
                for point in trace.points(app_name)
            ]
        target = outcome.target
        self._result_payload = {
            "metrics": run_metrics_to_dict(outcome.metrics),
            "target": [target.min_rate, target.avg_rate, target.max_rate],
            "max_rate": outcome.max_rate,
            "trace": rows,
        }
        self.state = FINISHED

    def quarantine(self, exc: BaseException) -> None:
        """Contain a managed-system crash: the session is dead, the
        daemon is not."""
        self.state = QUARANTINED
        self.error = f"{type(exc).__name__}: {exc}"

    def detach(self) -> None:
        if self.state not in (FINISHED, QUARANTINED):
            self.state = DETACHED

    def orphan(self) -> None:
        """Mark the session lease-expired; it never runs here again
        (its checkpoint store is what survives, for a resume)."""
        self.state = ORPHANED

    # -- control actions -------------------------------------------------------

    def swap_policy(
        self, policy_name: str, adapt_every: Optional[int] = None
    ) -> Dict[str, Any]:
        """Retarget every policy-driven manager; next cycle plans under
        the new policy (≤ one adaptation period of latency)."""
        policy = resolve_policy(policy_name)
        sim = self.prepared.sim
        swapped: List[str] = []
        for controller in sim.controllers:
            old = getattr(controller, "policy", None)
            mape = getattr(controller, "mape", None)
            if not isinstance(old, HarsPolicy) or mape is None:
                continue
            controller.policy = policy
            mape.planner.policy = policy
            controller_id = getattr(
                controller, "checkpoint_id", type(controller).__name__
            )
            swapped.append(controller_id)
            sim.bus.publish(
                PolicySwapped(
                    controller=controller_id,
                    time_s=sim.clock.now_s,
                    old_policy=old.name,
                    new_policy=policy.name,
                )
            )
        if not swapped:
            raise ConfigurationError(
                f"session {self.session_id}: no policy-driven manager "
                f"to swap (version {self.version!r})"
            )
        if adapt_every is not None:
            if adapt_every < 1:
                raise ConfigurationError("adapt_every must be >= 1")
            for controller in sim.controllers:
                if hasattr(controller, "adapt_every") and getattr(
                    controller, "mape", None
                ) is not None:
                    controller.adapt_every = adapt_every
        return {
            "policy": policy.name,
            "controllers": swapped,
            "time_s": sim.clock.now_s,
        }

    def checkpoint_now(self) -> Dict[str, Any]:
        """Snapshot every checkpoint-capable controller right now."""
        sim = self.prepared.sim
        self._ensure_started()
        store = self.prepared.checkpoint_store
        if store is None:
            store = CheckpointStore()
            self.prepared.checkpoint_store = store
        now = sim.clock.now_s
        count = 0
        for controller in sim.controllers:
            if hasattr(controller, "checkpoint") and hasattr(
                controller, "restore_checkpoint"
            ):
                controller.checkpoint_store = store
                store.put(controller.checkpoint(now))
                count += 1
        return {
            "time_s": now,
            "count": count,
            "store": {
                controller_id: store.get(controller_id)
                for controller_id in store.controller_ids
            },
        }

    # -- introspection ---------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        sim = self.prepared.sim
        payload: Dict[str, Any] = {
            "session_id": self.session_id,
            "state": self.state,
            "version": self.version,
            "apps": list(self.app_names),
            "time_s": sim.clock.now_s,
            "events": len(self.events),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    def result_payload(self) -> Dict[str, Any]:
        if self._result_payload is None:
            raise ConfigurationError(
                f"session {self.session_id} has no result yet "
                f"(state: {self.state})"
            )
        return self._result_payload

    def metrics_text(self) -> str:
        """Live Prometheus text for this session (empty if telemetry off)."""
        hub = self.prepared.telemetry
        if hub is None:
            return ""
        from repro.telemetry.exporters import snapshot_to_prometheus

        return snapshot_to_prometheus(hub.registry.snapshot())
